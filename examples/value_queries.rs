//! The integrated value index (Section 4.6, Figure 7): hash text values
//! into `β` synthetic labels and index structure + values together, so a
//! predicate like `[publisher="Springer"]` prunes *before* refinement.
//! Sweeps β to show the size-vs-pruning tradeoff the paper discusses.
//!
//! Run with: `cargo run --release --example value_queries`

use fix::core::{Collection, FixIndex, FixOptions};
use fix::datagen::{dblp, GenConfig};

const QUERIES: &[&str] = &[
    r#"//proceedings[publisher="Springer"][title]"#,
    r#"//inproceedings[year="1998"][title]/author"#,
];

fn main() {
    let xml = dblp(GenConfig::scaled(0.5));
    let mut coll = Collection::new();
    coll.add_xml(&xml)
        .expect("generated document is well-formed");
    println!("DBLP-like document: {} elements\n", coll.stats().elements);

    // Structure-only index: value predicates are refinement-only.
    let structural = FixIndex::build(&mut coll, FixOptions::large_document(3));
    println!(
        "structure-only index: {} bytes",
        structural.stats().index_bytes()
    );
    for q in QUERIES {
        let out = structural.query(&coll, q).expect("covered");
        println!(
            "  {q}\n    candidates {:>6}, results {:>5}, fpr {:>5.1}%",
            out.metrics.candidates,
            out.results.len(),
            100.0 * out.metrics.fpr()
        );
    }

    // Integrated value indexes with increasing β: bigger hash range →
    // fewer collisions → stronger pruning, but a larger label space and
    // bisimulation graph (the tradeoff at the end of Section 4.6).
    for beta in [4, 16, 64, 256] {
        let mut coll = Collection::new();
        coll.add_xml(&xml).expect("well-formed");
        let index = FixIndex::build(&mut coll, FixOptions::large_document(3).with_values(beta));
        println!(
            "\nvalue index β={beta}: {} bytes, {} distinct patterns",
            index.stats().index_bytes(),
            index.stats().distinct_patterns
        );
        for q in QUERIES {
            let out = index.query(&coll, q).expect("covered");
            println!(
                "  {q}\n    candidates {:>6}, results {:>5}, fpr {:>5.1}%",
                out.metrics.candidates,
                out.results.len(),
                100.0 * out.metrics.fpr()
            );
        }
    }
}
