//! The collection-of-small-documents scenario (the paper's XBench TCMD
//! configuration, Section 6.1): build clustered and unclustered FIX
//! indexes over a generated text-centric corpus, then run the paper's
//! three representative TCMD queries and report the Section 6.2 metrics.
//!
//! Run with: `cargo run --release --example document_collection`

use std::time::Instant;

use fix::core::{ground_truth, Collection, FixIndex, FixOptions};
use fix::datagen::{tcmd, GenConfig};
use fix::xpath::parse_path;

fn main() {
    let corpus = tcmd(GenConfig::scaled(0.5));
    let mut coll = Collection::new();
    for doc in &corpus {
        coll.add_xml(doc)
            .expect("generated documents are well-formed");
    }
    let stats = coll.stats();
    println!(
        "TCMD-like corpus: {} documents, {} elements, max depth {}, ~{} KiB",
        coll.len(),
        stats.elements,
        stats.max_depth,
        stats.bytes / 1024,
    );

    let t = Instant::now();
    let unclustered = FixIndex::build(&mut coll, FixOptions::collection());
    println!(
        "unclustered index built in {:?}: {} bytes",
        t.elapsed(),
        unclustered.stats().index_bytes()
    );
    let t = Instant::now();
    let clustered = FixIndex::build(&mut coll, FixOptions::collection().clustered());
    println!(
        "clustered index built in {:?}: {} bytes (copies {})\n",
        t.elapsed(),
        clustered.stats().index_bytes(),
        clustered.stats().clustered_bytes,
    );

    println!(
        "{:<62} {:>7} {:>7} {:>7}",
        "query (paper's TCMD representative set)", "sel", "pp", "fpr"
    );
    for query in [
        "/article/epilog[acknoledgements]/references/a_id",
        "/article/prolog[keywords]/authors/author/contact[phone]",
        "/article[epilog]/prolog/authors/author",
    ] {
        let out = unclustered.query(&coll, query).expect("covered query");
        // Sanity: the index must return every truly matching document.
        let path = parse_path(query).expect("parseable");
        let truth = ground_truth(&coll, &path, 0);
        assert_eq!(out.metrics.producing, truth, "false negative on {query}");
        println!(
            "{:<62} {:>6.1}% {:>6.1}% {:>6.1}%",
            query,
            100.0 * out.metrics.sel(),
            100.0 * out.metrics.pp(),
            100.0 * out.metrics.fpr(),
        );
    }
    println!("\n(clustered and unclustered indexes return identical results; the\n clustered variant trades {}x space for sequential refinement I/O)",
        clustered.stats().index_bytes() / unclustered.stats().index_bytes().max(1));
}
