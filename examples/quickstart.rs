//! Quick start: build a FIX database over a handful of bibliography
//! documents and run a few twig queries, printing results and the pruning
//! metrics.
//!
//! Run with: `cargo run --example quickstart`

use fix::{FixDatabase, FixError, FixOptions};

fn main() -> Result<(), FixError> {
    // 1. A database starts as an empty document collection.
    let mut db = FixDatabase::in_memory();
    for xml in [
        "<bib><article><author><email/></author><title>Holistic twig joins</title><ee/></article></bib>",
        "<bib><book><author><phone/></author><title>Data on the Web</title></book></bib>",
        "<bib><article><author><phone/><email/></author><title>Structural joins</title></article></bib>",
        "<bib><inproceedings><author/><title>NoK</title><url/></inproceedings></bib>",
    ] {
        db.add_xml(xml)?;
    }

    // 2. Build the index: collection mode (one entry per document, keyed by
    //    the spectral features of the document's bisimulation pattern).
    //    `threads(0)` fans the construction pipeline out across all cores —
    //    the result is bit-identical to a sequential build.
    let stats = *db.build(FixOptions::builder().threads(0).build())?;
    println!(
        "indexed {} documents as {} entries ({} distinct patterns, B-tree {} bytes, {} threads)\n",
        db.len(),
        stats.entries,
        stats.distinct_patterns,
        stats.btree_bytes,
        stats.threads,
    );

    // 3. Queries: the index prunes, the NoK-style navigator refines.
    for query in [
        "//article[author]/ee",
        "//author[phone][email]",
        "//book/author/phone",
        "//article/title",
    ] {
        let out = db.query(query)?;
        println!("{query}");
        println!(
            "  candidates {}/{} (pruning power {:.0}%), results {}, false-positive ratio {:.0}%",
            out.metrics.candidates,
            out.metrics.entries,
            100.0 * out.metrics.pp(),
            out.results.len(),
            100.0 * out.metrics.fpr(),
        );
        let coll = db.collection();
        for (doc, node) in &out.results {
            let d = coll.doc(*doc);
            let label = coll.labels.resolve(d.label(*node).expect("element result"));
            println!("  -> doc {} node {} <{}>", doc.0, node.0, label);
        }
        println!();
    }
    Ok(())
}
