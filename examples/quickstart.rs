//! Quick start: build a FIX index over a handful of bibliography documents
//! and run a few twig queries, printing results and the pruning metrics.
//!
//! Run with: `cargo run --example quickstart`

use fix::core::{Collection, FixIndex, FixOptions};

fn main() {
    // 1. A small collection of documents sharing one label table.
    let mut coll = Collection::new();
    for xml in [
        "<bib><article><author><email/></author><title>Holistic twig joins</title><ee/></article></bib>",
        "<bib><book><author><phone/></author><title>Data on the Web</title></book></bib>",
        "<bib><article><author><phone/><email/></author><title>Structural joins</title></article></bib>",
        "<bib><inproceedings><author/><title>NoK</title><url/></inproceedings></bib>",
    ] {
        coll.add_xml(xml).expect("well-formed example document");
    }

    // 2. Build the index: collection mode (one entry per document, keyed by
    //    the spectral features of the document's bisimulation pattern).
    let index = FixIndex::build(&mut coll, FixOptions::collection());
    println!(
        "indexed {} documents as {} entries ({} distinct patterns, B-tree {} bytes)\n",
        coll.len(),
        index.entry_count(),
        index.stats().distinct_patterns,
        index.stats().btree_bytes,
    );

    // 3. Queries: the index prunes, the NoK-style navigator refines.
    for query in [
        "//article[author]/ee",
        "//author[phone][email]",
        "//book/author/phone",
        "//article/title",
    ] {
        let out = index.query(&coll, query).expect("valid query");
        println!("{query}");
        println!(
            "  candidates {}/{} (pruning power {:.0}%), results {}, false-positive ratio {:.0}%",
            out.metrics.candidates,
            out.metrics.entries,
            100.0 * out.metrics.pp(),
            out.results.len(),
            100.0 * out.metrics.fpr(),
        );
        for (doc, node) in &out.results {
            let d = coll.doc(*doc);
            let label = coll.labels.resolve(d.label(*node).expect("element result"));
            println!("  -> doc {} node {} <{}>", doc.0, node.0, label);
        }
        println!();
    }
}
