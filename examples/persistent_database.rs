//! Persistence and planning: build an index, save it as one `.fixdb` file,
//! load it back, insert more documents incrementally, and let the
//! histogram-based planner pick index-vs-scan per query.
//!
//! Run with: `cargo run --release --example persistent_database`

use fix::core::{load_database, save_database, Collection, FixIndex, FixOptions, LambdaHistogram};
use fix::datagen::{tcmd, GenConfig};
use fix::xpath::parse_path;

fn main() {
    let dir = std::env::temp_dir().join("fix-example-db");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("articles.fixdb");

    // 1. Build and save.
    let mut coll = Collection::new();
    for doc in tcmd(GenConfig::scaled(0.2)) {
        coll.add_xml(&doc).expect("generated XML parses");
    }
    let index = FixIndex::build(&mut coll, FixOptions::collection());
    save_database(&path, &coll, &index).expect("save");
    println!(
        "saved {} documents / {} entries to {} ({} KiB)",
        coll.len(),
        index.entry_count(),
        path.display(),
        std::fs::metadata(&path)
            .map(|m| m.len() / 1024)
            .unwrap_or(0)
    );

    // 2. Load into a fresh process state; results must be identical.
    let (loaded_coll, loaded_idx) = load_database(&path).expect("load");
    let q = "/article/epilog[acknoledgements]/references/a_id";
    let before = index.query(&coll, q).expect("covered").results.len();
    let after = loaded_idx
        .query(&loaded_coll, q)
        .expect("covered")
        .results
        .len();
    assert_eq!(before, after);
    println!("reloaded: {q} -> {after} results (identical to pre-save)");

    // 3. Incremental insert into the in-memory index.
    let mut live_coll = Collection::new();
    for doc in tcmd(GenConfig::scaled(0.05)) {
        live_coll.add_xml(&doc).expect("parses");
    }
    let mut live = FixIndex::build(&mut live_coll, FixOptions::collection());
    let added = live
        .insert_xml(
            &mut live_coll,
            "<article><prolog><title>fresh</title><authors><author><name>N</name></author></authors></prolog><epilog><references><a_id>r1</a_id></references></epilog></article>",
        )
        .expect("well-formed")
        .expect("unclustered index accepts inserts");
    println!(
        "inserted doc {} incrementally; index now has {} entries",
        added.0,
        live.entry_count()
    );

    // 4. Histogram-based planning (Section 5's cost-model suggestion).
    let hist = LambdaHistogram::build(&live);
    for q in [
        "/article/epilog[acknoledgements]/references/a_id", // selective
        "/article/prolog",                                  // matches almost everything
    ] {
        let path = parse_path(q).expect("parseable");
        let plan = live.plan(&live_coll, &hist, &path, 0.3);
        let (chosen, results) = live.query_auto(&live_coll, &hist, &path, 0.3);
        assert_eq!(plan, chosen);
        println!("{q}\n  plan {plan:?} -> {} results", results.len());
    }

    std::fs::remove_dir_all(&dir).ok();
}
