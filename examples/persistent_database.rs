//! Persistence and planning: build a database, save it as one `.fixdb`
//! file, open it back, insert more documents incrementally, and let the
//! histogram-based planner pick index-vs-scan per query.
//!
//! Run with: `cargo run --release --example persistent_database`

use fix::core::LambdaHistogram;
use fix::datagen::{tcmd, GenConfig};
use fix::xpath::parse_path;
use fix::{FixDatabase, FixError, FixOptions};

fn main() -> Result<(), FixError> {
    let dir = std::env::temp_dir().join("fix-example-db");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("articles.fixdb");
    std::fs::remove_file(&path).ok();

    // 1. Open (fresh path → empty database bound to it), fill, build with
    //    the parallel pipeline, save.
    let mut db = FixDatabase::open(&path)?;
    for doc in tcmd(GenConfig::scaled(0.2)) {
        db.add_xml(&doc)?;
    }
    let stats = *db.build(FixOptions::builder().threads(0).build())?;
    println!(
        "built {} entries with {} threads (stream {:?}, extract {:?})",
        stats.entries, stats.threads, stats.stream_time, stats.extract_time
    );
    db.save()?;
    let entries = db.stats().expect("built").entries;
    println!(
        "saved {} documents / {} entries to {} ({} KiB)",
        db.len(),
        entries,
        path.display(),
        std::fs::metadata(&path)
            .map(|m| m.len() / 1024)
            .unwrap_or(0)
    );

    // 2. Open into fresh process state; results must be identical.
    let reopened = FixDatabase::open(&path)?;
    let q = "/article/epilog[acknoledgements]/references/a_id";
    let before = db.query(q)?.results.len();
    let after = reopened.query(q)?.results.len();
    assert_eq!(before, after);
    println!("reopened: {q} -> {after} results (identical to pre-save)");

    // 3. Incremental insert: an unclustered in-memory database keeps its
    //    construction state, so post-build adds stream straight into the
    //    index.
    let mut live = FixDatabase::in_memory();
    for doc in tcmd(GenConfig::scaled(0.05)) {
        live.add_xml(&doc)?;
    }
    live.build(FixOptions::collection())?;
    let added = live.add_xml(
        "<article><prolog><title>fresh</title><authors><author><name>N</name></author></authors></prolog><epilog><references><a_id>r1</a_id></references></epilog></article>",
    )?;
    println!(
        "inserted doc {} incrementally; index now has {} entries",
        added.0,
        live.stats().expect("built").entries
    );

    // 4. Histogram-based planning (Section 5's cost-model suggestion).
    let idx = live.index().expect("built");
    let hist = LambdaHistogram::build(idx);
    for q in [
        "/article/epilog[acknoledgements]/references/a_id", // selective
        "/article/prolog",                                  // matches almost everything
    ] {
        let qp = parse_path(q).expect("parseable");
        let plan = idx.plan(live.collection(), &hist, &qp, 0.3);
        let (chosen, results) = idx.query_auto(live.collection(), &hist, &qp, 0.3);
        assert_eq!(plan, chosen);
        println!("{q}\n  plan {plan:?} -> {} results", results.len());
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
