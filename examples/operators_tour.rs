//! A tour of the query-operator zoo: the same twig evaluated by five
//! independent engines — navigational (NoK-style), bottom-up DP,
//! structural semi-joins, the F&B covering index, and TwigStack (holistic,
//! descendant semantics) — with their work counters side by side.
//!
//! Run with: `cargo run --release --example operators_tour`

use std::time::Instant;

use fix::bisim::FbIndex;
use fix::core::Collection;
use fix::datagen::{xmark, GenConfig};
use fix::exec::{eval_fb, eval_path, eval_structural, eval_twig, eval_twigstack, twigstack_filter};
use fix::xml::RegionIndex;
use fix::xpath::{parse_path, TwigQuery};

fn main() {
    let mut coll = Collection::new();
    coll.add_xml(&xmark(GenConfig::scaled(0.5)))
        .expect("parses");
    let (_, doc) = coll.iter().next().expect("one document");
    println!("XMark-like document: {} nodes\n", doc.len());

    let regions = RegionIndex::build(doc);
    let fb = FbIndex::build(doc);
    println!(
        "F&B index: {} classes, {} edges ({} KiB)\n",
        fb.len(),
        fb.edge_count(),
        fb.size_bytes() / 1024
    );

    for q in [
        "//item/mailbox/mail/text/emph/keyword",
        "//open_auction[seller]/annotation/description/text",
        "//category/description[parlist]/parlist/listitem/text",
    ] {
        let path = parse_path(q).expect("parseable");
        let twig = TwigQuery::from_path(&path, &coll.labels).expect("twig");
        println!("{q}");

        let t = Instant::now();
        let nok = eval_path(doc, &coll.labels, &path);
        println!(
            "  navigational       {:>5} results in {:?}",
            nok.len(),
            t.elapsed()
        );

        let t = Instant::now();
        let dp = eval_twig(doc, &twig);
        println!(
            "  bottom-up DP       {:>5} results in {:?}",
            dp.len(),
            t.elapsed()
        );

        let t = Instant::now();
        let sj = eval_structural(doc, &regions, &twig);
        println!(
            "  structural joins   {:>5} results in {:?}",
            sj.len(),
            t.elapsed()
        );

        let t = Instant::now();
        let fbr = eval_fb(doc, &fb, &twig);
        println!(
            "  F&B covering index {:>5} results in {:?}",
            fbr.len(),
            t.elapsed()
        );

        assert_eq!(nok, dp);
        assert_eq!(nok, sj);
        assert_eq!(nok, fbr);

        // TwigStack evaluates descendant-edge semantics (a superset of the
        // child-edge results), so it is reported, not asserted equal.
        let t = Instant::now();
        let ts = eval_twigstack(doc, &regions, &twig);
        let (_, stats) = twigstack_filter(doc, &regions, &twig);
        println!(
            "  TwigStack (// sem) {:>5} results in {:?} (scanned {}, pushed {})\n",
            ts.len(),
            t.elapsed(),
            stats.scanned,
            stats.pushed
        );
    }
}
