//! The large-document scenario (the paper's XMark/Treebank configuration):
//! index every element's depth-6 subpattern, then compare indexed query
//! processing against the unindexed NoK-style navigational baseline.
//!
//! Run with: `cargo run --release --example large_document`

use std::time::Instant;

use fix::core::{Collection, DocId, FixIndex, FixOptions};
use fix::datagen::{xmark, GenConfig};
use fix::exec::eval_path;
use fix::xpath::parse_path;

fn main() {
    let xml = xmark(GenConfig::scaled(4.0));
    let mut coll = Collection::new();
    coll.add_xml(&xml)
        .expect("generated document is well-formed");
    let stats = coll.stats();
    println!(
        "XMark-like document: {} elements, max depth {}, ~{} KiB",
        stats.elements,
        stats.max_depth,
        stats.bytes / 1024
    );

    let t = Instant::now();
    let index = FixIndex::build(&mut coll, FixOptions::large_document(6));
    println!(
        "depth-6 index built in {:?}: {} entries, {} distinct patterns, {} oversized fallbacks\n",
        t.elapsed(),
        index.entry_count(),
        index.stats().distinct_patterns,
        index.stats().fallbacks,
    );

    println!(
        "{:<58} {:>9} {:>11} {:>11} {:>8}",
        "query", "results", "FIX", "NoK scan", "speedup"
    );
    for query in [
        "//category/description[parlist]/parlist/listitem/text",
        "//closed_auction/annotation/description/text",
        "//open_auction[seller]/annotation/description/text",
        "//item/mailbox/mail/text/emph/keyword",
        "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
    ] {
        let t = Instant::now();
        let out = index.query(&coll, query).expect("covered query");
        let fix_time = t.elapsed();

        let path = parse_path(query).expect("parseable");
        let doc = coll.doc(DocId(0));
        let t = Instant::now();
        let baseline = eval_path(doc, &coll.labels, &path);
        let nok_time = t.elapsed();

        assert_eq!(
            out.results.len(),
            baseline.len(),
            "result mismatch on {query}"
        );
        println!(
            "{:<58} {:>9} {:>11?} {:>11?} {:>7.1}x",
            query,
            out.results.len(),
            fix_time,
            nok_time,
            nok_time.as_secs_f64() / fix_time.as_secs_f64().max(1e-9),
        );
    }
}
