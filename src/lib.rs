//! # FIX — Feature-based Indexing for XML
//!
//! A from-scratch Rust reproduction of *FIX: Feature-based Indexing
//! Technique for XML Documents* (Zhang, Özsu, Ilyas, Aboulnaga;
//! University of Waterloo TR CS-2006-07 / VLDB 2006).
//!
//! FIX indexes XML twig patterns by **spectral features**: each indexable
//! unit is reduced to its bisimulation graph, encoded as a skew-symmetric
//! matrix, and keyed by `(λ_max, λ_min, root label)` in a B-tree.
//! Eigenvalue-range *containment* (Theorem 3) makes lookups sound — the
//! candidate set can contain false positives (removed by a refinement
//! pass) but never false negatives.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`core`] — the index itself: construction (Algorithm 1), query
//!   processing (Algorithm 2), clustered/unclustered variants, the value
//!   extension, and the Section 6.2 metrics.
//! * [`xml`] — XML data model, parser, serializer, event streams.
//! * [`xpath`] — the path-expression fragment, twig queries, and the
//!   Section 5 decomposition.
//! * [`bisim`] — bisimulation graphs (including the F&B baseline
//!   partition) and the depth-limited subpattern traveler.
//! * [`spectral`] — matrix translation, eigensolver, feature extraction.
//! * [`storage`] / [`btree`] — the paged-storage and B+-tree substrate.
//! * [`exec`] — query evaluators: NoK-style navigation, bottom-up twig
//!   matching, and F&B index evaluation.
//! * [`datagen`] — deterministic synthetic corpora shaped like the
//!   paper's four data sets, plus the random query generator.
//! * [`obs`] — observability: the metrics registry, per-query stage
//!   traces, and Prometheus/JSON exposition.
//!
//! ## Quick start
//!
//! [`FixDatabase`] is the facade: open (or create) a database, add
//! documents, build, query. [`FixOptions::builder`] names every
//! construction knob; `threads(n)` parallelises the build pipeline with a
//! bit-identical result (0 = all cores), `query_threads(n)` does the same
//! for the refinement phase of query serving. Every failure is one
//! [`FixError`].
//!
//! ```
//! use fix::{FixDatabase, FixOptions};
//!
//! # fn main() -> Result<(), fix::FixError> {
//! let mut db = FixDatabase::in_memory();
//! db.add_xml("<bib><article><author/><ee/></article></bib>")?;
//! db.add_xml("<bib><book><author/></book></bib>")?;
//!
//! db.build(FixOptions::builder().depth_limit(6).threads(2).build())?;
//! let out = db.query("//article[author]/ee")?;
//! assert_eq!(out.results.len(), 1);
//! println!("pruning power: {:.2}", out.metrics.pp());
//! # Ok(())
//! # }
//! ```
//!
//! ## Concurrent serving
//!
//! [`QuerySession`] snapshots a database for shared-read serving: clone
//! it across threads, get plan caching (parse/decompose/eigen-features
//! memoized per normalized query) and parallel candidate refinement for
//! free — with results byte-identical to the sequential path.
//!
//! ```
//! use fix::{FixDatabase, FixOptions};
//!
//! # fn main() -> Result<(), fix::FixError> {
//! let mut db = FixDatabase::in_memory();
//! db.add_xml("<bib><article><author/><ee/></article></bib>")?;
//! db.build(FixOptions::builder().query_threads(2).build())?;
//! let session = db.session()?;
//! session.query("//article[author]/ee")?; // warm the shared plan cache
//! std::thread::scope(|s| {
//!     for _ in 0..4 {
//!         let session = session.clone();
//!         s.spawn(move || session.query("//article[author]/ee").unwrap());
//!     }
//! });
//! assert!(session.cache_stats().hits >= 4);
//! # Ok(())
//! # }
//! ```
//!
//! The lower-level pieces stay available for code that wants to own them:
//!
//! ```
//! use fix::core::{Collection, FixIndex, FixOptions};
//!
//! let mut coll = Collection::new();
//! coll.add_xml("<bib><article><author/><ee/></article></bib>").unwrap();
//! let index = FixIndex::build(&mut coll, FixOptions::collection());
//! assert_eq!(index.query(&coll, "//article/author").unwrap().results.len(), 1);
//! ```

pub use fix_core as core;

// The facade types, re-exported at the root: most applications need
// nothing beyond these.
pub use fix_core::{
    BufferPool, Category, Durability, Event, EventRecorder, FieldValue, FixDatabase, FixError,
    FixOptions, LevelStats, PoolStats, QuerySession, Severity, StorageMode, WalStats, WriteBatch,
    WriteOp,
};

/// XML data model, parser, and event streams (`fix-xml`).
pub mod xml {
    pub use fix_xml::*;
}

/// Path expressions and twig queries (`fix-xpath`).
pub mod xpath {
    pub use fix_xpath::*;
}

/// Bisimulation graphs and the F&B baseline (`fix-bisim`).
pub mod bisim {
    pub use fix_bisim::*;
}

/// Spectral features (`fix-spectral`).
pub mod spectral {
    pub use fix_spectral::*;
}

/// Paged storage substrate (`fix-storage`).
pub mod storage {
    pub use fix_storage::*;
}

/// Disk B+-tree (`fix-btree`).
pub mod btree {
    pub use fix_btree::*;
}

/// Query evaluators and baselines (`fix-exec`).
pub mod exec {
    pub use fix_exec::*;
}

/// Synthetic data sets and random queries (`fix-datagen`).
pub mod datagen {
    pub use fix_datagen::*;
}

/// Observability: metrics registry, query traces, exposition (`fix-obs`).
pub mod obs {
    pub use fix_obs::*;
}
