//! `fixdb` — command-line front end for the FIX index.
//!
//! ```text
//! fixdb build       <db> [--depth-limit K] [--clustered] [--values BETA] [--bloom] [--paged] [--pool-pages N] [--threads N] [--max-depth D] <file.xml>...
//! fixdb query       <db> <xpath> [--metrics] [--show N] [--plan] [--explain] [--analyze] [--trace] [--json] [--timeout-ms MS]
//! fixdb bench-query <db> <xpath>... [--threads N] [--repeat R] [--json]
//! fixdb add         <db> [--batch DIR] [--durability sync|group[:MS]|async] [--seal-bytes N] [--full-save] <file.xml>...   (alias: insert)
//! fixdb remove      <db> [--durability sync|group[:MS]|async] [--full-save] <doc-id>...
//! fixdb wal         <db>
//! fixdb vacuum      <db>
//! fixdb compact     <db>
//! fixdb repair      <db>
//! fixdb verify      <db> [--salvage OUT]
//! fixdb stats       <db> [--prometheus] [--json] [--interval SECS] [--count N]
//! fixdb events      <db> [--json] [--follow] [--for-ms MS] [--category C[,C…]] [--slow] [--slow-ns NS] [--seal-bytes N] [--commit FILE]...
//! fixdb top         <db> [--interval SECS] [--count N]
//! fixdb gen         <tcmd|dblp|xmark|treebank> [--scale S] [--out PATH]
//! ```
//!
//! `build` indexes XML files into a self-contained database file; `query`
//! runs an XPath twig over it (`--trace` prints the per-stage pipeline
//! breakdown, `--json` emits the machine-readable equivalent, `--analyze`
//! is EXPLAIN ANALYZE — the static plan plus one real traced execution);
//! `bench-query` serves a batch of queries through a
//! [`QuerySession`](fix::core::QuerySession) — plan cache plus parallel
//! refinement — and reports timings, cache hit-rate, and a verification
//! against the sequential path (`--json` adds per-stage p50/p95/p99 from
//! the registry histograms); `verify` is the offline integrity check
//! (fsck): it walks every checksummed frame of the file and reports
//! per-section health with byte offsets, and `--salvage OUT` recovers the
//! intact sections into a fresh, rebuilt database; `stats
//! --prometheus|--json` renders the metrics registry; `add` appends
//! documents incrementally through the delta index (every index kind,
//! clustered included) and `compact` folds the delta run into the base
//! B+-tree; `gen` writes the paper-shaped synthetic corpora for
//! experimentation. Everything routes through the [`FixDatabase`] facade.
//!
//! `build --paged` writes the v4 paged format instead of the in-memory
//! (v3) one: pages are then demand-read through a buffer pool of
//! `--pool-pages` frames when the database is opened, so cold start and
//! resident memory stop scaling with file size. `stats --json` exposes
//! the pool counters as `fix_pool_*` gauges.
//!
//! Mutations (`add`, `remove`) commit through the write-ahead log beside
//! the database file (`<db>.wal/`) instead of rewriting it — `add
//! --batch DIR` commits every `.xml` under DIR as one atomic batch,
//! `--durability` picks the fsync policy (`sync`, `group[:MS]`,
//! `async`), and `--full-save` restores the old rewrite-on-every-run
//! behavior (checkpointing the log away). `wal` shows the log and the
//! delta tier levels; the same numbers appear in `stats` as `fix_wal_*`
//! and `fix_level_*` metrics.
//!
//! `repair` is the *online* half of recovery: where `verify --salvage`
//! rebuilds a corrupt file offline into a new path, `repair` re-derives
//! the index state (B+-tree, clustered copies, directories) in memory
//! from the primary documents, clears any pages the buffer pool
//! quarantined after failed reads, and checkpoints the clean image in
//! place. `query --timeout-ms MS` runs with a cooperative deadline:
//! the scan and refine loops poll a cancel token and the command exits
//! nonzero with a `deadline exceeded` error instead of running away.
//! Setting `FIXDB_READ_FAULT=nth:error|short|torn:KEEP` injects a
//! deterministic fault into the nth physical read (page fetch, WAL
//! recovery read, metadata tail) for fault-drill testing, mirroring
//! `FIXDB_WAL_FAULT` on the write side.
//!
//! `events` dumps the flight recorder: opening the database replays its
//! WAL, so the dump narrates recovery (`recovery.replay`, torn tails,
//! token mismatches) and the tier work replay triggered (`tier.freeze`,
//! `tier.merge`); `--commit FILE` additionally commits documents
//! in-process so the full live chain — `commit` → `wal.seal` →
//! `tier.freeze` → `tier.merge` — lands in the same dump. `--slow` shows
//! the slow-op log instead (`--slow-ns` adjusts the promotion threshold
//! before any in-process work runs). `top` is a live terminal dashboard
//! and `stats --interval` its plain-text sibling: both diff
//! `MetricsSnapshot`s over the interval and print rates (queries/s,
//! commits/s, window fsync latency, pool hit rate) plus current levels
//! (WAL tail depth, tier shape) — the same arithmetic, one renderer each.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::{Duration, Instant};

use fix::core::Collection;
use fix::datagen::GenConfig;
use fix::{Durability, FixDatabase, FixError, FixOptions, StorageMode, WriteBatch};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = arm_read_fault() {
        eprintln!("fixdb: {e}");
        return ExitCode::FAILURE;
    }
    let result = match args.first().map(String::as_str) {
        Some("build") => build(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("bench-query") => bench_query(&args[1..]),
        Some("insert") | Some("add") => insert(&args[1..]),
        Some("remove") => remove(&args[1..]),
        Some("wal") => wal(&args[1..]),
        Some("vacuum") => vacuum(&args[1..]),
        Some("compact") => compact(&args[1..]),
        Some("repair") => repair(&args[1..]),
        Some("verify") => verify(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("events") => events_cmd(&args[1..]),
        Some("top") => top(&args[1..]),
        Some("gen") => gen(&args[1..]),
        _ => {
            eprintln!(
                "usage: fixdb <build|query|bench-query|add|remove|wal|vacuum|compact|repair|verify|stats|events|top|gen> ...\n\
                 \n\
                 fixdb build       <db> [--depth-limit K] [--clustered] [--values BETA] [--bloom] [--paged] [--pool-pages N] [--threads N] [--max-depth D] <file.xml>...\n\
                 fixdb query       <db> <xpath> [--metrics] [--show N] [--plan] [--explain] [--analyze] [--trace] [--json] [--timeout-ms MS]\n\
                 fixdb bench-query <db> <xpath>... [--threads N] [--repeat R] [--json]\n\
                 fixdb add         <db> [--batch DIR] [--durability sync|group[:MS]|async] [--seal-bytes N] [--full-save] <file.xml>...   (alias: insert)\n\
                 fixdb remove      <db> [--durability sync|group[:MS]|async] [--full-save] <doc-id>...\n\
                 fixdb wal         <db>\n\
                 fixdb vacuum      <db>\n\
                 fixdb compact     <db>\n\
                 fixdb repair      <db>\n\
                 fixdb verify      <db> [--salvage OUT]\n\
                 fixdb stats       <db> [--prometheus] [--json] [--interval SECS] [--count N]\n\
                 fixdb events      <db> [--json] [--follow] [--for-ms MS] [--category C[,C…]] [--slow] [--slow-ns NS] [--seal-bytes N] [--commit FILE]...\n\
                 fixdb top         <db> [--interval SECS] [--count N]\n\
                 fixdb gen         <tcmd|dblp|xmark|treebank> [--scale S] [--out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fixdb: {e}");
            ExitCode::FAILURE
        }
    }
}

fn err(msg: impl Into<String>) -> Box<dyn std::error::Error> {
    msg.into().into()
}

/// Opens an existing database, rejecting paths that do not exist yet
/// (`FixDatabase::open` would silently start an empty one).
fn open_existing(path: &str) -> Result<FixDatabase, Box<dyn std::error::Error>> {
    if !std::path::Path::new(path).exists() {
        return Err(err(format!("no such database: {path}")));
    }
    Ok(FixDatabase::open(path)?)
}

fn build(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut db_path: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut builder = FixOptions::builder();
    let mut max_depth = fix::xml::DEFAULT_MAX_DEPTH;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--depth-limit" => {
                let k: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--depth-limit needs an integer"))?;
                builder = builder.depth_limit(k);
            }
            "--clustered" => builder = builder.clustered(true),
            "--values" => {
                let beta: u32 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&b| b > 0)
                    .ok_or_else(|| err("--values needs a positive integer"))?;
                builder = builder.values(beta);
            }
            "--bloom" => builder = builder.edge_bloom(true),
            "--paged" => builder = builder.storage(StorageMode::Paged),
            "--pool-pages" => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n > 0)
                    .ok_or_else(|| err("--pool-pages needs a positive integer"))?;
                builder = builder.pool_pages(n);
            }
            "--threads" => {
                let n: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--threads needs an integer (0 = all cores)"))?;
                builder = builder.threads(n);
            }
            "--max-depth" => {
                let d: usize = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&d| d > 0)
                    .ok_or_else(|| err("--max-depth needs a positive integer"))?;
                max_depth = d;
                builder = builder.max_parse_depth(d);
            }
            _ if db_path.is_none() => db_path = Some(PathBuf::from(a)),
            _ => files.push(PathBuf::from(a)),
        }
    }
    let db_path = db_path.ok_or_else(|| err("missing database path"))?;
    if files.is_empty() {
        return Err(err("no input files"));
    }

    let mut coll = Collection::new();
    for f in &files {
        // Stream from disk — documents never need to fit in memory twice.
        let file = std::io::BufReader::new(std::fs::File::open(f)?);
        let doc = fix::xml::parse_document_from_reader_limited(file, &mut coll.labels, max_depth)
            .map_err(|e| err(format!("{}: {e}", f.display())))?;
        coll.add_document(doc);
    }
    let mut db = FixDatabase::from_parts(coll, None);
    db.build(builder.build())?;
    db.save_as(&db_path)?;
    let s = *db.stats().expect("freshly built");
    println!(
        "indexed {} documents ({} entries, {} distinct patterns) in {:?}",
        db.len(),
        s.entries,
        s.distinct_patterns,
        s.build_time
    );
    if s.threads > 1 {
        println!(
            "threads: {} (stream {:?}, discover {:?}, extract {:?}, load {:?})",
            s.threads, s.stream_time, s.discover_time, s.extract_time, s.load_time
        );
    }
    println!(
        "index size: {} KiB (B-tree {} KiB{})",
        s.index_bytes() / 1024,
        s.btree_bytes / 1024,
        if s.clustered_bytes > 0 {
            format!(", clustered copies {} KiB", s.clustered_bytes / 1024)
        } else {
            String::new()
        }
    );
    println!("written to {}", db_path.display());
    Ok(())
}

fn query(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut db_path: Option<&str> = None;
    let mut xpath: Option<&str> = None;
    let mut metrics = false;
    let mut plan = false;
    let mut explain = false;
    let mut analyze = false;
    let mut trace = false;
    let mut json = false;
    let mut show = 10usize;
    let mut timeout: Option<Duration> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metrics" => metrics = true,
            "--plan" => plan = true,
            "--explain" => explain = true,
            "--analyze" => analyze = true,
            "--trace" => trace = true,
            "--json" => json = true,
            "--show" => {
                show = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--show needs an integer"))?;
            }
            "--timeout-ms" => {
                let ms: u64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--timeout-ms needs a number of milliseconds"))?;
                timeout = Some(Duration::from_millis(ms));
            }
            _ if db_path.is_none() => db_path = Some(a),
            _ if xpath.is_none() => xpath = Some(a),
            other => return Err(err(format!("unexpected argument `{other}`"))),
        }
    }
    let db_path = db_path.ok_or_else(|| err("missing database path"))?;
    let xpath = xpath.ok_or_else(|| err("missing query"))?;
    if timeout.is_some() && (plan || explain || analyze) {
        return Err(err(
            "--timeout-ms applies to query execution; drop --plan/--explain/--analyze",
        ));
    }
    let db = open_existing(db_path)?;
    let coll = db.collection();
    if explain {
        let idx = db.index().ok_or(FixError::NoIndex)?;
        let path = fix::xpath::parse_path(xpath).map_err(|e| err(e.to_string()))?;
        let e = idx.explain(coll, &path).map_err(|e| err(e.to_string()))?;
        print!("{e}");
        return Ok(());
    }
    if analyze {
        // EXPLAIN ANALYZE: the static plan plus one real traced execution
        // with the Section 6.2 effectiveness numbers from actual counts.
        let idx = db.index().ok_or(FixError::NoIndex)?;
        let ea = idx
            .explain_analyze(coll, xpath, 1)
            .map_err(|e| err(e.to_string()))?;
        print!("{ea}");
        return Ok(());
    }
    if trace || json {
        // Route through a session so the trace covers the full serving
        // pipeline, plan-cache probe included.
        let session = db.session()?;
        let traced = match timeout {
            // The deadline variant hands back the partial trace alongside
            // the error so an expired query still shows where the time
            // went.
            Some(tmo) => match session.query_with_deadline_traced(xpath, tmo) {
                (Ok(v), qtrace) => Ok((v, qtrace)),
                (Err(FixError::DeadlineExceeded { elapsed }), qtrace) => {
                    eprint!("{qtrace}");
                    return Err(err(format!(
                        "deadline exceeded after {elapsed:?} (partial trace above; raise --timeout-ms)"
                    )));
                }
                (Err(e), _) => Err(e),
            },
            None => session.query_traced(xpath),
        };
        let (out, qtrace) = match traced {
            Ok(v) => v,
            Err(FixError::NotCovered {
                query_depth,
                depth_limit,
            }) => {
                return Err(err(format!(
                    "query depth {query_depth} exceeds the index depth limit {depth_limit}; \
                     rebuild with a larger --depth-limit"
                )))
            }
            Err(e) => return Err(err(e.to_string())),
        };
        let m = out.metrics;
        if json {
            let mut w = fix::obs::json::JsonWriter::new();
            w.begin_object();
            w.key("query").string(xpath);
            w.key("results").u64(out.results.len() as u64);
            w.key("metrics").begin_object();
            w.key("entries").u64(m.entries);
            w.key("candidates").u64(m.candidates);
            w.key("producing").u64(m.producing);
            w.key("sel").f64(m.sel());
            w.key("pp").f64(m.pp());
            w.key("fpr").f64(m.fpr());
            w.end_object();
            w.key("trace");
            qtrace.write_json(&mut w);
            w.end_object();
            println!("{}", w.finish());
            return Ok(());
        }
        println!("{} results in {:?}", out.results.len(), qtrace.total);
        for (doc, node) in out.results.iter().take(show) {
            let d = coll.doc(*doc);
            let label = coll.labels.resolve(d.label(*node).expect("element result"));
            println!("  doc {} node {} <{}>", doc.0, node.0, label);
        }
        if out.results.len() > show {
            println!("  … and {} more (use --show N)", out.results.len() - show);
        }
        print!("{qtrace}");
        if metrics {
            println!(
                "metrics: entries {} candidates {} producing {} | sel {:.2}% pp {:.2}% fpr {:.2}%",
                m.entries,
                m.candidates,
                m.producing,
                100.0 * m.sel(),
                100.0 * m.pp(),
                100.0 * m.fpr()
            );
        }
        return Ok(());
    }
    if plan {
        // Histogram-based plan selection (Section 5's cost model): run
        // whichever of index-probe or full scan the estimate prefers.
        let idx = db.index().ok_or(FixError::NoIndex)?;
        let path = fix::xpath::parse_path(xpath).map_err(|e| err(e.to_string()))?;
        let hist = fix::core::LambdaHistogram::build(idx);
        let t = std::time::Instant::now();
        let (chosen, results) = idx.query_auto(coll, &hist, &path, 0.1);
        println!("plan: {chosen:?}");
        println!("{} results in {:?}", results.len(), t.elapsed());
        for (doc, node) in results.iter().take(show) {
            let d = coll.doc(*doc);
            let label = coll.labels.resolve(d.label(*node).expect("element result"));
            println!("  doc {} node {} <{}>", doc.0, node.0, label);
        }
        return Ok(());
    }
    let t = std::time::Instant::now();
    let res = match timeout {
        Some(tmo) => db.session()?.query_with_deadline(xpath, tmo),
        None => db.query(xpath),
    };
    let out = match res {
        Ok(o) => o,
        Err(FixError::NotCovered {
            query_depth,
            depth_limit,
        }) => {
            return Err(err(format!(
                "query depth {query_depth} exceeds the index depth limit {depth_limit}; \
                 rebuild with a larger --depth-limit"
            )))
        }
        Err(FixError::DeadlineExceeded { elapsed }) => {
            return Err(err(format!(
                "deadline exceeded after {elapsed:?} (raise --timeout-ms)"
            )))
        }
        Err(e) => return Err(err(e.to_string())),
    };
    let elapsed = t.elapsed();
    println!("{} results in {elapsed:?}", out.results.len());
    for (doc, node) in out.results.iter().take(show) {
        let d = coll.doc(*doc);
        let label = coll.labels.resolve(d.label(*node).expect("element result"));
        let preview = d.text_content(*node);
        let preview: String = preview.chars().take(40).collect();
        println!("  doc {} node {} <{}> {:?}", doc.0, node.0, label, preview);
    }
    if out.results.len() > show {
        println!("  … and {} more (use --show N)", out.results.len() - show);
    }
    if metrics {
        let m = out.metrics;
        println!(
            "metrics: entries {} candidates {} producing {} | sel {:.2}% pp {:.2}% fpr {:.2}%",
            m.entries,
            m.candidates,
            m.producing,
            100.0 * m.sel(),
            100.0 * m.pp(),
            100.0 * m.fpr()
        );
    }
    Ok(())
}

/// Serves a batch of queries through a `QuerySession` — the concurrent
/// query path with plan caching and parallel refinement — and reports
/// round timings plus cache effectiveness. Every outcome is verified
/// byte-identical against the sequential `FixDatabase::query` path.
fn bench_query(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut db_path: Option<&str> = None;
    let mut queries: Vec<&str> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut repeat = 5usize;
    let mut json = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("--threads needs an integer (0 = all cores)"))?,
                );
            }
            "--repeat" => {
                repeat = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&r| r > 0)
                    .ok_or_else(|| err("--repeat needs a positive integer"))?;
            }
            _ if db_path.is_none() => db_path = Some(a),
            _ => queries.push(a),
        }
    }
    let db_path = db_path.ok_or_else(|| err("missing database path"))?;
    if queries.is_empty() {
        return Err(err("no queries"));
    }
    let db = open_existing(db_path)?;
    let mut session = db.session()?;
    if let Some(n) = threads {
        session = session.with_threads(n);
    }
    if !json {
        println!(
            "serving {} queries × {} rounds, {} refinement thread(s)",
            queries.len(),
            repeat,
            session.threads()
        );
    }
    let mut total = Duration::ZERO;
    for q in &queries {
        let t = Instant::now();
        let cold = session.query(q).map_err(|e| err(format!("{q}: {e}")))?;
        let cold_time = t.elapsed();
        let mut warm_time = Duration::ZERO;
        for _ in 1..repeat {
            let t = Instant::now();
            let warm = session.query(q).map_err(|e| err(format!("{q}: {e}")))?;
            warm_time += t.elapsed();
            if warm != cold {
                return Err(err(format!("non-deterministic results on `{q}`")));
            }
        }
        // The session's parallel, cached path must be byte-identical to
        // the sequential facade path.
        let sequential = db.query(q).map_err(|e| err(format!("{q}: {e}")))?;
        if sequential != cold {
            return Err(err(format!(
                "session diverged from the sequential path on `{q}`"
            )));
        }
        total += cold_time + warm_time;
        if json {
            continue;
        }
        if repeat > 1 {
            println!(
                "  {q}: {} results, cold {cold_time:?}, warm avg {:?}",
                cold.results.len(),
                warm_time / (repeat - 1) as u32
            );
        } else {
            println!("  {q}: {} results in {cold_time:?}", cold.results.len());
        }
    }
    let s = session.cache_stats();
    if json {
        // Per-stage latency distributions come from the registry the
        // session recorded into (shared with the database).
        session.report_cache_stats();
        db.report_metrics();
        let snap = db.metrics().snapshot();
        let mut w = fix::obs::json::JsonWriter::new();
        let quantiles = |w: &mut fix::obs::json::JsonWriter, h: &fix::obs::HistogramSnapshot| {
            w.key("count").u64(h.count);
            for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                w.key(label);
                match h.quantile(q) {
                    Some(v) => w.u64(v),
                    None => w.null(),
                };
            }
        };
        w.begin_object();
        w.key("queries").u64(queries.len() as u64);
        w.key("rounds").u64(repeat as u64);
        w.key("threads").u64(session.threads() as u64);
        w.key("total_ns")
            .u64(u64::try_from(total.as_nanos()).unwrap_or(u64::MAX));
        if let Some(h) = snap.histogram("fix_query_wall_ns") {
            w.key("query_wall_ns").begin_object();
            quantiles(&mut w, h);
            w.end_object();
        }
        w.key("stages").begin_object();
        for stage in fix::core::Stage::ALL {
            if let Some(h) = snap.histogram(stage.metric_name()) {
                w.key(stage.name()).begin_object();
                quantiles(&mut w, h);
                w.end_object();
            }
        }
        w.end_object();
        w.key("plan_cache").begin_object();
        w.key("hits").u64(s.hits);
        w.key("misses").u64(s.misses);
        w.key("evictions").u64(s.evictions);
        w.key("entries").u64(s.entries as u64);
        w.key("capacity").u64(s.capacity as u64);
        w.end_object();
        // Buffer-pool traffic this process generated — for a paged
        // database, the live view of demand reads and evictions.
        if let Some(p) = db.pool_stats() {
            w.key("pool").begin_object();
            w.key("resident").u64(p.resident as u64);
            w.key("capacity").u64(p.capacity as u64);
            w.key("hits").u64(p.hits);
            w.key("misses").u64(p.misses);
            w.key("evictions").u64(p.evictions);
            w.key("crc_failures").u64(p.crc_failures);
            w.end_object();
        }
        w.end_object();
        println!("{}", w.finish());
        return Ok(());
    }
    println!(
        "total {total:?} | plan cache: {} hits / {} misses ({:.1}% hit rate, {} cached)",
        s.hits,
        s.misses,
        100.0 * s.hit_rate(),
        s.entries
    );
    println!("all outcomes verified against the sequential path");
    Ok(())
}

/// Parses a `--durability` operand: `sync`, `group` / `group:MS`, or
/// `async`.
fn parse_durability(s: &str) -> Result<Durability, Box<dyn std::error::Error>> {
    match s {
        "sync" => Ok(Durability::Sync),
        "async" => Ok(Durability::Async),
        "group" => Ok(Durability::Group {
            max_wait: Duration::from_millis(5),
        }),
        _ => match s.strip_prefix("group:").and_then(|ms| ms.parse().ok()) {
            Some(ms) => Ok(Durability::Group {
                max_wait: Duration::from_millis(ms),
            }),
            None => Err(err(format!(
                "bad durability `{s}` (expected sync, group, group:MS, or async)"
            ))),
        },
    }
}

/// Deterministic WAL fault injection for crash testing, armed via
/// `FIXDB_WAL_FAULT=nth:error|truncate|torn:KEEP|disk-full` (e.g.
/// `0:torn:5` tears the first record write after 5 bytes; `0:disk-full`
/// makes it fail with ENOSPC, flipping the database read-only). Hidden
/// behind an env var so it can never be tripped by a stray CLI flag.
fn arm_wal_fault(db: &mut FixDatabase) -> Result<(), Box<dyn std::error::Error>> {
    let Ok(spec) = std::env::var("FIXDB_WAL_FAULT") else {
        return Ok(());
    };
    use fix::storage::{FaultKind, FaultPlan};
    let bad = || {
        err(format!(
            "bad FIXDB_WAL_FAULT `{spec}` (nth:error|truncate|torn:KEEP|disk-full)"
        ))
    };
    let mut parts = spec.split(':');
    let nth: usize = parts.next().and_then(|s| s.parse().ok()).ok_or_else(bad)?;
    let kind = match (parts.next(), parts.next()) {
        (Some("error"), None) => FaultKind::Error,
        (Some("truncate"), None) => FaultKind::Truncate,
        (Some("disk-full"), None) => FaultKind::DiskFull,
        (Some("torn"), Some(keep)) => FaultKind::Torn {
            keep: keep.parse().map_err(|_| bad())?,
        },
        _ => return Err(bad()),
    };
    db.set_wal_fault(Some(FaultPlan::new(nth, kind)));
    Ok(())
}

/// Deterministic *read*-path fault injection, armed via
/// `FIXDB_READ_FAULT=nth:error|short|torn:KEEP` before any database I/O
/// happens — the nth physical read on this thread (buffer-pool page
/// fetch, WAL recovery read, metadata tail) then fails, comes back
/// short, or comes back bit-flipped. One-shot: the fault disarms after
/// firing, so the command demonstrates detection + structured error
/// rather than a hard loop.
fn arm_read_fault() -> Result<(), Box<dyn std::error::Error>> {
    let Ok(spec) = std::env::var("FIXDB_READ_FAULT") else {
        return Ok(());
    };
    let plan = fix::storage::ReadFaultPlan::parse(&spec)
        .map_err(|e| err(format!("bad FIXDB_READ_FAULT `{spec}`: {e}")))?;
    fix::storage::set_read_fault(Some(plan));
    Ok(())
}

/// `fixdb add` / `fixdb insert`: incremental insertion through the delta
/// index. Each document is feature-extracted on its own (no rebuild of
/// the existing entries); when the delta outgrows
/// `FixOptions::compact_ratio` × the base tree it is folded automatically.
/// Durability comes from the write-ahead log — the database file itself
/// is only rewritten under `--full-save`. `--batch DIR` commits every
/// `.xml` file under DIR as one atomic batch.
fn insert(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut db_path: Option<&str> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut batch_dirs: Vec<PathBuf> = Vec::new();
    let mut durability: Option<Durability> = None;
    let mut seal_bytes: Option<u64> = None;
    let mut full_save = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--batch" => {
                batch_dirs.push(PathBuf::from(
                    it.next().ok_or_else(|| err("--batch needs a directory"))?,
                ));
            }
            "--durability" => {
                durability = Some(parse_durability(
                    it.next()
                        .ok_or_else(|| err("--durability needs a policy"))?,
                )?);
            }
            "--seal-bytes" => {
                seal_bytes = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("--seal-bytes needs a number of bytes"))?,
                );
            }
            "--full-save" => full_save = true,
            _ if db_path.is_none() => db_path = Some(a),
            _ => files.push(PathBuf::from(a)),
        }
    }
    let db_path = db_path.ok_or_else(|| err("missing database path"))?;
    if files.is_empty() && batch_dirs.is_empty() {
        return Err(err("no input files (positional <file.xml> or --batch DIR)"));
    }
    let mut db = open_existing(db_path)?;
    if db.index().is_none() {
        return Err(err("database has no index"));
    }
    if let Some(d) = durability {
        db.set_durability(d);
    }
    if let Some(b) = seal_bytes {
        db.set_wal_seal_bytes(b);
    }
    arm_wal_fault(&mut db)?;

    let mut batch = WriteBatch::new();
    for f in &files {
        let xml = std::fs::read_to_string(f).map_err(|e| err(format!("{}: {e}", f.display())))?;
        batch.add_xml(xml);
    }
    for dir in &batch_dirs {
        let mut xmls: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| err(format!("{}: {e}", dir.display())))?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "xml"))
            .collect();
        xmls.sort(); // deterministic id assignment
        if xmls.is_empty() {
            return Err(err(format!("no .xml files under {}", dir.display())));
        }
        for f in xmls {
            let xml =
                std::fs::read_to_string(&f).map_err(|e| err(format!("{}: {e}", f.display())))?;
            batch.add_xml(xml);
        }
    }
    let n = batch.len();
    let t = Instant::now();
    let ids = db.write(batch)?;
    let committed = t.elapsed();
    if full_save {
        db.save()?;
    }
    let idx = db.index().expect("checked above");
    println!(
        "committed {n} documents in {committed:?} (ids {}..{}); database now holds {} documents, {} entries ({} in the delta)",
        ids.first().map(|d| d.0).unwrap_or(0),
        ids.last().map(|d| d.0).unwrap_or(0),
        db.len(),
        idx.entry_count(),
        idx.delta_len()
    );
    if let Some(w) = db.wal_stats() {
        println!(
            "wal: {} records across {} segments ({} fsyncs, durability {})",
            w.records,
            w.segments,
            w.fsyncs,
            db.durability().name()
        );
    } else if full_save {
        println!("checkpointed to {db_path} (no live log)");
    }
    Ok(())
}

/// `fixdb compact`: explicitly folds the delta run into the base B+-tree
/// (the automatic trigger is `FixOptions::compact_ratio`).
fn compact(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = args.first().ok_or_else(|| err("missing database path"))?;
    let mut db = open_existing(db_path)?;
    let before = db.index().map(|i| i.delta_len()).unwrap_or(0);
    let t = Instant::now();
    db.compact()?;
    let elapsed = t.elapsed();
    db.save()?;
    let idx = db.index().expect("compact requires an index");
    println!(
        "compacted {} delta entries into the base tree in {:?}; {} entries total",
        before,
        elapsed,
        idx.entry_count()
    );
    Ok(())
}

fn remove(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut db_path: Option<&str> = None;
    let mut ids: Vec<u32> = Vec::new();
    let mut durability: Option<Durability> = None;
    let mut full_save = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--durability" => {
                durability = Some(parse_durability(
                    it.next()
                        .ok_or_else(|| err("--durability needs a policy"))?,
                )?);
            }
            "--full-save" => full_save = true,
            _ if db_path.is_none() => db_path = Some(a),
            _ => ids.push(a.parse().map_err(|_| err(format!("bad doc id `{a}`")))?),
        }
    }
    let db_path = db_path.ok_or_else(|| err("missing database path"))?;
    if ids.is_empty() {
        return Err(err("no document ids"));
    }
    let mut db = open_existing(db_path)?;
    if let Some(d) = durability {
        db.set_durability(d);
    }
    arm_wal_fault(&mut db)?;
    // One atomic batch: either every tombstone commits or none does
    // (a bad id rejects the lot before anything is logged).
    let mut batch = WriteBatch::new();
    for id in &ids {
        batch.remove_document(fix::core::DocId(*id));
    }
    let n = batch.len();
    db.write(batch)?;
    if full_save {
        db.save()?;
    }
    println!(
        "{} documents tombstoned ({} total live); run `fixdb vacuum` to reclaim space",
        n,
        db.len() - db.index().map(|i| i.removed_count()).unwrap_or(0)
    );
    Ok(())
}

/// `fixdb wal`: shows the write-ahead log beside the database (segments,
/// records, sync counters) and the delta index's tier levels it feeds.
fn wal(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = args.first().ok_or_else(|| err("missing database path"))?;
    let db = open_existing(db_path)?;
    let wal_dir = fix::storage::wal_dir(std::path::Path::new(db_path.as_str()));
    println!("log directory:     {}", wal_dir.display());
    match db.wal_stats() {
        None => println!("log:               none (no logged writes since the last checkpoint)"),
        Some(w) => {
            println!("segments:          {}", w.segments);
            println!(
                "records:           {} (replayed on this open: {})",
                w.records, w.replayed
            );
            println!(
                "tail:              {} records / {} bytes unsealed",
                w.tail_records, w.tail_bytes
            );
            println!("sealed segments:   {}", w.seals);
            println!("durability:        {}", db.durability().name());
        }
    }
    if let Some(idx) = db.index() {
        let d = idx.delta_stats();
        println!(
            "delta:             {} entries ({} unsealed, {} in frozen runs)",
            d.entries,
            d.tail_entries,
            d.entries - d.tail_entries
        );
        let levels = db.level_stats();
        if levels.is_empty() {
            println!("tiers:             empty (nothing sealed yet)");
        } else {
            println!("tiers:");
            for l in &levels {
                println!(
                    "  L{}: {} run(s), {} entries, {} KiB",
                    l.level,
                    l.runs,
                    l.entries,
                    l.bytes / 1024
                );
            }
        }
        println!(
            "read amplification: {} sorted source(s) per scan",
            1 + levels.iter().map(|l| l.runs).sum::<usize>() + usize::from(d.tail_entries > 0)
        );
    }
    Ok(())
}

fn vacuum(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = args.first().ok_or_else(|| err("missing database path"))?;
    let mut db = open_existing(db_path)?;
    let before = db.index().map(|i| i.removed_count()).unwrap_or(0);
    db.vacuum()?;
    db.save()?;
    println!(
        "vacuumed {} tombstoned documents; database now holds {} documents / {} entries",
        before,
        db.len(),
        db.index().map(|i| i.entry_count()).unwrap_or(0)
    );
    Ok(())
}

/// Online repair: re-derives the index state (B+-tree, clustered
/// copies, directories) from the primary documents, clearing any pages
/// the buffer pool quarantined after failed reads, then checkpoints the
/// clean image in place. The primary documents must still be readable —
/// if they are not, the error points at `fixdb verify --salvage`, the
/// offline recovery path.
fn repair(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = args.first().ok_or_else(|| err("missing database path"))?;
    let mut db = open_existing(db_path)?;
    let quarantined = db.quarantined_pages();
    if quarantined.is_empty() {
        println!("no pages quarantined; repairing derived state anyway");
    } else {
        let pages: Vec<String> = quarantined.iter().map(|p| p.0.to_string()).collect();
        println!(
            "{} quarantined page(s): {}",
            quarantined.len(),
            pages.join(", ")
        );
    }
    let report = db.repair().map_err(|e| {
        err(format!(
            "{e}\nprimary documents unreadable? try `fixdb verify {db_path} --salvage <out>`"
        ))
    })?;
    println!("{report}");
    Ok(())
}

/// Offline integrity check (fsck). Walks every checksummed frame of the
/// file — deliberately *without* loading it through `FixDatabase`, which
/// would refuse a corrupt file — and prints per-section health with byte
/// offsets. Exits nonzero on corruption unless `--salvage OUT` recovers
/// the intact sections into a fresh database (which is then verified).
fn verify(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut db_path: Option<&str> = None;
    let mut salvage: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--salvage" => {
                salvage = Some(PathBuf::from(
                    it.next()
                        .ok_or_else(|| err("--salvage needs an output path"))?,
                ));
            }
            _ if db_path.is_none() => db_path = Some(a),
            other => return Err(err(format!("unexpected argument `{other}`"))),
        }
    }
    let db_path = db_path.ok_or_else(|| err("missing database path"))?;
    let db_path = std::path::Path::new(db_path);
    if !db_path.exists() {
        return Err(err(format!("no such database: {}", db_path.display())));
    }
    let report = fix::core::verify_file(db_path)?;
    println!("{report}");
    if report.is_ok() {
        return Ok(());
    }
    let Some(out) = salvage else {
        return Err(err(format!(
            "{} corrupt section(s); run `fixdb verify {} --salvage <out>` to recover the intact sections",
            report.corrupt_count(),
            db_path.display()
        )));
    };
    let summary = fix::core::salvage_file(db_path, &out)?;
    print!("{summary}");
    let check = fix::core::verify_file(&out)?;
    if !check.is_ok() {
        return Err(err(format!(
            "salvaged output failed verification:\n{check}"
        )));
    }
    println!(
        "salvaged database written to {} (verified ok)",
        out.display()
    );
    Ok(())
}

fn stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut db_path: Option<&str> = None;
    let mut prometheus = false;
    let mut json = false;
    let mut interval: Option<f64> = None;
    let mut count = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--prometheus" => prometheus = true,
            "--json" => json = true,
            "--interval" => {
                interval = Some(parse_interval(it.next())?);
            }
            "--count" => {
                count = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--count needs a number"))?;
            }
            _ if db_path.is_none() => db_path = Some(a),
            other => return Err(err(format!("unexpected argument `{other}`"))),
        }
    }
    let db_path = db_path.ok_or_else(|| err("missing database path"))?;
    let db = open_existing(db_path)?;
    if let Some(secs) = interval {
        if prometheus || json {
            return Err(err(
                "--interval prints text rates; drop --prometheus/--json",
            ));
        }
        rate_watch(&db, secs, count, false);
        return Ok(());
    }
    if prometheus || json {
        // Refresh the level-style gauges and materialize the standard
        // per-query instruments before rendering.
        db.report_metrics();
        if prometheus {
            print!("{}", db.metrics().render_prometheus());
        }
        if json {
            println!("{}", db.metrics().render_json());
        }
        return Ok(());
    }
    let coll = db.collection();
    let idx = db.index().ok_or_else(|| err("database has no index"))?;
    let cs = coll.stats();
    let is = idx.stats();
    let o = idx.options();
    println!("documents:         {}", coll.len());
    println!("elements:          {}", cs.elements);
    println!("max depth:         {}", cs.max_depth);
    println!("distinct labels:   {}", coll.labels.len());
    println!("depth limit:       {}", o.depth_limit);
    println!("clustered:         {}", o.clustered);
    println!("value index β:     {:?}", o.value_beta);
    println!("edge bloom:        {}", o.edge_bloom);
    println!("storage:           {:?}", o.storage);
    if let Some(p) = db.pool_stats() {
        println!(
            "buffer pool:       {}/{} frames resident ({} pinned)",
            p.resident, p.capacity, p.pinned
        );
    }
    println!("index entries:     {}", is.entries);
    println!("index size:        {} KiB", is.index_bytes() / 1024);
    println!("delta entries:     {}", idx.delta_len());
    println!("delta size:        {} KiB", idx.delta_bytes() / 1024);
    let levels = db.level_stats();
    println!(
        "delta tiers:       {} level(s), {} frozen run(s)",
        levels.len(),
        levels.iter().map(|l| l.runs).sum::<usize>()
    );
    if let Some(w) = db.wal_stats() {
        println!(
            "wal:               {} records / {} segments (replayed {})",
            w.records, w.segments, w.replayed
        );
    }
    println!("tombstoned docs:   {}", idx.removed_count());
    // Top element labels by frequency.
    let mut counts: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for (_, d) in coll.iter() {
        for n in d.descendants_or_self(d.root()) {
            if let Some(l) = d.label(n) {
                *counts.entry(coll.labels.resolve(l)).or_insert(0) += 1;
            }
        }
    }
    let mut top: Vec<(&str, u64)> = counts.into_iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("top labels:");
    for (name, n) in top.iter().take(8) {
        println!("  {name:<24} {n}");
    }
    Ok(())
}

/// Parses a `--interval` operand: positive fractional seconds.
fn parse_interval(arg: Option<&String>) -> Result<f64, Box<dyn std::error::Error>> {
    arg.and_then(|s| s.parse::<f64>().ok())
        .filter(|s| s.is_finite() && *s > 0.0)
        .ok_or_else(|| err("--interval needs a positive number of seconds"))
}

/// Dumps the flight recorder. Opening the database replays its WAL, so
/// the recorder already narrates recovery and any replay-triggered tier
/// work by the time we read it; `--commit FILE` drives additional live
/// commits through the open database first, and `--slow-ns` moves the
/// slow-op promotion threshold before that work runs.
fn events_cmd(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut db_path: Option<&str> = None;
    let mut json = false;
    let mut follow = false;
    let mut for_ms: Option<u64> = None;
    let mut categories: Vec<fix::Category> = Vec::new();
    let mut slow = false;
    let mut slow_ns: Option<u64> = None;
    let mut seal_bytes: Option<u64> = None;
    let mut commits: Vec<PathBuf> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--follow" => follow = true,
            "--for-ms" => {
                for_ms = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("--for-ms needs a number of milliseconds"))?,
                );
            }
            "--category" => {
                let list = it.next().ok_or_else(|| err("--category needs a name"))?;
                for part in list.split(',') {
                    categories.push(fix::Category::parse(part).ok_or_else(|| {
                        err(format!(
                            "unknown category `{part}` (commit|wal|tier|compact|persist|recovery|pool)"
                        ))
                    })?);
                }
            }
            "--slow" => slow = true,
            "--slow-ns" => {
                slow_ns = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("--slow-ns needs a number of nanoseconds"))?,
                );
            }
            "--seal-bytes" => {
                seal_bytes = Some(
                    it.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("--seal-bytes needs a number of bytes"))?,
                );
            }
            "--commit" => {
                commits.push(PathBuf::from(
                    it.next().ok_or_else(|| err("--commit needs an XML file"))?,
                ));
            }
            _ if db_path.is_none() => db_path = Some(a),
            other => return Err(err(format!("unexpected argument `{other}`"))),
        }
    }
    let db_path = db_path.ok_or_else(|| err("missing database path"))?;
    let mut db = open_existing(db_path)?;
    if let Some(ns) = slow_ns {
        db.event_recorder().set_slow_threshold_ns(ns);
    }
    if let Some(b) = seal_bytes {
        db.set_wal_seal_bytes(b);
    }
    for f in &commits {
        let xml = std::fs::read_to_string(f).map_err(|e| err(format!("{}: {e}", f.display())))?;
        let mut batch = WriteBatch::new();
        batch.add_xml(xml);
        db.write(batch)?;
    }
    let keep =
        |e: &fix::Event| -> bool { categories.is_empty() || categories.contains(&e.category) };
    let read = |db: &FixDatabase| -> Vec<fix::Event> {
        let all = if slow { db.slow_ops() } else { db.events() };
        all.into_iter().filter(keep).collect()
    };
    if follow {
        // Poll the recorder, printing only events newer than the last seen
        // sequence number (the ring is read non-destructively, so repeated
        // reads overlap). JSON follow mode streams one object per line.
        let deadline = for_ms.map(|ms| Instant::now() + Duration::from_millis(ms));
        let mut next_seq = 0u64;
        loop {
            for e in read(&db) {
                if e.seq < next_seq {
                    continue;
                }
                next_seq = e.seq + 1;
                if json {
                    println!("{}", e.to_json());
                } else {
                    println!("{e}");
                }
            }
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Ok(());
                }
            }
            std::thread::sleep(Duration::from_millis(200));
        }
    }
    let events = read(&db);
    if json {
        let mut w = fix::obs::json::JsonWriter::new();
        w.begin_object();
        w.key("slow_threshold_ns")
            .u64(db.event_recorder().slow_threshold_ns());
        w.key("dropped").u64(db.event_recorder().dropped());
        w.key("events").begin_array();
        for e in &events {
            e.write_json(&mut w);
        }
        w.end_array();
        w.end_object();
        println!("{}", w.finish());
    } else {
        for e in &events {
            println!("{e}");
        }
        eprintln!(
            "{} event(s){}, {} dropped from the ring",
            events.len(),
            if slow { " in the slow-op log" } else { "" },
            db.event_recorder().dropped()
        );
    }
    Ok(())
}

/// Live terminal dashboard: repaints one screen of snapshot-delta rates
/// every `--interval` seconds. `--count N` stops after N frames (0 runs
/// until interrupted); the rate arithmetic is shared with
/// `stats --interval` via [`rate_watch`].
fn top(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut db_path: Option<&str> = None;
    let mut interval = 1.0f64;
    let mut count = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--interval" => interval = parse_interval(it.next())?,
            "--count" => {
                count = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--count needs a number"))?;
            }
            _ if db_path.is_none() => db_path = Some(a),
            other => return Err(err(format!("unexpected argument `{other}`"))),
        }
    }
    let db_path = db_path.ok_or_else(|| err("missing database path"))?;
    let db = open_existing(db_path)?;
    rate_watch(&db, interval, count, true);
    Ok(())
}

/// The shared loop behind `top` and `stats --interval`: snapshot, sleep,
/// snapshot again, diff, render. `clear` repaints over an ANSI-cleared
/// screen (`top`); otherwise each window prints as its own block.
/// `count == 0` runs until interrupted.
fn rate_watch(db: &FixDatabase, interval: f64, count: usize, clear: bool) {
    db.report_metrics();
    let mut prev = db.metrics().snapshot();
    let mut frames = 0usize;
    loop {
        let t0 = Instant::now();
        std::thread::sleep(Duration::from_secs_f64(interval));
        db.report_metrics();
        let cur = db.metrics().snapshot();
        let d = fix::obs::SnapshotDelta::new(&prev, &cur, t0.elapsed());
        if clear {
            // Clear the screen and home the cursor, like top(1).
            print!("\x1b[2J\x1b[H");
            println!("fixdb top — {:.1}s window (Ctrl-C to quit)", d.secs());
        } else {
            println!("-- {:.1}s window --", d.secs());
        }
        for line in rate_lines(&d, db) {
            println!("{line}");
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = cur;
        frames += 1;
        if count != 0 && frames >= count {
            return;
        }
    }
}

/// One window's rates and levels as text lines — the arithmetic `top`
/// repaints and `stats --interval` prints as blocks. Rates and latency
/// quantiles are window-local ([`SnapshotDelta`](fix::obs::SnapshotDelta)
/// diffs the two snapshots); residency, tail depth, and tier shape are
/// current levels.
fn rate_lines(d: &fix::obs::SnapshotDelta, db: &FixDatabase) -> Vec<String> {
    use fix::obs::names;
    let latency = |name: &str| -> String {
        match d.histogram_delta(name) {
            Some(h) => {
                let q = |q: f64| match h.quantile(q) {
                    Some(ns) => format!("{:.3}ms", ns as f64 / 1e6),
                    None => "-".into(),
                };
                format!(
                    "p50 {} / p95 {} / p99 {} ({} sample(s))",
                    q(0.5),
                    q(0.95),
                    q(0.99),
                    h.count
                )
            }
            None => "idle".into(),
        }
    };
    let mut out = vec![
        format!(
            "queries/s:     {:10.1}    commits/s: {:10.1}",
            d.counter_rate("fix_queries_total"),
            d.counter_rate(names::WAL_APPENDS),
        ),
        format!(
            "wal:           {:10.1} KiB/s appended, {:.1} fsyncs/s, {:.1} group flushes/s",
            d.counter_rate(names::WAL_APPENDED_BYTES) / 1024.0,
            d.counter_rate(names::WAL_FSYNCS),
            d.counter_rate(names::WAL_GROUP_COMMITS),
        ),
        format!("append window: {}", latency(names::WAL_APPEND_NS)),
        format!("fsync window:  {}", latency(names::WAL_FSYNC_NS)),
    ];
    // The pool reports cumulative hit/miss counts as gauges, so the
    // window's hit rate comes from gauge movement, not counter deltas.
    if let (Some(resident), Some(capacity)) = (
        d.gauge("fix_pool_resident_pages"),
        d.gauge("fix_pool_capacity_pages"),
    ) {
        let hits = d.gauge_delta("fix_pool_hits").max(0) as f64;
        let misses = d.gauge_delta("fix_pool_misses").max(0) as f64;
        let rate = if hits + misses > 0.0 {
            format!("{:.1}% window hit rate", 100.0 * hits / (hits + misses))
        } else {
            "idle".into()
        };
        out.push(format!(
            "pool:          {resident}/{capacity} pages resident, {rate}"
        ));
    }
    out.push(format!(
        "wal tail:      {} record(s) / {} bytes across {} segment(s), group queue depth {}",
        d.gauge(names::WAL_TAIL_RECORDS).unwrap_or(0),
        d.gauge(names::WAL_TAIL_BYTES).unwrap_or(0),
        d.gauge(names::WAL_SEGMENTS).unwrap_or(0),
        d.gauge(names::WAL_GROUP_QUEUE_DEPTH).unwrap_or(0),
    ));
    out.push(format!(
        "delta entries: {}",
        d.gauge(names::DELTA_ENTRIES).unwrap_or(0)
    ));
    let levels = db.level_stats();
    if levels.is_empty() {
        out.push("tiers:         empty".into());
    } else {
        let shape: Vec<String> = levels
            .iter()
            .map(|l| format!("L{}:{}r/{}e", l.level, l.runs, l.entries))
            .collect();
        out.push(format!("tiers:         {}", shape.join("  ")));
    }
    out
}

fn gen(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let which = args.first().ok_or_else(|| err("missing data set name"))?;
    let mut scale = 1.0f64;
    let mut out: Option<PathBuf> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--scale needs a number"))?;
            }
            "--out" => out = it.next().map(PathBuf::from),
            other => return Err(err(format!("unexpected argument `{other}`"))),
        }
    }
    let cfg = GenConfig::scaled(scale);
    match which.as_str() {
        "tcmd" => {
            let dir = out.unwrap_or_else(|| PathBuf::from("tcmd"));
            std::fs::create_dir_all(&dir)?;
            let docs = fix::datagen::tcmd(cfg);
            for (i, d) in docs.iter().enumerate() {
                std::fs::write(dir.join(format!("doc{i:05}.xml")), d)?;
            }
            println!("wrote {} documents to {}", docs.len(), dir.display());
        }
        name @ ("dblp" | "xmark" | "treebank") => {
            let xml = match name {
                "dblp" => fix::datagen::dblp(cfg),
                "xmark" => fix::datagen::xmark(cfg),
                _ => fix::datagen::treebank(cfg),
            };
            let path = out.unwrap_or_else(|| PathBuf::from(format!("{name}.xml")));
            std::fs::write(&path, &xml)?;
            println!("wrote {} bytes to {}", xml.len(), path.display());
        }
        other => return Err(err(format!("unknown data set `{other}`"))),
    }
    Ok(())
}
