//! `fixdb` — command-line front end for the FIX index.
//!
//! ```text
//! fixdb build  <db> [--depth-limit K] [--clustered] [--values BETA] [--bloom] <file.xml>...
//! fixdb query  <db> <xpath> [--metrics] [--show N] [--plan] [--explain]
//! fixdb insert <db> <file.xml>...
//! fixdb remove <db> <doc-id>...
//! fixdb vacuum <db>
//! fixdb stats  <db>
//! fixdb gen    <tcmd|dblp|xmark|treebank> [--scale S] [--out PATH]
//! ```
//!
//! `build` indexes XML files into a self-contained database file; `query`
//! runs an XPath twig over it; `insert` appends documents incrementally
//! (unclustered databases); `gen` writes the paper-shaped synthetic
//! corpora for experimentation.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fix::core::{load_database, save_database, Collection, FixIndex, FixOptions, QueryError};
use fix::datagen::GenConfig;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => build(&args[1..]),
        Some("query") => query(&args[1..]),
        Some("insert") => insert(&args[1..]),
        Some("remove") => remove(&args[1..]),
        Some("vacuum") => vacuum(&args[1..]),
        Some("stats") => stats(&args[1..]),
        Some("gen") => gen(&args[1..]),
        _ => {
            eprintln!(
                "usage: fixdb <build|query|insert|stats|gen> ...\n\
                 \n\
                 fixdb build  <db> [--depth-limit K] [--clustered] [--values BETA] [--bloom] <file.xml>...\n\
                 fixdb query  <db> <xpath> [--metrics] [--show N] [--plan] [--explain]\n\
                 fixdb insert <db> <file.xml>...\n\
                 fixdb remove <db> <doc-id>...\n\
                 fixdb vacuum <db>\n\
                 fixdb stats  <db>\n\
                 fixdb gen    <tcmd|dblp|xmark|treebank> [--scale S] [--out PATH]"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("fixdb: {e}");
            ExitCode::FAILURE
        }
    }
}

fn err(msg: impl Into<String>) -> Box<dyn std::error::Error> {
    msg.into().into()
}

fn build(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut db: Option<PathBuf> = None;
    let mut files: Vec<PathBuf> = Vec::new();
    let mut opts = FixOptions::collection();
    let mut depth_limit = 0usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--depth-limit" => {
                depth_limit = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--depth-limit needs an integer"))?;
            }
            "--clustered" => opts.clustered = true,
            "--values" => {
                let beta = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--values needs a positive integer"))?;
                opts.value_beta = Some(beta);
            }
            "--bloom" => opts.edge_bloom = true,
            _ if db.is_none() => db = Some(PathBuf::from(a)),
            _ => files.push(PathBuf::from(a)),
        }
    }
    let db = db.ok_or_else(|| err("missing database path"))?;
    if files.is_empty() {
        return Err(err("no input files"));
    }
    opts.depth_limit = depth_limit;

    let mut coll = Collection::new();
    for f in &files {
        // Stream from disk — documents never need to fit in memory twice.
        let file = std::io::BufReader::new(std::fs::File::open(f)?);
        let doc = fix::xml::parse_document_from_reader(file, &mut coll.labels)
            .map_err(|e| err(format!("{}: {e}", f.display())))?;
        coll.add_document(doc);
    }
    let idx = FixIndex::build(&mut coll, opts);
    save_database(&db, &coll, &idx)?;
    let s = idx.stats();
    println!(
        "indexed {} documents ({} entries, {} distinct patterns) in {:?}",
        coll.len(),
        s.entries,
        s.distinct_patterns,
        s.build_time
    );
    println!(
        "index size: {} KiB (B-tree {} KiB{})",
        s.index_bytes() / 1024,
        s.btree_bytes / 1024,
        if s.clustered_bytes > 0 {
            format!(", clustered copies {} KiB", s.clustered_bytes / 1024)
        } else {
            String::new()
        }
    );
    println!("written to {}", db.display());
    Ok(())
}

fn query(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let mut db: Option<&str> = None;
    let mut xpath: Option<&str> = None;
    let mut metrics = false;
    let mut plan = false;
    let mut explain = false;
    let mut show = 10usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--metrics" => metrics = true,
            "--plan" => plan = true,
            "--explain" => explain = true,
            "--show" => {
                show = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--show needs an integer"))?;
            }
            _ if db.is_none() => db = Some(a),
            _ if xpath.is_none() => xpath = Some(a),
            other => return Err(err(format!("unexpected argument `{other}`"))),
        }
    }
    let db = db.ok_or_else(|| err("missing database path"))?;
    let xpath = xpath.ok_or_else(|| err("missing query"))?;
    let (coll, idx) = load_database(Path::new(db))?;
    if explain {
        let path = fix::xpath::parse_path(xpath).map_err(|e| err(e.to_string()))?;
        let e = idx.explain(&coll, &path).map_err(|e| err(e.to_string()))?;
        print!("{e}");
        return Ok(());
    }
    if plan {
        // Histogram-based plan selection (Section 5's cost model): run
        // whichever of index-probe or full scan the estimate prefers.
        let path = fix::xpath::parse_path(xpath).map_err(|e| err(e.to_string()))?;
        let hist = fix::core::LambdaHistogram::build(&idx);
        let t = std::time::Instant::now();
        let (chosen, results) = idx.query_auto(&coll, &hist, &path, 0.1);
        println!("plan: {chosen:?}");
        println!("{} results in {:?}", results.len(), t.elapsed());
        for (doc, node) in results.iter().take(show) {
            let d = coll.doc(*doc);
            let label = coll.labels.resolve(d.label(*node).expect("element result"));
            println!("  doc {} node {} <{}>", doc.0, node.0, label);
        }
        return Ok(());
    }
    let t = std::time::Instant::now();
    let out = match idx.query(&coll, xpath) {
        Ok(o) => o,
        Err(QueryError::NotCovered {
            query_depth,
            depth_limit,
        }) => {
            return Err(err(format!(
                "query depth {query_depth} exceeds the index depth limit {depth_limit}; \
                 rebuild with a larger --depth-limit"
            )))
        }
        Err(e) => return Err(err(e.to_string())),
    };
    let elapsed = t.elapsed();
    println!("{} results in {elapsed:?}", out.results.len());
    for (doc, node) in out.results.iter().take(show) {
        let d = coll.doc(*doc);
        let label = coll.labels.resolve(d.label(*node).expect("element result"));
        let preview = d.text_content(*node);
        let preview: String = preview.chars().take(40).collect();
        println!("  doc {} node {} <{}> {:?}", doc.0, node.0, label, preview);
    }
    if out.results.len() > show {
        println!("  … and {} more (use --show N)", out.results.len() - show);
    }
    if metrics {
        let m = out.metrics;
        println!(
            "metrics: entries {} candidates {} producing {} | sel {:.2}% pp {:.2}% fpr {:.2}%",
            m.entries,
            m.candidates,
            m.producing,
            100.0 * m.sel(),
            100.0 * m.pp(),
            100.0 * m.fpr()
        );
    }
    Ok(())
}

fn insert(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let db = args.first().ok_or_else(|| err("missing database path"))?;
    if args.len() < 2 {
        return Err(err("no input files"));
    }
    let (mut coll, idx) = load_database(Path::new(db))?;
    // Indexes loaded from disk have dropped their construction state;
    // rebuild it by re-indexing (still correct, and the database file is
    // the source of truth). Honest limitation, reported to the user.
    let mut opts = idx.options().clone();
    if opts.clustered {
        return Err(err(
            "clustered databases cannot absorb inserts; rebuild instead",
        ));
    }
    for f in &args[1..] {
        let xml = std::fs::read_to_string(f)?;
        coll.add_xml(&xml).map_err(|e| err(format!("{f}: {e}")))?;
    }
    opts.pool_pages = opts.pool_pages.max(1);
    let idx = FixIndex::build(&mut coll, opts);
    save_database(Path::new(db), &coll, &idx)?;
    println!(
        "database now holds {} documents, {} entries",
        coll.len(),
        idx.entry_count()
    );
    Ok(())
}

fn remove(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let db = args.first().ok_or_else(|| err("missing database path"))?;
    if args.len() < 2 {
        return Err(err("no document ids"));
    }
    let (coll, mut idx) = load_database(Path::new(db))?;
    for a in &args[1..] {
        let id: u32 = a.parse().map_err(|_| err(format!("bad doc id `{a}`")))?;
        if id as usize >= coll.len() {
            return Err(err(format!("doc id {id} out of range (0..{})", coll.len())));
        }
        idx.remove_document(fix::core::DocId(id));
    }
    save_database(Path::new(db), &coll, &idx)?;
    println!(
        "{} documents tombstoned ({} total live); run `fixdb vacuum` to reclaim space",
        args.len() - 1,
        coll.len() - idx.removed_count()
    );
    Ok(())
}

fn vacuum(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let db = args.first().ok_or_else(|| err("missing database path"))?;
    let (coll, idx) = load_database(Path::new(db))?;
    let before = idx.removed_count();
    let (fresh_coll, fresh_idx) = idx.vacuum(&coll);
    save_database(Path::new(db), &fresh_coll, &fresh_idx)?;
    println!(
        "vacuumed {} tombstoned documents; database now holds {} documents / {} entries",
        before,
        fresh_coll.len(),
        fresh_idx.entry_count()
    );
    Ok(())
}

fn stats(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let db = args.first().ok_or_else(|| err("missing database path"))?;
    let (coll, idx) = load_database(Path::new(db))?;
    let cs = coll.stats();
    let is = idx.stats();
    let o = idx.options();
    println!("documents:         {}", coll.len());
    println!("elements:          {}", cs.elements);
    println!("max depth:         {}", cs.max_depth);
    println!("distinct labels:   {}", coll.labels.len());
    println!("depth limit:       {}", o.depth_limit);
    println!("clustered:         {}", o.clustered);
    println!("value index β:     {:?}", o.value_beta);
    println!("edge bloom:        {}", o.edge_bloom);
    println!("index entries:     {}", is.entries);
    println!("index size:        {} KiB", is.index_bytes() / 1024);
    println!("tombstoned docs:   {}", idx.removed_count());
    // Top element labels by frequency.
    let mut counts: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
    for (_, d) in coll.iter() {
        for n in d.descendants_or_self(d.root()) {
            if let Some(l) = d.label(n) {
                *counts.entry(coll.labels.resolve(l)).or_insert(0) += 1;
            }
        }
    }
    let mut top: Vec<(&str, u64)> = counts.into_iter().collect();
    top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    println!("top labels:");
    for (name, n) in top.iter().take(8) {
        println!("  {name:<24} {n}");
    }
    Ok(())
}

fn gen(args: &[String]) -> Result<(), Box<dyn std::error::Error>> {
    let which = args.first().ok_or_else(|| err("missing data set name"))?;
    let mut scale = 1.0f64;
    let mut out: Option<PathBuf> = None;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| err("--scale needs a number"))?;
            }
            "--out" => out = it.next().map(PathBuf::from),
            other => return Err(err(format!("unexpected argument `{other}`"))),
        }
    }
    let cfg = GenConfig::scaled(scale);
    match which.as_str() {
        "tcmd" => {
            let dir = out.unwrap_or_else(|| PathBuf::from("tcmd"));
            std::fs::create_dir_all(&dir)?;
            let docs = fix::datagen::tcmd(cfg);
            for (i, d) in docs.iter().enumerate() {
                std::fs::write(dir.join(format!("doc{i:05}.xml")), d)?;
            }
            println!("wrote {} documents to {}", docs.len(), dir.display());
        }
        name @ ("dblp" | "xmark" | "treebank") => {
            let xml = match name {
                "dblp" => fix::datagen::dblp(cfg),
                "xmark" => fix::datagen::xmark(cfg),
                _ => fix::datagen::treebank(cfg),
            };
            let path = out.unwrap_or_else(|| PathBuf::from(format!("{name}.xml")));
            std::fs::write(&path, &xml)?;
            println!("wrote {} bytes to {}", xml.len(), path.display());
        }
        other => return Err(err(format!("unknown data set `{other}`"))),
    }
    Ok(())
}
