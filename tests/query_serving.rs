//! The concurrent query-serving layer: `QuerySession` snapshots under
//! multi-threaded load, plan-cache correctness and eviction, and the
//! byte-identity guarantee of the cached + parallel path against the
//! sequential baseline.

use fix::core::{DocId, FixOptions, QueryOutcome};
use fix::datagen::{tcmd, xmark, GenConfig};
use fix::{FixDatabase, FixError};

fn collection_db() -> FixDatabase {
    let mut db = FixDatabase::in_memory();
    for doc in tcmd(GenConfig::scaled(0.2)) {
        db.add_xml(&doc).unwrap();
    }
    db.build(FixOptions::collection().with_query_threads(4))
        .unwrap();
    db
}

const COLLECTION_QUERIES: &[&str] = &[
    "/article[epilog]/prolog/authors/author",
    "//author/contact[phone]",
    "//prolog[keywords]/authors/author",
    "//contact[phone][email]",
    "//section/p",
    "//nonexistent/label",
];

#[test]
fn session_stress_matches_sequential_baseline() {
    let db = collection_db();
    // Sequential reference outcomes, computed before any session exists.
    let reference: Vec<QueryOutcome> = COLLECTION_QUERIES
        .iter()
        .map(|q| db.query(q).unwrap())
        .collect();

    let session = db.session().unwrap();
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..8 {
            let session = session.clone();
            let reference = &reference;
            handles.push(s.spawn(move || {
                // Each thread hammers all queries in a rotated order, so
                // cache warm-up interleaves differently per thread.
                for round in 0..5 {
                    for i in 0..COLLECTION_QUERIES.len() {
                        let k = (i + t + round) % COLLECTION_QUERIES.len();
                        let out = session.query(COLLECTION_QUERIES[k]).unwrap();
                        assert_eq!(
                            out, reference[k],
                            "thread {t} round {round} diverged on {}",
                            COLLECTION_QUERIES[k]
                        );
                    }
                }
            }));
        }
        for h in handles {
            h.join().expect("no panics in serving threads");
        }
    });

    // 8 threads × 5 rounds × 6 queries, every one tallied exactly once.
    let s = session.cache_stats();
    assert_eq!(s.hits + s.misses, 8 * 5 * 6);
    assert!(
        s.misses <= COLLECTION_QUERIES.len() as u64 * 8,
        "at worst each thread compiles each query once on a cold race; got {} misses",
        s.misses
    );
    assert!(s.hit_rate() > 0.5);
}

#[test]
fn large_document_session_matches_sequential_baseline() {
    let mut db = FixDatabase::in_memory();
    db.add_xml(&xmark(GenConfig::scaled(0.1))).unwrap();
    db.build(FixOptions::large_document(6).with_query_threads(0))
        .unwrap();
    let queries = [
        "//item/mailbox/mail/text/emph/keyword",
        "//open_auction[seller]/annotation/description/text",
        "//description/parlist/listitem",
        "//closed_auction/annotation/description/text",
    ];
    let session = db.session().unwrap();
    assert!(session.threads() >= 1);
    for q in queries {
        let seq = db.query(q).unwrap();
        assert_eq!(session.query(q).unwrap(), seq, "cold diverged on {q}");
        assert_eq!(session.query(q).unwrap(), seq, "warm diverged on {q}");
    }
}

#[test]
fn plan_cache_evicts_and_stays_correct() {
    let db = collection_db();
    // Capacity 2 with 6 distinct queries: constant eviction pressure.
    let session = db.session().unwrap().with_cache_capacity(2);
    let reference: Vec<QueryOutcome> = COLLECTION_QUERIES
        .iter()
        .map(|q| db.query(q).unwrap())
        .collect();
    for round in 0..3 {
        for (i, q) in COLLECTION_QUERIES.iter().enumerate() {
            let out = session.query(q).unwrap();
            assert_eq!(out, reference[i], "round {round} diverged on {q}");
        }
    }
    let s = session.cache_stats();
    assert!(s.entries <= 2, "capacity respected, got {}", s.entries);
    assert_eq!(s.capacity, 2);
    assert_eq!(s.hits + s.misses, 18);
}

#[test]
fn warm_hits_reuse_the_plan_and_agree_with_misses() {
    let db = collection_db();
    let session = db.session().unwrap();
    let q = "//item[quantity]/location";
    let miss = session.query(q).unwrap();
    assert_eq!(session.cache_stats().misses, 1);
    let hit = session.query(q).unwrap();
    assert_eq!(session.cache_stats().hits, 1, "second run must hit");
    assert_eq!(miss, hit, "hit and miss outcomes must be byte-identical");
}

#[test]
fn snapshot_isolation_against_admin_operations() {
    let mut db = FixDatabase::in_memory();
    db.add_xml("<r><a><b/></a></r>").unwrap();
    db.add_xml("<r><a><c/></a></r>").unwrap();
    db.build(FixOptions::collection()).unwrap();
    let session = db.session().unwrap();
    // Mutations are refused while the snapshot is out.
    assert!(matches!(
        db.add_xml("<r><a><b/></a></r>"),
        Err(FixError::SnapshotInUse)
    ));
    assert!(matches!(
        db.remove_document(DocId(0)),
        Err(FixError::SnapshotInUse)
    ));
    assert_eq!(session.query("//a/b").unwrap().results.len(), 1);
    drop(session);
    // With the snapshot released, the same operations go through.
    db.remove_document(DocId(0)).unwrap();
    let session = db.session().unwrap();
    assert!(session.query("//a/b").unwrap().results.is_empty());
    // Vacuum swaps snapshots; the live session keeps the old one.
    db.vacuum().unwrap();
    assert_eq!(db.len(), 1);
    assert_eq!(session.collection().len(), 2);
    assert!(session.query("//a/b").unwrap().results.is_empty());
}
