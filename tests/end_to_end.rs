//! End-to-end integration: build FIX over each of the four generated data
//! sets, run the paper's representative queries plus random twigs, and
//! check (a) results equal the navigational baseline, (b) the index never
//! produces false negatives, (c) clustered and unclustered variants agree.

use fix::core::{ground_truth, Collection, DocId, FixIndex, FixOptions};
use fix::datagen::{dblp, random_twigs, tcmd, treebank, xmark, GenConfig, QueryGenConfig};
use fix::exec::eval_path;
use fix::xpath::{parse_path, PathExpr};

fn tcmd_collection() -> Collection {
    let mut c = Collection::new();
    for d in tcmd(GenConfig::scaled(0.15)) {
        c.add_xml(&d).unwrap();
    }
    c
}

fn single_doc_collection(xml: &str) -> Collection {
    let mut c = Collection::new();
    c.add_xml(xml).unwrap();
    c
}

/// Baseline result set over the whole collection.
fn baseline(coll: &Collection, path: &PathExpr) -> Vec<(DocId, u32)> {
    let mut out = Vec::new();
    for (id, d) in coll.iter() {
        for n in eval_path(d, &coll.labels, path) {
            out.push((id, n.0));
        }
    }
    out.sort_unstable();
    out
}

fn check_queries(coll: &mut Collection, opts: FixOptions, queries: &[&str]) {
    let depth_limit = opts.depth_limit;
    let idx = FixIndex::build(coll, opts);
    for q in queries {
        let path = parse_path(q).unwrap();
        let out = idx
            .query_path(coll, &path)
            .unwrap_or_else(|e| panic!("{q}: {e}"));
        let got: Vec<(DocId, u32)> = out.results.iter().map(|&(d, n)| (d, n.0)).collect();
        let want = baseline(coll, &path);
        assert_eq!(got, want, "result mismatch on {q}");
        // No false negatives: every truly-producing entry was a candidate.
        let truth = ground_truth(coll, &path, depth_limit);
        assert_eq!(
            out.metrics.producing, truth,
            "false negative on {q}: produced {} of {}",
            out.metrics.producing, truth
        );
        assert!(out.metrics.candidates >= out.metrics.producing);
    }
}

#[test]
fn tcmd_collection_mode() {
    let mut coll = tcmd_collection();
    check_queries(
        &mut coll,
        FixOptions::collection(),
        &[
            "/article/epilog[acknoledgements]/references/a_id",
            "/article/prolog[keywords]/authors/author/contact[phone]",
            "/article[epilog]/prolog/authors/author",
            "//author/contact/email",
            "//references/a_id",
            "//article[body]/epilog",
        ],
    );
}

#[test]
fn dblp_depth_limited() {
    let mut coll = single_doc_collection(&dblp(GenConfig::scaled(0.05)));
    check_queries(
        &mut coll,
        FixOptions::large_document(6),
        &[
            "//proceedings[booktitle]/title[sup][i]",
            "//article[number]/author",
            "//inproceedings[url]/title",
            "//dblp/inproceedings/author",
            "//inproceedings[url]/title[sub][i]",
            "//inproceedings/title/i",
        ],
    );
}

#[test]
fn xmark_depth_limited() {
    let mut coll = single_doc_collection(&xmark(GenConfig::scaled(0.1)));
    check_queries(
        &mut coll,
        FixOptions::large_document(6),
        &[
            "//category/description[parlist]/parlist/listitem/text",
            "//closed_auction/annotation/description/text",
            "//open_auction[seller]/annotation/description/text",
            "//item/mailbox/mail/text/emph/keyword",
            "//description/parlist/listitem",
            "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
            "//item[payment][quantity][shipping][mailbox/mail/text]/description/parlist",
        ],
    );
}

#[test]
fn treebank_depth_limited() {
    let mut coll = single_doc_collection(&treebank(GenConfig::scaled(0.1)));
    check_queries(
        &mut coll,
        FixOptions::large_document(6),
        &[
            "//EMPTY/S/NP[PP]/NP",
            "//S[VP]/NP/NP/PP/NP",
            "//EMPTY/S[VP]/NP",
            "//EMPTY/S/NP/NP/PP",
            "//EMPTY/S/VP",
        ],
    );
}

#[test]
fn random_twigs_never_lose_results_tcmd() {
    let mut coll = tcmd_collection();
    let idx = FixIndex::build(&mut coll, FixOptions::collection());
    let docs: Vec<&fix::xml::Document> = coll.iter().map(|(_, d)| d).collect();
    let queries = random_twigs(
        &docs,
        &coll.labels,
        QueryGenConfig {
            count: 150,
            ..Default::default()
        },
    );
    for q in &queries {
        let out = idx.query_path(&coll, q).unwrap();
        let want = baseline(&coll, q);
        let got: Vec<(DocId, u32)> = out.results.iter().map(|&(d, n)| (d, n.0)).collect();
        assert_eq!(got, want, "mismatch on random query {q}");
    }
}

#[test]
fn random_twigs_never_lose_results_treebank() {
    // Recursive labels are the stress case for containment pruning (see
    // DESIGN.md §2 on induced vs plain subgraphs).
    let mut coll = single_doc_collection(&treebank(GenConfig::scaled(0.05)));
    let idx = FixIndex::build(&mut coll, FixOptions::large_document(5));
    let docs: Vec<&fix::xml::Document> = coll.iter().map(|(_, d)| d).collect();
    let queries = random_twigs(
        &docs,
        &coll.labels,
        QueryGenConfig {
            count: 150,
            max_depth: 5,
            ..Default::default()
        },
    );
    for q in &queries {
        let out = idx.query_path(&coll, q).unwrap();
        let want = baseline(&coll, q);
        let got: Vec<(DocId, u32)> = out.results.iter().map(|&(d, n)| (d, n.0)).collect();
        assert_eq!(got, want, "mismatch on random query {q}");
    }
}

#[test]
fn clustered_matches_unclustered_on_xmark() {
    let xml = xmark(GenConfig::scaled(0.05));
    let mut c1 = single_doc_collection(&xml);
    let mut c2 = single_doc_collection(&xml);
    let u = FixIndex::build(&mut c1, FixOptions::large_document(6));
    let cl = FixIndex::build(&mut c2, FixOptions::large_document(6).clustered());
    assert!(cl.stats().clustered_bytes > u.stats().btree_bytes);
    for q in [
        "//item/mailbox/mail/text/emph/keyword",
        "//open_auction[seller]/annotation/description/text",
        "//description/parlist/listitem",
    ] {
        let a = u.query(&c1, q).unwrap();
        let b = cl.query(&c2, q).unwrap();
        assert_eq!(
            a.results, b.results,
            "clustered/unclustered disagree on {q}"
        );
        assert_eq!(a.metrics, b.metrics);
    }
}

#[test]
fn value_index_agrees_with_structural_plus_refinement() {
    let xml = dblp(GenConfig::scaled(0.05));
    let mut c1 = single_doc_collection(&xml);
    let mut c2 = single_doc_collection(&xml);
    let plain = FixIndex::build(&mut c1, FixOptions::large_document(4));
    let valued = FixIndex::build(&mut c2, FixOptions::large_document(4).with_values(32));
    for q in [
        r#"//proceedings[publisher="Springer"][title]"#,
        r#"//inproceedings[year="1998"][title]/author"#,
        r#"//article[number="3"]/author"#,
    ] {
        let a = plain.query(&c1, q).unwrap();
        let b = valued.query(&c2, q).unwrap();
        let ra: Vec<_> = a.results.iter().map(|&(_, n)| n.0).collect();
        let rb: Vec<_> = b.results.iter().map(|&(_, n)| n.0).collect();
        assert_eq!(ra, rb, "value index changed results on {q}");
        // The value index must prune at least as hard.
        assert!(
            b.metrics.candidates <= a.metrics.candidates,
            "value index pruned worse on {q}: {} vs {}",
            b.metrics.candidates,
            a.metrics.candidates
        );
    }
}

#[test]
fn paged_storage_shows_the_io_asymmetry() {
    let xml = xmark(GenConfig::scaled(0.2));
    let mut coll = single_doc_collection(&xml);
    let idx = FixIndex::build(&mut coll, FixOptions::large_document(6));
    // A pool large enough to hold the whole document: misses then count
    // *distinct* pages touched, i.e. the data volume read from storage.
    coll.enable_paged_storage(4096);
    // Indexed query: touches candidate subtrees only.
    coll.reset_io_stats();
    let out = idx
        .query(
            &coll,
            "//category/description[parlist]/parlist/listitem/text",
        )
        .unwrap();
    let fix_io = coll.io_stats();
    // Baseline: full document scan.
    coll.reset_io_stats();
    coll.touch_document(DocId(0));
    let scan_io = coll.io_stats();
    assert!(!out.results.is_empty());
    assert!(
        fix_io.misses < scan_io.misses,
        "index must read less data than a full scan: {fix_io:?} vs {scan_io:?}"
    );
}
