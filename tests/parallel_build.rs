//! Parallel-build determinism: the phased pipeline must produce a
//! bit-identical index at every thread count — same B-tree keys and
//! values, same stats, same query outcomes — on the paper-shaped corpora.

use fix::core::{Collection, FixIndex, FixOptions};
use fix::datagen::{dblp, tcmd, xmark, GenConfig};
use fix::FixDatabase;

fn keys_of(idx: &FixIndex) -> Vec<(Vec<u8>, u64)> {
    idx.entries()
        .map(|(k, v)| (k.encode().to_vec(), v))
        .collect()
}

fn build(docs: &[String], opts: FixOptions) -> (Collection, FixIndex) {
    let mut coll = Collection::new();
    for d in docs {
        coll.add_xml(d).unwrap();
    }
    let idx = FixIndex::build(&mut coll, opts);
    (coll, idx)
}

fn assert_identical(
    reference: &(Collection, FixIndex),
    other: &(Collection, FixIndex),
    queries: &[&str],
    label: &str,
) {
    let (rs, os) = (reference.1.stats(), other.1.stats());
    assert_eq!(rs.entries, os.entries, "{label}: entry counts differ");
    assert_eq!(
        rs.distinct_patterns, os.distinct_patterns,
        "{label}: distinct patterns differ"
    );
    assert_eq!(rs.fallbacks, os.fallbacks, "{label}: fallbacks differ");
    assert_eq!(
        keys_of(&reference.1),
        keys_of(&other.1),
        "{label}: B-tree keys/values differ"
    );
    for q in queries {
        let a = reference.1.query(&reference.0, q).unwrap();
        let b = other.1.query(&other.0, q).unwrap();
        assert_eq!(a.results, b.results, "{label}: results differ on {q}");
        assert_eq!(a.metrics, b.metrics, "{label}: metrics differ on {q}");
    }
}

#[test]
fn collection_mode_bit_identical_across_thread_counts() {
    // Many small documents → phase 1 (streaming) actually fans out.
    let docs = tcmd(GenConfig::scaled(0.3));
    assert!(docs.len() > 8, "corpus must exceed the widest worker pool");
    let queries = [
        "/article/prolog",
        "/article/epilog[acknoledgements]/references/a_id",
        "//authors/author",
    ];
    let reference = build(&docs, FixOptions::collection());
    assert_eq!(reference.1.stats().threads, 1);
    for t in [2usize, 4, 8] {
        let parallel = build(&docs, FixOptions::collection().with_threads(t));
        assert_eq!(parallel.1.stats().threads, t);
        assert_identical(&reference, &parallel, &queries, &format!("tcmd t={t}"));
    }
}

#[test]
fn large_document_mode_bit_identical_across_thread_counts() {
    // One big document → phase 3 (extraction) carries the parallelism.
    let docs = vec![xmark(GenConfig::scaled(0.1))];
    let queries = [
        "//item/mailbox/mail",
        "//open_auction[seller]/annotation/description/text",
        "//description/parlist/listitem",
    ];
    let reference = build(&docs, FixOptions::large_document(6));
    for t in [2usize, 4, 8] {
        let parallel = build(&docs, FixOptions::large_document(6).with_threads(t));
        assert_identical(&reference, &parallel, &queries, &format!("xmark t={t}"));
    }
}

#[test]
fn value_and_clustered_modes_stay_deterministic() {
    let docs = vec![dblp(GenConfig::scaled(0.1))];
    let queries = ["//inproceedings[url]/title", "//article/author"];
    let value_opts = |t: usize| {
        FixOptions::builder()
            .depth_limit(6)
            .values(16)
            .threads(t)
            .build()
    };
    // Value mode streams sequentially (label interning) but extraction
    // still fans out — results must not change.
    let reference = build(&docs, value_opts(1));
    let parallel = build(&docs, value_opts(4));
    assert_identical(&reference, &parallel, &queries, "dblp values t=4");

    let clustered_opts = |t: usize| {
        FixOptions::builder()
            .depth_limit(6)
            .clustered(true)
            .threads(t)
            .build()
    };
    let reference = build(&docs, clustered_opts(1));
    let parallel = build(&docs, clustered_opts(4));
    // Clustered values are heap record ids; identical keys and rids mean
    // the copy heap was laid out identically too.
    assert_identical(&reference, &parallel, &queries, "dblp clustered t=4");
    for ((_, va), (_, vb)) in keys_of(&reference.1).iter().zip(keys_of(&parallel.1)) {
        assert_eq!(va, &vb, "clustered record ids diverged");
    }
}

#[test]
fn on_disk_parallel_build_matches_in_memory() {
    let dir = std::env::temp_dir().join(format!("fix-par-disk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let pages = dir.join("par.pages");

    let docs = tcmd(GenConfig::scaled(0.1));
    let reference = build(&docs, FixOptions::collection());

    let mut db = FixDatabase::in_memory();
    for d in &docs {
        db.add_xml(d).unwrap();
    }
    db.build_on_disk(
        FixOptions::builder().threads(4).pool_pages(64).build(),
        &pages,
    )
    .unwrap();
    assert!(pages.exists());
    assert_eq!(
        keys_of(&reference.1),
        keys_of(db.index().unwrap()),
        "on-disk parallel keys differ from in-memory sequential"
    );
    let q = "/article/epilog[acknoledgements]/references/a_id";
    assert_eq!(
        reference.1.query(&reference.0, q).unwrap().results,
        db.query(q).unwrap().results
    );
    std::fs::remove_dir_all(&dir).ok();
}
