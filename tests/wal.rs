//! Write-ahead-log integration tests over the `FixDatabase` facade: the
//! redesigned mutation API (`WriteBatch` through `write`) must make every
//! committed batch durable without a full save — killing the process
//! (dropping the database) and reopening replays the log to the exact
//! live answers. The suite covers tail replay, sealed-segment freezing,
//! batch atomicity under injected append faults, stale-log discard when
//! the base image changes underneath the log, checkpointing structural
//! ops (vacuum), and the tombstone-in-unsealed-tail regression.

use std::path::PathBuf;
use std::time::Duration;

use fix::core::DocId;
use fix::storage::{wal_dir, FaultKind, FaultPlan};
use fix::{Durability, FixDatabase, FixError, FixOptions, WriteBatch};

const QUERIES: &[&str] = &["//a/b", "//c", "/r[c]/a"];

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fix-wal-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{name}.fixdb"));
    std::fs::remove_file(&path).ok();
    std::fs::remove_dir_all(wal_dir(&path)).ok();
    path
}

/// A checkpointed two-document base with one indexed level of structure.
fn base(path: &PathBuf, opts: FixOptions) -> FixDatabase {
    let mut db = FixDatabase::open(path).unwrap();
    db.add_xml("<r><a><b/></a></r>").unwrap();
    db.add_xml("<r><c/><a><b/></a></r>").unwrap();
    db.build(opts).unwrap();
    db.save().unwrap();
    db
}

fn answers(db: &FixDatabase) -> Vec<Vec<(fix::core::DocId, fix::xml::NodeId)>> {
    QUERIES
        .iter()
        .map(|q| db.query(q).unwrap().results)
        .collect()
}

/// Committed batches survive a kill (drop without save): reopening
/// replays the unsealed tail and answers exactly like the live database.
#[test]
fn kill_and_reopen_replays_tail_batches() {
    let path = scratch("tail-replay");
    let mut db = base(&path, FixOptions::builder().compact_ratio(0.0).build());
    let image_after_checkpoint = std::fs::read(&path).unwrap();

    let mut batch = WriteBatch::new();
    batch.add_xml("<r><c/><c/></r>");
    batch.add_xml("<r><a><b/><b/></a></r>");
    db.write(batch).unwrap();
    db.remove_document(DocId(0)).unwrap();

    let live_len = db.len();
    let live = answers(&db);
    drop(db);

    // Nothing checkpointed the image: durability came from the log alone.
    assert_eq!(
        std::fs::read(&path).unwrap(),
        image_after_checkpoint,
        "the mutations must not have rewritten the base image"
    );
    let db = FixDatabase::open(&path).unwrap();
    assert_eq!(db.len(), live_len);
    assert_eq!(answers(&db), live);
    // Two committed batches → two log records, both replayed.
    assert_eq!(
        db.wal_stats().expect("replay re-engages the log").replayed,
        2,
        "every committed record must be replayed"
    );
}

/// Regression for the dangling-tombstone hazard: a document that exists
/// *only* in the unsealed WAL tail is removed in a later tail record.
/// Replay must apply the add before the remove — reopening yields a
/// database where the document is gone, not a tombstone pointing at a
/// document the base image never heard of.
#[test]
fn tombstone_for_tail_only_document_survives_reopen() {
    let path = scratch("tail-tombstone");
    let mut db = base(&path, FixOptions::builder().compact_ratio(0.0).build());

    // The victim lives only in the log: added and removed after the
    // checkpoint, with a distinctive shape no base document has.
    let victim = db.add_xml("<r><c/><c/><c/></r>").unwrap();
    db.remove_document(victim).unwrap();
    let live_len = db.len();
    let live = answers(&db);
    drop(db);

    let db = FixDatabase::open(&path).unwrap();
    assert_eq!(db.len(), live_len);
    assert_eq!(answers(&db), live);
    assert!(
        db.query("//c")
            .unwrap()
            .results
            .iter()
            .all(|m| m.0 != victim),
        "the tail-only victim must stay removed after replay"
    );

    // The replayed state must itself be durable: reopen once more.
    drop(db);
    let db = FixDatabase::open(&path).unwrap();
    assert_eq!(db.len(), live_len);
    assert_eq!(answers(&db), live);
}

/// A batch naming an unknown document is rejected whole — the valid adds
/// in it must not land, and nothing may reach the log.
#[test]
fn invalid_batch_is_rejected_atomically() {
    let path = scratch("atomic-reject");
    let mut db = base(&path, FixOptions::builder().compact_ratio(0.0).build());
    let len = db.len();
    let appends = db.wal_stats().map(|w| w.appends).unwrap_or(0);

    let mut batch = WriteBatch::new();
    batch.add_xml("<r><a/></r>");
    batch.remove_document(DocId(999));
    match db.write(batch) {
        Err(FixError::NoSuchDocument { doc: 999 }) => {}
        other => panic!("expected NoSuchDocument, got {other:?}"),
    }
    assert_eq!(db.len(), len, "the add in the rejected batch leaked");
    assert_eq!(
        db.wal_stats().map(|w| w.appends).unwrap_or(0),
        appends,
        "a rejected batch must never reach the log"
    );
}

/// An injected append fault fails the batch without applying it, and the
/// write path recovers: the next batch checkpoints the image first and
/// commits, and a reopen sees exactly the committed state.
#[test]
fn append_fault_loses_only_the_faulted_batch() {
    for kind in [FaultKind::Error, FaultKind::Torn { keep: 7 }] {
        let path = scratch(&format!("append-fault-{kind:?}"));
        let mut db = base(&path, FixOptions::builder().compact_ratio(0.0).build());
        let mut ok = WriteBatch::new();
        ok.add_xml("<r><c/></r>");
        db.write(ok).unwrap();
        let committed_len = db.len();
        let committed = answers(&db);

        db.set_wal_fault(Some(FaultPlan::new(0, kind)));
        let mut doomed = WriteBatch::new();
        doomed.add_xml("<r><a><b/></a><c/></r>");
        match db.write(doomed) {
            Err(FixError::Io(_)) => {}
            other => panic!("{kind:?}: expected an I/O failure, got {other:?}"),
        }
        assert_eq!(
            db.len(),
            committed_len,
            "{kind:?}: the faulted batch leaked"
        );
        assert_eq!(answers(&db), committed, "{kind:?}: answers drifted");

        // A crash here must come back to the committed prefix — a torn
        // record is truncated away on recovery, never half-applied.
        drop(db);
        let mut db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.len(), committed_len, "{kind:?}: reopen after fault");
        assert_eq!(answers(&db), committed, "{kind:?}: reopen answers");

        // The path heals: the next write checkpoints and commits.
        let mut retry = WriteBatch::new();
        retry.add_xml("<r><a><b/></a><c/></r>");
        db.write(retry).unwrap();
        let healed = answers(&db);
        let healed_len = db.len();
        drop(db);
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.len(), healed_len, "{kind:?}: post-heal reopen");
        assert_eq!(answers(&db), healed, "{kind:?}: post-heal answers");
    }
}

/// A log is only valid against the exact image it extends. If the image
/// changes underneath it (here: a different database saved over the same
/// path out-of-band), recovery must discard the stale log rather than
/// replay records into the wrong state.
#[test]
fn stale_log_beside_a_foreign_image_is_discarded() {
    let path = scratch("stale-log");
    let mut db = base(&path, FixOptions::builder().compact_ratio(0.0).build());
    db.add_xml("<r><c/><c/></r>").unwrap();
    assert!(
        wal_dir(&path).is_dir(),
        "the mutation must have engaged the log"
    );
    drop(db);

    // Replace the image out-of-band, leaving the old log beside it.
    let foreign_path = scratch("stale-log-foreign");
    let mut foreign = FixDatabase::open(&foreign_path).unwrap();
    foreign.add_xml("<r><a><b/></a></r>").unwrap();
    foreign
        .build(FixOptions::builder().compact_ratio(0.0).build())
        .unwrap();
    foreign.save().unwrap();
    let foreign_answers = answers(&foreign);
    drop(foreign);
    std::fs::copy(&foreign_path, &path).unwrap();

    let db = FixDatabase::open(&path).unwrap();
    assert_eq!(
        db.len(),
        1,
        "the stale log must not replay onto a foreign image"
    );
    assert_eq!(answers(&db), foreign_answers);
}

/// `save_as` to a different target must not leave the source's log
/// beside the copy — the copy is a complete checkpoint, and a later open
/// of it must not replay the source's records on top.
#[test]
fn save_as_other_target_carries_no_log() {
    let path = scratch("save-to-src");
    let copy = scratch("save-to-copy");
    let mut db = base(&path, FixOptions::builder().compact_ratio(0.0).build());
    db.add_xml("<r><c/><c/></r>").unwrap();
    let live_len = db.len();
    let live = answers(&db);

    db.save_as(&copy).unwrap();
    assert!(
        !wal_dir(&copy).exists(),
        "a checkpoint copy must carry no log"
    );
    let opened = FixDatabase::open(&copy).unwrap();
    assert_eq!(opened.len(), live_len);
    assert_eq!(answers(&opened), live);
}

/// Vacuum renumbers documents, so it cannot be expressed as a log
/// record — on a path-bound database it checkpoints the image itself,
/// and the change is durable the moment the call returns. Killing right
/// after the vacuum, or after post-vacuum logged writes, loses nothing.
#[test]
fn vacuum_then_mutate_survives_reopen() {
    let path = scratch("vacuum");
    let mut db = base(&path, FixOptions::builder().compact_ratio(0.0).build());
    db.add_xml("<r><c/><c/></r>").unwrap();
    db.remove_document(DocId(0)).unwrap();
    db.vacuum().unwrap();
    let vacuumed_len = db.len();
    let vacuumed = answers(&db);
    // Kill immediately: the vacuum itself must be durable.
    drop(db);
    let mut db = FixDatabase::open(&path).unwrap();
    assert_eq!(db.len(), vacuumed_len, "vacuum evaporated in the crash");
    assert_eq!(answers(&db), vacuumed);

    // Post-vacuum writes log against the fresh checkpoint.
    db.add_xml("<r><a><b/></a><a><b/></a></r>").unwrap();
    let live_len = db.len();
    let live = answers(&db);
    drop(db);

    let db = FixDatabase::open(&path).unwrap();
    assert_eq!(db.len(), live_len);
    assert_eq!(answers(&db), live);
}

/// Sealed segments freeze delta runs; a mutation stream that seals
/// several segments must tier them and replay to the same logical state.
#[test]
fn sealing_stream_tiers_runs_and_replays() {
    let path = scratch("seal-tier");
    let mut db = base(
        &path,
        FixOptions::builder()
            .compact_ratio(0.0)
            .wal_seal_bytes(1) // every batch seals its segment
            .build(),
    );
    for i in 0..9 {
        let doc = if i % 2 == 0 {
            "<r><c/></r>"
        } else {
            "<r><a><b/></a></r>"
        };
        db.add_xml(doc).unwrap();
    }
    let w = db.wal_stats().unwrap();
    assert!(w.seals >= 8, "expected a seal per batch, saw {}", w.seals);
    let frozen: usize = db.level_stats().iter().map(|l| l.runs).sum();
    assert!(
        frozen > 0 && frozen < 9,
        "9 seals must tier into fewer live runs, saw {frozen}"
    );

    let live_len = db.len();
    let live = answers(&db);
    drop(db);
    let db = FixDatabase::open(&path).unwrap();
    assert_eq!(db.len(), live_len);
    assert_eq!(answers(&db), live);
}

/// Every durability mode — per-record fsync, group commit, async — must
/// produce identical post-replay answers for the same mutation script.
/// (Async flushes on drop, which stands in for a clean process exit.)
#[test]
fn durability_modes_agree_after_replay() {
    let mut per_mode = Vec::new();
    for (name, durability) in [
        ("sync", Durability::Sync),
        (
            "group",
            Durability::Group {
                max_wait: Duration::from_millis(2),
            },
        ),
        ("async", Durability::Async),
    ] {
        let path = scratch(&format!("durability-{name}"));
        let mut db = base(
            &path,
            FixOptions::builder()
                .compact_ratio(0.0)
                .durability(durability)
                .build(),
        );
        for _ in 0..4 {
            db.add_xml("<r><c/><a><b/></a></r>").unwrap();
        }
        db.remove_document(DocId(2)).unwrap();
        let live = answers(&db);
        drop(db);
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(answers(&db), live, "{name}: replay diverged from live");
        per_mode.push(answers(&db));
    }
    assert!(
        per_mode.windows(2).all(|w| w[0] == w[1]),
        "durability is a performance knob, not a semantics knob"
    );
}

/// The deprecated save-per-mutation shims still work: they mutate and
/// checkpoint, so even deleting the log behind their back loses nothing.
#[test]
fn deprecated_synced_shims_still_checkpoint() {
    let path = scratch("synced-shims");
    let mut db = base(&path, FixOptions::builder().compact_ratio(0.0).build());
    #[allow(deprecated)]
    db.add_xml_synced("<r><c/><c/></r>").unwrap();
    #[allow(deprecated)]
    db.remove_document_synced(DocId(0)).unwrap();
    let live_len = db.len();
    let live = answers(&db);
    drop(db);

    // The shims checkpointed: the log is not needed to recover.
    std::fs::remove_dir_all(wal_dir(&path)).ok();
    let db = FixDatabase::open(&path).unwrap();
    assert_eq!(db.len(), live_len);
    assert_eq!(answers(&db), live);
}
