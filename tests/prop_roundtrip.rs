//! Property tests for the XML substrate: parser/serializer round-trips and
//! event-stream balance on arbitrary trees.

use proptest::prelude::*;

use fix::xml::{drain_events, parse_document, to_xml_string, Event, LabelTable, TreeEventSource};

/// A tiny recursive tree model driving the generators.
#[derive(Debug, Clone)]
enum Tree {
    Leaf(u8),
    Text(String),
    Node(u8, Vec<Tree>),
}

fn tree_strategy() -> impl Strategy<Value = Tree> {
    let leaf = prop_oneof![
        (0u8..6).prop_map(Tree::Leaf),
        "[a-z ]{1,12}".prop_map(Tree::Text),
    ];
    leaf.prop_recursive(4, 64, 5, |inner| {
        ((0u8..6), prop::collection::vec(inner, 0..5)).prop_map(|(l, c)| Tree::Node(l, c))
    })
}

fn to_xml(t: &Tree, out: &mut String) {
    match t {
        Tree::Leaf(l) => {
            out.push_str(&format!("<l{l}/>"));
        }
        Tree::Text(s) => {
            // Escape via the serializer conventions.
            for c in s.chars() {
                match c {
                    '&' => out.push_str("&amp;"),
                    '<' => out.push_str("&lt;"),
                    _ => out.push(c),
                }
            }
        }
        Tree::Node(l, children) => {
            out.push_str(&format!("<l{l}>"));
            for c in children {
                to_xml(c, out);
            }
            out.push_str(&format!("</l{l}>"));
        }
    }
}

/// Wraps an arbitrary tree in a root element so the document is valid.
fn document_xml(t: &Tree) -> String {
    let mut s = String::from("<root>");
    to_xml(t, &mut s);
    s.push_str("</root>");
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn parse_serialize_is_identity_after_one_pass(t in tree_strategy()) {
        let xml = document_xml(&t);
        let mut lt = LabelTable::new();
        let doc = parse_document(&xml, &mut lt).unwrap();
        let once = to_xml_string(&doc, &lt);
        // A second round-trip must be a fixpoint.
        let mut lt2 = LabelTable::new();
        let doc2 = parse_document(&once, &mut lt2).unwrap();
        let twice = to_xml_string(&doc2, &lt2);
        prop_assert_eq!(&once, &twice);
        // Same number of elements and texts both ways.
        prop_assert_eq!(doc.len(), doc2.len());
    }

    #[test]
    fn event_stream_is_balanced(t in tree_strategy()) {
        let xml = document_xml(&t);
        let mut lt = LabelTable::new();
        let doc = parse_document(&xml, &mut lt).unwrap();
        let evs = drain_events(TreeEventSource::whole(&doc));
        let mut depth = 0i64;
        let mut opens = 0usize;
        for e in &evs {
            match e {
                Event::Open { .. } => {
                    depth += 1;
                    opens += 1;
                }
                Event::Close => depth -= 1,
            }
            prop_assert!(depth >= 0);
        }
        prop_assert_eq!(depth, 0);
        // One open per element node.
        let elements = doc
            .descendants_or_self(doc.root())
            .filter(|&n| doc.label(n).is_some())
            .count();
        prop_assert_eq!(opens, elements);
    }

    #[test]
    fn subtree_ranges_nest_properly(t in tree_strategy()) {
        let xml = document_xml(&t);
        let mut lt = LabelTable::new();
        let doc = parse_document(&xml, &mut lt).unwrap();
        for n in doc.descendants_or_self(doc.root()) {
            let end = doc.subtree_end(n);
            prop_assert!(end > n);
            // Children ranges are disjoint and inside the parent's range.
            let mut prev_end = n.0 + 1;
            for c in doc.children(n) {
                prop_assert!(c.0 >= prev_end);
                let cend = doc.subtree_end(c);
                prop_assert!(cend <= end);
                prev_end = cend.0;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser must never panic, whatever bytes arrive — errors only.
    #[test]
    fn parser_never_panics_on_arbitrary_input(input in ".{0,300}") {
        let mut lt = LabelTable::new();
        let _ = parse_document(&input, &mut lt);
    }

    /// Same, for inputs that look like XML but may be malformed.
    #[test]
    fn parser_never_panics_on_xmlish_input(
        parts in prop::collection::vec(
            prop_oneof![
                Just("<a>".to_string()),
                Just("</a>".to_string()),
                Just("<b x='1'>".to_string()),
                Just("</b>".to_string()),
                Just("<c/>".to_string()),
                Just("text".to_string()),
                Just("&amp;".to_string()),
                Just("&bogus;".to_string()),
                Just("<!--c-->".to_string()),
                Just("<![CDATA[x]]>".to_string()),
                Just("<".to_string()),
                Just(">".to_string()),
                Just("<?pi?>".to_string()),
            ],
            0..24,
        )
    ) {
        let input: String = parts.concat();
        let mut lt = LabelTable::new();
        // Must return Ok or Err, never panic; on Ok the round-trip holds.
        if let Ok(doc) = parse_document(&input, &mut lt) {
            let rendered = to_xml_string(&doc, &lt);
            let mut lt2 = LabelTable::new();
            let doc2 = parse_document(&rendered, &mut lt2).unwrap();
            prop_assert_eq!(doc.len(), doc2.len());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The streaming parser agrees with the slice parser on arbitrary
    /// trees under arbitrary chunkings.
    #[test]
    fn streaming_parser_matches_slice_parser(
        t in tree_strategy(),
        chunk in 1usize..32,
    ) {
        use std::io::Read;
        struct Dribble<'a> { data: &'a [u8], pos: usize, chunk: usize }
        impl Read for Dribble<'_> {
            fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
                let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            }
        }
        let xml = document_xml(&t);
        let mut lt1 = LabelTable::new();
        let d1 = parse_document(&xml, &mut lt1).unwrap();
        let mut lt2 = LabelTable::new();
        let d2 = fix::xml::parse_document_from_reader(
            Dribble { data: xml.as_bytes(), pos: 0, chunk },
            &mut lt2,
        ).unwrap();
        prop_assert_eq!(
            to_xml_string(&d1, &lt1),
            to_xml_string(&d2, &lt2)
        );
    }
}
