//! End-to-end observability tests: the fix-obs primitives under real
//! concurrency, and the full pipeline — session traces, the shared
//! metrics registry, and EXPLAIN ANALYZE — agreeing with the plain query
//! path on actual numbers.

use fix::core::{Collection, FixIndex, Stage};
use fix::obs::{Histogram, MetricsRegistry, Reportable};
use fix::{FixDatabase, FixOptions};

fn build_db() -> FixDatabase {
    let mut db = FixDatabase::in_memory();
    db.add_xml(&fix::datagen::dblp(fix::datagen::GenConfig::scaled(0.05)))
        .unwrap();
    db.build(FixOptions::builder().depth_limit(6).build())
        .unwrap();
    db
}

#[test]
fn concurrent_counters_and_histograms_are_exact_after_join() {
    let reg = MetricsRegistry::new();
    // Handles resolved up front, recorded through from many threads —
    // exactly the session hot-path pattern.
    let c = reg.counter("fix_test_ops_total");
    let h = reg.histogram("fix_test_wall_ns");
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let (c, h) = (c.clone(), h.clone());
            s.spawn(move || {
                for i in 0..5_000u64 {
                    c.inc();
                    h.record(t * 5_000 + i);
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.counter("fix_test_ops_total"), Some(40_000));
    let hist = snap.histogram("fix_test_wall_ns").unwrap();
    assert_eq!(hist.count, 40_000);
    // Sum of 0..40_000 — every sample landed exactly once.
    assert_eq!(hist.sum, (0..40_000u64).sum());
}

#[test]
fn histogram_bucket_boundaries_are_conservative() {
    let h = Histogram::new();
    // Powers of two sit on bucket lower bounds; the quantile must resolve
    // to the bucket's *upper* bound (never underestimates).
    for v in [0u64, 1, 2, 1023, 1024, u64::MAX] {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 6);
    assert_eq!(s.quantile(0.0), Some(2)); // 0 and 1 share bucket [0,2)
    assert_eq!(s.quantile(1.0), Some(u64::MAX));
    // 1023 and 1024 land in adjacent buckets.
    assert!(s.buckets[9] >= 1 && s.buckets[10] >= 1);
}

#[test]
fn per_thread_snapshots_merge_associatively() {
    // One registry per worker, merged in two different groupings — the
    // multi-process aggregation story.
    let make = |seed: u64| {
        let reg = MetricsRegistry::new();
        reg.counter("fix_queries_total").add(seed);
        let h = reg.histogram("fix_query_wall_ns");
        for i in 0..seed {
            h.record(seed * 100 + i);
        }
        reg.gauge("fix_index_entries").set(seed as i64);
        reg.snapshot()
    };
    let (a, b, c) = (make(3), make(11), make(40));
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_eq!(left, right);
    assert_eq!(left.counter("fix_queries_total"), Some(54));
    assert_eq!(left.histogram("fix_query_wall_ns").unwrap().count, 54);
    // Gauges keep the first operand's level.
    assert_eq!(left.gauge("fix_index_entries"), Some(3));
}

#[test]
fn session_trace_agrees_with_untraced_query() {
    let db = build_db();
    let session = db.session().unwrap();
    let q = "//article[author]/title";
    let plain = session.query(q).unwrap();
    let (traced, trace) = session.query_traced(q).unwrap();
    assert_eq!(plain, traced);
    // Warm hit: the probe leads and compile/eigen are skipped.
    assert_eq!(trace.stages[0].stage, Stage::CacheProbe);
    assert_eq!(trace.cache_hit(), Some(true));
    assert!(trace.stage(Stage::Compile).is_none());
    assert_eq!(
        trace.stage(Stage::Scan).unwrap().items,
        Some(traced.metrics.candidates)
    );
    assert_eq!(
        trace.stage(Stage::Refine).unwrap().items,
        Some(traced.results.len() as u64)
    );
    assert!(trace.total >= trace.stage(Stage::Scan).unwrap().wall);
}

#[test]
fn concurrent_sessions_record_exact_query_counts() {
    let db = build_db();
    let session = db.session().unwrap();
    let queries = [
        "//article[author]/title",
        "//book/author",
        "//inproceedings/url",
    ];
    // Warm the plan cache sequentially so the concurrent fan-out below has
    // a deterministic compile count.
    for q in queries {
        session.query(q).unwrap();
    }
    std::thread::scope(|s| {
        for _ in 0..4 {
            let session = session.clone();
            s.spawn(move || {
                for q in queries {
                    session.query(q).unwrap();
                }
            });
        }
    });
    let snap = db.metrics().snapshot();
    assert_eq!(snap.counter("fix_queries_total"), Some(15));
    assert_eq!(snap.histogram("fix_query_wall_ns").unwrap().count, 15);
    assert_eq!(snap.histogram(Stage::Scan.metric_name()).unwrap().count, 15);
    // Every distinct query compiled exactly once; the 12 concurrent
    // repeats all hit the warmed plan cache.
    let compiled = snap.histogram(Stage::Compile.metric_name()).unwrap().count;
    assert_eq!(compiled, 3, "compiled {compiled} times");
}

#[test]
fn explain_analyze_matches_real_query_metrics() {
    let mut coll = Collection::new();
    coll.add_xml(&fix::datagen::dblp(fix::datagen::GenConfig::scaled(0.05)))
        .unwrap();
    let idx = FixIndex::build(&mut coll, fix::core::FixOptions::large_document(6));
    let q = "//article[author]/title";
    let ea = idx.explain_analyze(&coll, q, 2).unwrap();
    let out = idx.query(&coll, q).unwrap();
    // EXPLAIN ANALYZE ran the query for real: identical §6.2 counters.
    assert_eq!(ea.metrics, out.metrics);
    assert_eq!(ea.results, out.results.len());
    assert_eq!(
        ea.trace.stage(Stage::Scan).unwrap().items,
        Some(out.metrics.candidates)
    );
    for stage in [
        Stage::Parse,
        Stage::Compile,
        Stage::Eigen,
        Stage::Scan,
        Stage::Refine,
    ] {
        assert!(ea.trace.stage(stage).is_some(), "missing {stage}");
    }
    let text = format!("{ea}");
    assert!(text.contains("sel "), "{text}");
}

#[test]
fn report_metrics_renders_the_full_inventory() {
    let db = build_db();
    let session = db.session().unwrap();
    session.query("//article[author]/title").unwrap();
    session.query("//article[author]/title").unwrap();
    session.report_cache_stats();
    db.report_metrics();
    let prom = db.metrics().render_prometheus();
    let json = db.metrics().render_json();
    for name in [
        "fix_queries_total",
        "fix_query_wall_ns",
        "fix_plan_cache_hits",
        "fix_plan_cache_misses",
        "fix_plan_cache_evictions",
        "fix_btree_scans",
        "fix_refine_candidates_total",
        "fix_refine_producing_total",
        "fix_index_entries",
        "fix_stage_scan_ns",
    ] {
        assert!(prom.contains(name), "prometheus missing {name}");
        assert!(json.contains(&format!("\"{name}\"")), "json missing {name}");
    }
    let snap = db.metrics().snapshot();
    assert_eq!(snap.counter("fix_queries_total"), Some(2));
    assert_eq!(snap.gauge("fix_plan_cache_hits"), Some(1));
    assert_eq!(snap.gauge("fix_plan_cache_misses"), Some(1));
    // Scans really happened and were gauged from the B-tree's counters.
    assert!(snap.gauge("fix_btree_scans").unwrap() >= 1);
}

#[test]
fn reportable_stats_structs_land_in_a_registry() {
    let db = build_db();
    let reg = MetricsRegistry::new();
    let idx = db.index().unwrap();
    idx.stats().report(&reg);
    idx.btree_stats().report(&reg);
    let snap = reg.snapshot();
    assert!(snap.gauge("fix_build_entries").unwrap() >= 1);
    assert!(snap.gauge("fix_btree_height").unwrap() >= 1);
    // Level-style reports are idempotent: reporting twice changes nothing.
    idx.btree_stats().report(&reg);
    assert_eq!(
        reg.snapshot().gauge("fix_btree_height"),
        snap.gauge("fix_btree_height")
    );
}
