//! End-to-end observability tests: the fix-obs primitives under real
//! concurrency, the full pipeline — session traces, the shared metrics
//! registry, and EXPLAIN ANALYZE — agreeing with the plain query path on
//! actual numbers, the flight recorder narrating the engine lifecycle,
//! and the Prometheus exposition conforming to the exposition-format
//! rules against the full live registry.

use std::path::PathBuf;

use fix::core::{Collection, FixIndex, Stage};
use fix::obs::{Histogram, MetricsRegistry, Reportable};
use fix::{FixDatabase, FixOptions};

fn build_db() -> FixDatabase {
    let mut db = FixDatabase::in_memory();
    db.add_xml(&fix::datagen::dblp(fix::datagen::GenConfig::scaled(0.05)))
        .unwrap();
    db.build(FixOptions::builder().depth_limit(6).build())
        .unwrap();
    db
}

#[test]
fn concurrent_counters_and_histograms_are_exact_after_join() {
    let reg = MetricsRegistry::new();
    // Handles resolved up front, recorded through from many threads —
    // exactly the session hot-path pattern.
    let c = reg.counter("fix_test_ops_total");
    let h = reg.histogram("fix_test_wall_ns");
    std::thread::scope(|s| {
        for t in 0..8u64 {
            let (c, h) = (c.clone(), h.clone());
            s.spawn(move || {
                for i in 0..5_000u64 {
                    c.inc();
                    h.record(t * 5_000 + i);
                }
            });
        }
    });
    let snap = reg.snapshot();
    assert_eq!(snap.counter("fix_test_ops_total"), Some(40_000));
    let hist = snap.histogram("fix_test_wall_ns").unwrap();
    assert_eq!(hist.count, 40_000);
    // Sum of 0..40_000 — every sample landed exactly once.
    assert_eq!(hist.sum, (0..40_000u64).sum());
}

#[test]
fn histogram_bucket_boundaries_are_conservative() {
    let h = Histogram::new();
    // Powers of two sit on bucket lower bounds; the quantile must resolve
    // to the bucket's *upper* bound (never underestimates).
    for v in [0u64, 1, 2, 1023, 1024, u64::MAX] {
        h.record(v);
    }
    let s = h.snapshot();
    assert_eq!(s.count, 6);
    assert_eq!(s.quantile(0.0), Some(2)); // 0 and 1 share bucket [0,2)
    assert_eq!(s.quantile(1.0), Some(u64::MAX));
    // 1023 and 1024 land in adjacent buckets.
    assert!(s.buckets[9] >= 1 && s.buckets[10] >= 1);
}

#[test]
fn per_thread_snapshots_merge_associatively() {
    // One registry per worker, merged in two different groupings — the
    // multi-process aggregation story.
    let make = |seed: u64| {
        let reg = MetricsRegistry::new();
        reg.counter("fix_queries_total").add(seed);
        let h = reg.histogram("fix_query_wall_ns");
        for i in 0..seed {
            h.record(seed * 100 + i);
        }
        reg.gauge("fix_index_entries").set(seed as i64);
        reg.snapshot()
    };
    let (a, b, c) = (make(3), make(11), make(40));
    let mut left = a.clone();
    left.merge(&b);
    left.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut right = a.clone();
    right.merge(&bc);
    assert_eq!(left, right);
    assert_eq!(left.counter("fix_queries_total"), Some(54));
    assert_eq!(left.histogram("fix_query_wall_ns").unwrap().count, 54);
    // Gauges keep the first operand's level.
    assert_eq!(left.gauge("fix_index_entries"), Some(3));
}

#[test]
fn session_trace_agrees_with_untraced_query() {
    let db = build_db();
    let session = db.session().unwrap();
    let q = "//article[author]/title";
    let plain = session.query(q).unwrap();
    let (traced, trace) = session.query_traced(q).unwrap();
    assert_eq!(plain, traced);
    // Warm hit: the probe leads and compile/eigen are skipped.
    assert_eq!(trace.stages[0].stage, Stage::CacheProbe);
    assert_eq!(trace.cache_hit(), Some(true));
    assert!(trace.stage(Stage::Compile).is_none());
    assert_eq!(
        trace.stage(Stage::Scan).unwrap().items,
        Some(traced.metrics.candidates)
    );
    assert_eq!(
        trace.stage(Stage::Refine).unwrap().items,
        Some(traced.results.len() as u64)
    );
    assert!(trace.total >= trace.stage(Stage::Scan).unwrap().wall);
}

#[test]
fn concurrent_sessions_record_exact_query_counts() {
    let db = build_db();
    let session = db.session().unwrap();
    let queries = [
        "//article[author]/title",
        "//book/author",
        "//inproceedings/url",
    ];
    // Warm the plan cache sequentially so the concurrent fan-out below has
    // a deterministic compile count.
    for q in queries {
        session.query(q).unwrap();
    }
    std::thread::scope(|s| {
        for _ in 0..4 {
            let session = session.clone();
            s.spawn(move || {
                for q in queries {
                    session.query(q).unwrap();
                }
            });
        }
    });
    let snap = db.metrics().snapshot();
    assert_eq!(snap.counter("fix_queries_total"), Some(15));
    assert_eq!(snap.histogram("fix_query_wall_ns").unwrap().count, 15);
    assert_eq!(snap.histogram(Stage::Scan.metric_name()).unwrap().count, 15);
    // Every distinct query compiled exactly once; the 12 concurrent
    // repeats all hit the warmed plan cache.
    let compiled = snap.histogram(Stage::Compile.metric_name()).unwrap().count;
    assert_eq!(compiled, 3, "compiled {compiled} times");
}

#[test]
fn explain_analyze_matches_real_query_metrics() {
    let mut coll = Collection::new();
    coll.add_xml(&fix::datagen::dblp(fix::datagen::GenConfig::scaled(0.05)))
        .unwrap();
    let idx = FixIndex::build(&mut coll, fix::core::FixOptions::large_document(6));
    let q = "//article[author]/title";
    let ea = idx.explain_analyze(&coll, q, 2).unwrap();
    let out = idx.query(&coll, q).unwrap();
    // EXPLAIN ANALYZE ran the query for real: identical §6.2 counters.
    assert_eq!(ea.metrics, out.metrics);
    assert_eq!(ea.results, out.results.len());
    assert_eq!(
        ea.trace.stage(Stage::Scan).unwrap().items,
        Some(out.metrics.candidates)
    );
    for stage in [
        Stage::Parse,
        Stage::Compile,
        Stage::Eigen,
        Stage::Scan,
        Stage::Refine,
    ] {
        assert!(ea.trace.stage(stage).is_some(), "missing {stage}");
    }
    let text = format!("{ea}");
    assert!(text.contains("sel "), "{text}");
}

#[test]
fn report_metrics_renders_the_full_inventory() {
    let db = build_db();
    let session = db.session().unwrap();
    session.query("//article[author]/title").unwrap();
    session.query("//article[author]/title").unwrap();
    session.report_cache_stats();
    db.report_metrics();
    let prom = db.metrics().render_prometheus();
    let json = db.metrics().render_json();
    for name in [
        "fix_queries_total",
        "fix_query_wall_ns",
        "fix_plan_cache_hits",
        "fix_plan_cache_misses",
        "fix_plan_cache_evictions",
        "fix_btree_scans",
        "fix_refine_candidates_total",
        "fix_refine_producing_total",
        "fix_index_entries",
        "fix_stage_scan_ns",
    ] {
        assert!(prom.contains(name), "prometheus missing {name}");
        assert!(json.contains(&format!("\"{name}\"")), "json missing {name}");
    }
    let snap = db.metrics().snapshot();
    assert_eq!(snap.counter("fix_queries_total"), Some(2));
    assert_eq!(snap.gauge("fix_plan_cache_hits"), Some(1));
    assert_eq!(snap.gauge("fix_plan_cache_misses"), Some(1));
    // Scans really happened and were gauged from the B-tree's counters.
    assert!(snap.gauge("fix_btree_scans").unwrap() >= 1);
}

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fix-obs-{}-{name}", std::process::id()))
}

fn cleanup(path: &PathBuf) {
    std::fs::remove_dir_all(fix::storage::wal_dir(path)).ok();
    std::fs::remove_file(path).ok();
}

/// Field lookup helper: the payload value of `key` as u64.
fn field_u64(e: &fix::Event, key: &str) -> Option<u64> {
    e.fields.iter().find_map(|(k, v)| {
        (*k == key).then(|| match v {
            fix::FieldValue::U64(n) => *n,
            other => panic!("{key} is not u64: {other:?}"),
        })
    })
}

#[test]
fn flight_recorder_traces_the_full_write_chain() {
    let path = temp("chain.fixdb");
    cleanup(&path);
    let mut db = FixDatabase::open(&path).unwrap();
    // A roomy base keeps auto-compaction quiet while the deltas pile up.
    for i in 0..12 {
        db.add_xml(&format!("<a><base{i}/></a>")).unwrap();
    }
    db.build(
        FixOptions::builder()
            .wal_seal_bytes(1) // every commit seals its WAL segment
            .tier_fanout(2) // two frozen runs trigger a tier merge
            .build(),
    )
    .unwrap();
    db.save().unwrap();
    for i in 0..6 {
        db.add_xml(&format!("<a><c{i}/></a>")).unwrap();
    }
    let events = db.events();
    // The commit span carries its phase breakdown and the seal marker.
    let commit = events
        .iter()
        .find(|e| e.name == "commit" && e.fields.contains(&("sealed", fix::FieldValue::Bool(true))))
        .expect("a sealing commit was recorded");
    assert!(commit.duration_ns.is_some());
    assert_eq!(field_u64(commit, "ops"), Some(1));
    assert!(field_u64(commit, "validate_ns").is_some());
    assert!(field_u64(commit, "wal_ns").is_some());
    // The causal chain is visible in sequence order: the WAL segment
    // seals, the L0 delta run freezes, and the full level merges.
    let first_seq = |name: &str| {
        events
            .iter()
            .find(|e| e.name == name)
            .unwrap_or_else(|| panic!("missing event {name}"))
            .seq
    };
    let (seal, freeze, merge) = (
        first_seq("wal.seal"),
        first_seq("tier.freeze"),
        first_seq("tier.merge"),
    );
    assert!(seal < freeze, "seal {seal} precedes freeze {freeze}");
    assert!(freeze < merge, "freeze {freeze} precedes merge {merge}");
    let merge_ev = events.iter().find(|e| e.name == "tier.merge").unwrap();
    assert_eq!(field_u64(merge_ev, "runs_in"), Some(2));
    assert!(merge_ev.duration_ns.is_some());
    cleanup(&path);
}

#[test]
fn reopen_narrates_recovery_replay() {
    let path = temp("recovery.fixdb");
    cleanup(&path);
    let mut db = FixDatabase::open(&path).unwrap();
    db.add_xml("<a><b/></a>").unwrap();
    db.build(FixOptions::collection()).unwrap();
    db.save().unwrap();
    for i in 0..3 {
        db.add_xml(&format!("<a><c{i}/></a>")).unwrap();
    }
    drop(db); // "crash": the three commits live only in the WAL
    let db = FixDatabase::open(&path).unwrap();
    let events = db.events();
    let open = events.iter().find(|e| e.name == "open").expect("open");
    assert!(field_u64(open, "bytes").unwrap() > 0);
    assert_eq!(field_u64(open, "documents"), Some(1));
    let replay = events
        .iter()
        .find(|e| e.name == "recovery.replay")
        .expect("recovery.replay");
    assert_eq!(field_u64(replay, "records"), Some(3));
    assert!(replay.duration_ns.is_some());
    assert!(open.seq < replay.seq, "open precedes replay");
    assert_eq!(db.len(), 4, "the replay actually restored the commits");
    cleanup(&path);
}

#[test]
fn slow_op_log_promotes_at_threshold_and_capacity_zero_disables() {
    let mut db = FixDatabase::in_memory();
    db.add_xml("<a><b/></a>").unwrap();
    // Threshold 0: every span is a "slow" op — the shape check.
    db.build(FixOptions::builder().slow_op_ns(0).build())
        .unwrap();
    db.add_xml("<a><c/></a>").unwrap();
    let slow = db.slow_ops();
    assert!(
        slow.iter().any(|e| e.name == "commit"),
        "commit span promoted: {slow:?}"
    );
    assert!(
        slow.iter().all(|e| e.duration_ns.is_some()),
        "only spans promote"
    );
    // The slow-op log is a subset view; the ring still has everything.
    assert!(db.events().len() >= slow.len());

    let mut off = FixDatabase::in_memory();
    off.add_xml("<a><b/></a>").unwrap();
    off.build(FixOptions::builder().event_capacity(0).build())
        .unwrap();
    off.add_xml("<a><c/></a>").unwrap();
    assert!(!off.event_recorder().enabled());
    assert!(off.events().is_empty());
    assert!(off.slow_ops().is_empty());
}

/// Prometheus exposition-format conformance, checked against the *full*
/// live registry of a database that has built, committed through the WAL,
/// and served queries — not a hand-picked metric list. Rules: metric
/// names match the Prometheus charset, counters end `_total`, gauges and
/// histograms do not, and every family carries `# HELP` and `# TYPE`
/// exactly once.
#[test]
fn prometheus_exposition_conforms_against_the_live_registry() {
    let path = temp("prom.fixdb");
    cleanup(&path);
    let mut db = FixDatabase::open(&path).unwrap();
    db.add_xml(&fix::datagen::dblp(fix::datagen::GenConfig::scaled(0.05)))
        .unwrap();
    db.build(FixOptions::builder().depth_limit(6).build())
        .unwrap();
    db.save().unwrap();
    db.add_xml("<bib><article><author/></article></bib>")
        .unwrap();
    let session = db.session().unwrap();
    session.query("//article[author]/title").unwrap();
    session.report_cache_stats();
    db.report_metrics();
    let prom = db.metrics().render_prometheus();
    drop(session);
    cleanup(&path);

    let valid_name = |n: &str| {
        !n.is_empty()
            && !n.starts_with(|c: char| c.is_ascii_digit())
            && n.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut help: std::collections::HashMap<String, u32> = Default::default();
    let mut kind: std::collections::HashMap<String, (&str, u32)> = Default::default();
    let mut samples: Vec<String> = Vec::new();
    for line in prom.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap().to_string();
            assert!(rest.len() > name.len(), "HELP carries text: {line}");
            *help.entry(name).or_insert(0) += 1;
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().unwrap().to_string();
            let k = match it.next().unwrap() {
                "counter" => "counter",
                "gauge" => "gauge",
                "histogram" => "histogram",
                other => panic!("unknown TYPE {other} in {line}"),
            };
            kind.entry(name).or_insert((k, 0)).1 += 1;
        } else if !line.is_empty() {
            let sample = line.split([' ', '{']).next().unwrap().to_string();
            assert!(valid_name(&sample), "bad sample name in {line}");
            samples.push(sample);
        }
    }
    assert!(kind.len() > 20, "a real inventory: {} families", kind.len());
    for (family, (k, n)) in &kind {
        assert!(valid_name(family), "bad family name {family}");
        assert_eq!(*n, 1, "{family}: TYPE exactly once");
        assert_eq!(help.get(family), Some(&1), "{family}: HELP exactly once");
        match *k {
            "counter" => assert!(
                family.ends_with("_total"),
                "counter {family} must end _total"
            ),
            _ => assert!(
                !family.ends_with("_total"),
                "{k} {family} must not end _total"
            ),
        }
    }
    assert_eq!(help.len(), kind.len(), "every HELP has a TYPE");
    // Every sample line belongs to a declared family (histograms expose
    // `_bucket`/`_sum`/`_count` series under the family name).
    for s in &samples {
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suf| {
                let base = s.strip_suffix(suf)?;
                kind.get(base)
                    .filter(|(k, _)| *k == "histogram")
                    .map(|_| base)
            })
            .unwrap_or(s.as_str());
        assert!(kind.contains_key(family), "sample {s} has no TYPE");
    }
    // The write-path instruments from this PR are part of the inventory.
    for name in [
        "fix_wal_append_ns",
        "fix_wal_fsync_ns",
        "fix_wal_group_commits_total",
        "fix_wal_group_queue_depth",
    ] {
        assert!(kind.contains_key(name), "missing write-path metric {name}");
    }
}

#[test]
fn reportable_stats_structs_land_in_a_registry() {
    let db = build_db();
    let reg = MetricsRegistry::new();
    let idx = db.index().unwrap();
    idx.stats().report(&reg);
    idx.btree_stats().report(&reg);
    let snap = reg.snapshot();
    assert!(snap.gauge("fix_build_entries").unwrap() >= 1);
    assert!(snap.gauge("fix_btree_height").unwrap() >= 1);
    // Level-style reports are idempotent: reporting twice changes nothing.
    idx.btree_stats().report(&reg);
    assert_eq!(
        reg.snapshot().gauge("fix_btree_height"),
        snap.gauge("fix_btree_height")
    );
}
