//! Concurrent read path: a built index is shared across threads (`&self`
//! queries go through the buffer pool's internal lock), and all threads
//! must see identical, correct results.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use fix::core::{Collection, DocId, FixIndex, FixOptions};
use fix::datagen::{tcmd, xmark, GenConfig};
use fix::{FixDatabase, FixError};

#[test]
fn parallel_queries_agree_with_serial() {
    let mut coll = Collection::new();
    coll.add_xml(&xmark(GenConfig::scaled(0.1))).unwrap();
    let idx = Arc::new(FixIndex::build(&mut coll, FixOptions::large_document(6)));
    let coll = Arc::new(coll);

    let queries = [
        "//item/mailbox/mail/text/emph/keyword",
        "//category/description[parlist]/parlist/listitem/text",
        "//open_auction[seller]/annotation/description/text",
        "//description/parlist/listitem",
        "//closed_auction/annotation/description/text",
        "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
    ];
    // Serial reference.
    let reference: Vec<usize> = queries
        .iter()
        .map(|q| idx.query(&coll, q).unwrap().results.len())
        .collect();

    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..8 {
            let idx = Arc::clone(&idx);
            let coll = Arc::clone(&coll);
            handles.push(s.spawn(move || {
                // Each thread hammers all queries in a rotated order.
                let mut counts = vec![0usize; queries.len()];
                for round in 0..5 {
                    for (i, q) in queries.iter().enumerate() {
                        let k = (i + t + round) % queries.len();
                        counts[k] = idx.query(&coll, queries[k]).unwrap().results.len();
                        let _ = q;
                    }
                }
                counts
            }));
        }
        for h in handles {
            let counts = h.join().expect("no panics in worker threads");
            assert_eq!(counts, reference, "thread saw different results");
        }
    });
}

#[test]
fn queries_run_concurrently_with_a_parallel_build() {
    // A parallel build on one database must not disturb readers of
    // another, and the freshly built index must answer correctly from
    // many threads immediately afterwards.
    let docs = tcmd(GenConfig::scaled(0.2));
    let queries = [
        "/article/prolog",
        "/article/epilog[acknoledgements]/references/a_id",
        "//authors/author",
    ];

    // A pre-built database that reader threads hammer throughout.
    let mut served = FixDatabase::in_memory();
    for d in &docs {
        served.add_xml(d).unwrap();
    }
    served.build(FixOptions::collection()).unwrap();
    let served = Arc::new(served);
    let reference: Vec<usize> = queries
        .iter()
        .map(|q| served.query(q).unwrap().results.len())
        .collect();

    let building = AtomicBool::new(true);
    let fresh = std::thread::scope(|s| {
        let mut readers = Vec::new();
        for _ in 0..4 {
            let served = Arc::clone(&served);
            let building = &building;
            let reference = &reference;
            readers.push(s.spawn(move || {
                let mut rounds = 0usize;
                while building.load(Ordering::Relaxed) || rounds < 3 {
                    for (q, want) in queries.iter().zip(reference) {
                        assert_eq!(served.query(q).unwrap().results.len(), *want);
                    }
                    rounds += 1;
                }
            }));
        }

        // The build itself runs its own worker pool while readers spin.
        let mut db = FixDatabase::in_memory();
        for d in &docs {
            db.add_xml(d).unwrap();
        }
        db.build(FixOptions::builder().threads(4).build()).unwrap();
        building.store(false, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader thread panicked");
        }
        db
    });

    // After the build: the new index is queried from many threads and must
    // agree with the serially queried pre-built database.
    assert_eq!(
        fresh.stats().unwrap().entries,
        served.stats().unwrap().entries
    );
    let fresh = Arc::new(fresh);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let fresh = Arc::clone(&fresh);
            let reference = &reference;
            s.spawn(move || {
                for _ in 0..5 {
                    for (q, want) in queries.iter().zip(reference) {
                        assert_eq!(fresh.query(q).unwrap().results.len(), *want);
                    }
                }
            });
        }
    });
}

#[test]
fn compaction_and_vacuum_race_live_sessions() {
    // Sessions pin an immutable snapshot. While the snapshot is shared
    // with the database, in-place mutations fail cleanly with
    // SnapshotInUse; compaction and vacuum instead *replace* the
    // snapshot, after which the database accepts mutations again while
    // the session keeps serving its pinned (pre-churn) answers. Readers
    // hammer the session from many threads through the whole churn, and
    // afterwards the maintained index must agree with a fresh rebuild of
    // the final logical collection.
    let opts = FixOptions::builder().compact_ratio(0.0).build();
    let mut db = FixDatabase::in_memory();
    for i in 0..6 {
        db.add_xml(&format!("<r><a><b/></a><a><c{i}/></a></r>"))
            .unwrap();
    }
    db.build(opts.clone()).unwrap();
    // Leave entries in the delta run so compaction has real work to fold.
    db.add_xml("<r><a><b/></a></r>").unwrap();
    db.add_xml("<r><a><b/><b/></a></r>").unwrap();
    db.remove_document(DocId(0)).unwrap();
    assert!(db.index().unwrap().delta_len() > 0);

    let session = db.session().unwrap();
    let want: Vec<_> = session.query("//a/b").unwrap().results;
    assert!(!want.is_empty());

    // The session shares the database's current snapshot, so in-place
    // mutations are refused — never corrupted, never blocked.
    assert!(
        matches!(db.add_xml("<r><a/></r>"), Err(FixError::SnapshotInUse)),
        "mutation must be refused while the snapshot is shared"
    );
    assert!(matches!(
        db.remove_document(DocId(1)),
        Err(FixError::SnapshotInUse)
    ));

    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let stop = &stop;
        let mut readers = Vec::new();
        for _ in 0..6 {
            let session = session.clone();
            let want = &want;
            readers.push(s.spawn(move || {
                let mut rounds = 0usize;
                while !stop.load(Ordering::Relaxed) || rounds < 3 {
                    assert_eq!(
                        session.query("//a/b").unwrap().results,
                        *want,
                        "session answer drifted off its snapshot"
                    );
                    rounds += 1;
                }
            }));
        }

        // The writer churns the database underneath the pinned session.
        // Vacuum replaces both collection and index, so mutations succeed
        // again afterwards even though the session is still alive.
        let churn = (|| -> Result<(), FixError> {
            for round in 0..10 {
                db.compact()?;
                if round % 3 == 0 {
                    db.vacuum()?;
                    db.add_xml("<r><a><b/></a></r>")?;
                }
            }
            Ok(())
        })();
        // Always release the readers before unwrapping the writer's
        // outcome — a panic inside the scope would leave them spinning.
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader thread panicked");
        }
        churn.expect("maintenance churn under live sessions failed");
    });
    // The session outlived every snapshot swap and still answers from its
    // original pin.
    assert_eq!(session.query("//a/b").unwrap().results, want);
    drop(session);

    // The maintained index agrees with a fresh rebuild of the same
    // logical collection after folding the remaining delta.
    db.add_xml("<r><a><b/></a></r>").unwrap();
    db.compact().unwrap();
    let mut rebuilt = FixDatabase::in_memory();
    for (_, d) in db.collection().iter() {
        rebuilt
            .add_xml(&fix::xml::to_xml_string(d, &db.collection().labels))
            .unwrap();
    }
    rebuilt.build(opts).unwrap();
    assert_eq!(
        db.query("//a/b").unwrap().results,
        rebuilt.query("//a/b").unwrap().results
    );
}

#[test]
fn crossbeam_scoped_queries() {
    // Same property through crossbeam's scope (the workspace's sanctioned
    // concurrency crate), exercising the pool under heavier interleaving.
    let mut coll = Collection::new();
    for xml in [
        "<bib><article><author/><ee/></article></bib>",
        "<bib><book><author><phone/></author></book></bib>",
        "<bib><article><author><email/></author><title>t</title></article></bib>",
    ] {
        coll.add_xml(xml).unwrap();
    }
    let idx = FixIndex::build(&mut coll, FixOptions::collection());
    let expected = idx.query(&coll, "//article/author").unwrap().results.len();

    crossbeam::scope(|s| {
        for _ in 0..16 {
            s.spawn(|_| {
                for _ in 0..50 {
                    let n = idx.query(&coll, "//article/author").unwrap().results.len();
                    assert_eq!(n, expected);
                }
            });
        }
    })
    .expect("scope");
}
