//! Soundness regressions for the two theory gaps this reproduction found
//! in the paper (DESIGN.md §2):
//!
//! 1. **Theorem 3 gap** — eigenvalue-range containment is proven for
//!    *induced* subpatterns but matches are plain homomorphisms; on
//!    recursive data the skew-spectral key loses true anchors.
//! 2. **Theorem 2 gap** — two identical query leaves collapse into one
//!    pattern vertex, yet can match document nodes with *different*
//!    subtrees, so the minimized query pattern has no homomorphism into
//!    the document pattern even though the twig matches the tree.
//!    Counterexample family: `//S[VP/NP]/NP`.
//!
//! The default configuration must return exactly the navigational
//! baseline's results on both.

use fix::core::{ground_truth, Collection, FixIndex, FixOptions};
use fix::datagen::{random_twigs, treebank, GenConfig, QueryGenConfig};
use fix::exec::eval_path;
use fix::xpath::parse_path;

#[test]
fn theorem2_counterexample_family() {
    // Minimal instance: the query's two NP leaves are identical (collapse
    // in the query pattern), but the document's NPs differ structurally.
    let mut coll = Collection::new();
    coll.add_xml("<S><VP><NP><NN/></NP></VP><NP><DT/></NP></S>")
        .unwrap();
    let idx = FixIndex::build(&mut coll, FixOptions::large_document(4));
    let q = parse_path("//S[VP/NP]/NP").unwrap();
    let out = idx.query_path(&coll, &q).unwrap();
    let want = eval_path(coll.doc(fix::core::DocId(0)), &coll.labels, &q);
    assert_eq!(out.results.len(), want.len());
    assert_eq!(want.len(), 1);
}

#[test]
fn treebank_random_twigs_have_zero_false_negatives() {
    let mut coll = Collection::new();
    coll.add_xml(&treebank(GenConfig::scaled(0.1))).unwrap();
    let idx = FixIndex::build(&mut coll, FixOptions::large_document(6));
    let docs: Vec<&fix::xml::Document> = coll.iter().map(|(_, d)| d).collect();
    let queries = random_twigs(
        &docs,
        &coll.labels,
        QueryGenConfig {
            count: 150,
            max_depth: 5,
            ..Default::default()
        },
    );
    let mut covered = 0;
    for q in &queries {
        let out = match idx.query_path(&coll, q) {
            Ok(o) => o,
            Err(_) => continue,
        };
        covered += 1;
        let truth = ground_truth(&coll, q, 6);
        assert_eq!(
            out.metrics.producing, truth,
            "false negative on {q}: produced {} of {}",
            out.metrics.producing, truth
        );
    }
    assert!(covered > 120, "most random queries should be covered");
}

#[test]
fn paper_mode_exhibits_the_gap_but_default_does_not() {
    // Documents the finding rather than hiding it: with the same seed and
    // corpus, the paper-faithful skew key misses anchors the default
    // recovers. (If a future change makes the skew key lose nothing here,
    // this assertion will flag it — re-examine, don't silently delete.)
    let mut coll = Collection::new();
    coll.add_xml(&treebank(GenConfig::scaled(0.1))).unwrap();
    let skew = FixIndex::build(&mut coll, FixOptions::large_document(6).paper_mode());
    let docs: Vec<&fix::xml::Document> = coll.iter().map(|(_, d)| d).collect();
    let queries = random_twigs(
        &docs,
        &coll.labels,
        QueryGenConfig {
            count: 150,
            max_depth: 5,
            ..Default::default()
        },
    );
    let mut lost = 0u64;
    for q in &queries {
        let out = match skew.query_path(&coll, q) {
            Ok(o) => o,
            Err(_) => continue,
        };
        let truth = ground_truth(&coll, q, 6);
        lost += truth.saturating_sub(out.metrics.producing);
    }
    assert!(
        lost > 0,
        "expected the paper-faithful key to lose anchors on recursive data"
    );
}
