//! The differential test oracle for incremental index maintenance: for
//! arbitrary interleavings of `add_xml` / `remove_document` / `compact` /
//! `vacuum` / `query`, the incrementally-maintained database must agree —
//! query by query — with (a) a database freshly rebuilt from the same
//! logical collection and (b) the naive brute-force evaluator in
//! `fix_datagen::naive`, which shares no index, pruning, or refinement
//! code with the engine. After compaction, the incremental index must be
//! *byte-identical* to the rebuild: same key stream, same values, same
//! clustered copy-heap order.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use fix::core::{Collection, DocId, FixIndex};
use fix::datagen::naive::NaiveStore;
use fix::{FixDatabase, FixOptions, StorageMode};

/// Small random documents over labels `p0..p4` rooted at `p0`, with
/// occasional `wN` text leaves so value predicates have something to hit.
fn doc_strategy() -> impl Strategy<Value = String> {
    #[derive(Debug, Clone)]
    enum T {
        Leaf(u8),
        Text(u8, u8),
        Node(u8, Vec<T>),
    }
    fn render(t: &T, out: &mut String) {
        match t {
            T::Leaf(l) => out.push_str(&format!("<p{l}/>")),
            T::Text(l, v) => out.push_str(&format!("<p{l}>w{v}</p{l}>")),
            T::Node(l, c) => {
                out.push_str(&format!("<p{l}>"));
                for x in c {
                    render(x, out);
                }
                out.push_str(&format!("</p{l}>"));
            }
        }
    }
    let leaf = prop_oneof![
        (0u8..5).prop_map(T::Leaf),
        (0u8..5, 0u8..3).prop_map(|(l, v)| T::Text(l, v)),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        ((0u8..5), prop::collection::vec(inner, 1..4)).prop_map(|(l, c)| T::Node(l, c))
    })
    .prop_map(|t| {
        let mut s = String::from("<p0>");
        render(&t, &mut s);
        s.push_str("</p0>");
        s
    })
}

/// Queries over the same label space: single steps, chains, interior
/// `//`, branching predicates, rooted anchors, value tests. Depth ≤ 3,
/// so both option profiles below cover every query.
fn query_strategy() -> impl Strategy<Value = String> {
    let l = || 0u8..5;
    prop_oneof![
        l().prop_map(|a| format!("//p{a}")),
        (l(), l()).prop_map(|(a, b)| format!("//p{a}/p{b}")),
        (l(), l()).prop_map(|(a, b)| format!("//p{a}//p{b}")),
        (l(), l(), l()).prop_map(|(a, b, c)| format!("//p{a}[p{b}]/p{c}")),
        (l(), l()).prop_map(|(a, b)| format!("/p0//p{a}[p{b}]")),
        (l(), l(), 0u8..3).prop_map(|(a, b, v)| format!(r#"//p{a}[p{b}="w{v}"]"#)),
    ]
}

/// Index configurations under test: clustered and unclustered, collection
/// and large-document mode, with and without the value index and bloom
/// pruning, explicit-only and eager auto-compaction, sequential and
/// parallel refinement.
fn options_strategy() -> impl Strategy<Value = FixOptions> {
    (
        prop_oneof![Just(0usize), Just(4usize)],
        prop::bool::ANY,
        prop::option::of(1u32..16),
        prop::bool::ANY,
        prop_oneof![Just(0.0f64), Just(0.5f64)],
        1usize..3,
    )
        .prop_map(|(depth, clustered, beta, bloom, ratio, qthreads)| {
            let mut b = FixOptions::builder()
                .depth_limit(depth)
                .clustered(clustered)
                .edge_bloom(bloom)
                .compact_ratio(ratio)
                .query_threads(qthreads);
            if let Some(beta) = beta {
                b = b.values(beta);
            }
            b.build()
        })
}

/// One step of a random maintenance interleaving.
#[derive(Debug, Clone)]
enum Op {
    Add(String),
    Remove(u8),
    Compact,
    Vacuum,
    Query(String),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        doc_strategy().prop_map(Op::Add),
        (0u8..8).prop_map(Op::Remove),
        Just(Op::Compact),
        Just(Op::Vacuum),
        query_strategy().prop_map(Op::Query),
    ]
}

/// A fresh database over the same logical collection: every document in
/// the current id space (tombstoned ones included, so ids line up),
/// indexed from scratch, then the same tombstones applied.
fn rebuild(model: &[(String, bool)], opts: &FixOptions) -> FixDatabase {
    let mut db = FixDatabase::in_memory();
    for (xml, _) in model {
        db.add_xml(xml).unwrap();
    }
    db.build(opts.clone()).unwrap();
    for (i, (_, live)) in model.iter().enumerate() {
        if !live {
            db.remove_document(DocId(i as u32)).unwrap();
        }
    }
    db
}

/// The oracle: incremental == rebuild (results *and* work counters,
/// except the delta attribution, which only the incremental side has) and
/// incremental == naive (results).
fn check_query(
    db: &FixDatabase,
    naive: &NaiveStore,
    model: &[(String, bool)],
    opts: &FixOptions,
    q: &str,
) -> Result<(), TestCaseError> {
    let inc = db.query(q);
    let frs = rebuild(model, opts).query(q);
    match (inc, frs) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(&a.results, &b.results, "incremental vs rebuild on {}", q);
            // Work counters are label-id-sensitive (bloom fingerprints,
            // value buckets); the from-XML rebuild only shares label
            // numbering when no synthetic value labels interleave.
            if opts.value_beta.is_none() {
                prop_assert_eq!(
                    a.metrics.candidates,
                    b.metrics.candidates,
                    "candidate counts diverge on {}",
                    q
                );
                prop_assert_eq!(
                    a.metrics.producing,
                    b.metrics.producing,
                    "producing counts diverge on {}",
                    q
                );
            }
            let raw: Vec<(u32, u32)> = a.results.iter().map(|&(d, n)| (d.0, n.0)).collect();
            let truth = naive
                .query_str(q)
                .expect("oracle parses what the engine parses");
            prop_assert_eq!(raw, truth, "incremental vs naive oracle on {}", q);
        }
        (a, b) => prop_assert!(
            false,
            "outcome disagreement on {}: incremental {:?}, rebuild {:?}",
            q,
            a.map(|o| o.results.len()),
            b.map(|o| o.results.len())
        ),
    }
    Ok(())
}

/// Byte-identity of the (compacted) incremental index against a full
/// rebuild over the same collection: same encoded key stream with the
/// same values, and for clustered indexes the same copy records in the
/// same order. The reference collection carries over the label table —
/// label ids are interned in arrival order (synthetic value labels
/// included), so they are history, not content; key bytes embed them.
fn check_byte_identity(db: &FixDatabase, opts: &FixOptions) -> Result<(), TestCaseError> {
    let coll = db.collection();
    let mut reference = Collection::new();
    reference.labels = coll.labels.clone();
    for (_, d) in coll.iter() {
        reference
            .add_xml(&fix::xml::to_xml_string(d, &coll.labels))
            .unwrap();
    }
    let rebuilt = FixIndex::build(&mut reference, opts.clone());
    let (a, b) = (db.index().unwrap(), &rebuilt);
    let ka: Vec<([u8; 40], u64)> = a.entries().map(|(k, v)| (k.encode(), v)).collect();
    let kb: Vec<([u8; 40], u64)> = b.entries().map(|(k, v)| (k.encode(), v)).collect();
    prop_assert_eq!(ka, kb, "compacted key stream differs from rebuild");
    let ra = a.clustered_records().map(|r| {
        r.into_iter()
            .map(|(k, rec)| (k.encode(), rec))
            .collect::<Vec<_>>()
    });
    let rb = b.clustered_records().map(|r| {
        r.into_iter()
            .map(|(k, rec)| (k.encode(), rec))
            .collect::<Vec<_>>()
    });
    prop_assert_eq!(ra, rb, "compacted copy heap differs from rebuild");
    Ok(())
}

static PAGED_SEQ: AtomicU64 = AtomicU64::new(0);

/// The paged-engine leg of the oracle: rebuild the logical collection
/// with `StorageMode::Paged` and a deliberately tiny pool, save it
/// through the v4 paged format, reopen from disk, and demand the same
/// answers the in-memory database serves. Query evaluation then runs
/// against demand-read pages with constant eviction pressure.
fn check_paged_reopen(
    db: &FixDatabase,
    model: &[(String, bool)],
    opts: &FixOptions,
    queries: &[String],
) -> Result<(), TestCaseError> {
    let mut popts = opts.clone();
    popts.storage = StorageMode::Paged;
    popts.pool_pages = 8;
    let mut on_disk = rebuild(model, &popts);
    let mut path = std::env::temp_dir();
    path.push(format!(
        "fix-differential-{}-{}.fix",
        std::process::id(),
        PAGED_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    on_disk.save_as(&path).unwrap();
    let reopened = FixDatabase::open(&path).unwrap();
    for q in queries {
        match (db.query(q), reopened.query(q)) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.results, &b.results, "in-memory vs paged reopen on {}", q);
            }
            (Err(_), Err(_)) => {}
            (a, b) => prop_assert!(
                false,
                "outcome disagreement on {}: in-memory {:?}, paged {:?}",
                q,
                a.map(|o| o.results.len()),
                b.map(|o| o.results.len())
            ),
        }
    }
    let stats = reopened.pool_stats().expect("paged database has a pool");
    prop_assert!(stats.resident <= stats.capacity);
    let _ = std::fs::remove_file(&path);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn incremental_equals_rebuild_equals_naive(
        seed_docs in prop::collection::vec(doc_strategy(), 1..4),
        opts in options_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..9),
        final_queries in prop::collection::vec(query_strategy(), 1..3),
    ) {
        let mut db = FixDatabase::in_memory();
        let mut naive = NaiveStore::new();
        // The logical collection: XML by current document id, plus a
        // liveness flag. Vacuum renumbers, so it compacts this list too.
        let mut model: Vec<(String, bool)> = Vec::new();
        for xml in &seed_docs {
            db.add_xml(xml).unwrap();
            naive.add_xml(xml).unwrap();
            model.push((xml.clone(), true));
        }
        db.build(opts.clone()).unwrap();

        for op in &ops {
            match op {
                Op::Add(xml) => {
                    db.add_xml(xml).unwrap();
                    naive.add_xml(xml).unwrap();
                    model.push((xml.clone(), true));
                }
                Op::Remove(i) => {
                    if !model.is_empty() {
                        let id = *i as usize % model.len();
                        db.remove_document(DocId(id as u32)).unwrap();
                        naive.remove(id as u32);
                        model[id].1 = false;
                    }
                }
                Op::Compact => db.compact().unwrap(),
                Op::Vacuum => {
                    db.vacuum().unwrap();
                    model.retain(|(_, live)| *live);
                    naive = NaiveStore::new();
                    for (xml, _) in &model {
                        naive.add_xml(xml).unwrap();
                    }
                }
                Op::Query(q) => check_query(&db, &naive, &model, &opts, q)?,
            }
        }

        for q in &final_queries {
            check_query(&db, &naive, &model, &opts, q)?;
        }
        // Fold whatever delta is left and demand the rebuild's bytes.
        db.compact().unwrap();
        prop_assert_eq!(db.index().unwrap().delta_len(), 0);
        check_byte_identity(&db, &opts)?;
        for q in &final_queries {
            check_query(&db, &naive, &model, &opts, q)?;
        }
        check_paged_reopen(&db, &model, &opts, &final_queries)?;
    }
}

static WAL_SEQ: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The WAL leg of the oracle: run the same maintenance interleaving
    /// on a path-bound database whose mutations commit through the
    /// write-ahead log, kill it (drop, no save) at a proptest-chosen cut
    /// point, reopen — crash recovery replays the log — and finish the
    /// interleaving. The survivor must answer every final query exactly
    /// like an uninterrupted in-memory database that saw the identical
    /// sequence. A tiny seal threshold keeps the cut landing on sealed
    /// *and* unsealed segments.
    #[test]
    fn wal_kill_and_reopen_agrees_with_uninterrupted(
        seed_docs in prop::collection::vec(doc_strategy(), 1..4),
        opts in options_strategy(),
        ops in prop::collection::vec(op_strategy(), 1..9),
        cut_sel in 0usize..16,
        final_queries in prop::collection::vec(query_strategy(), 1..3),
    ) {
        let mut wopts = opts.clone();
        wopts.wal_seal_bytes = 96;

        let mut reference = FixDatabase::in_memory();
        for xml in &seed_docs {
            reference.add_xml(xml).unwrap();
        }
        reference.build(wopts.clone()).unwrap();

        let mut path = std::env::temp_dir();
        path.push(format!(
            "fix-differential-wal-{}-{}.fixdb",
            std::process::id(),
            WAL_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(fix::storage::wal_dir(&path));
        let mut db = FixDatabase::open(&path).unwrap();
        for xml in &seed_docs {
            db.add_xml(xml).unwrap();
        }
        db.build(wopts.clone()).unwrap();
        db.save().unwrap();

        // One mutation script, two consumers; `len` tracks the shared id
        // space so Remove picks the same victim on both sides.
        let mut len = seed_docs.len();
        // `cut == ops.len()` kills *after* the whole script — the
        // recovery-only case with nothing left to apply.
        let cut = cut_sel % (ops.len() + 1);
        let mut db = Some(db);
        for (i, op) in ops.iter().enumerate() {
            if i == cut {
                drop(db.take()); // the kill: no save since the checkpoint
                db = Some(FixDatabase::open(&path).unwrap());
                prop_assert_eq!(
                    db.as_ref().unwrap().len(),
                    reference.len(),
                    "crash recovery lost or invented documents at cut {}", cut
                );
            }
            let w = db.as_mut().unwrap();
            match op {
                Op::Add(xml) => {
                    reference.add_xml(xml).unwrap();
                    w.add_xml(xml).unwrap();
                    len += 1;
                }
                Op::Remove(i) => {
                    if len > 0 {
                        let id = *i as usize % len;
                        reference.remove_document(DocId(id as u32)).unwrap();
                        w.remove_document(DocId(id as u32)).unwrap();
                    }
                }
                Op::Compact => {
                    reference.compact().unwrap();
                    w.compact().unwrap();
                }
                Op::Vacuum => {
                    reference.vacuum().unwrap();
                    w.vacuum().unwrap();
                    len = reference.len();
                }
                // Queries are checked at the end; mid-stream they would
                // only repeat the main oracle's work.
                Op::Query(_) => {}
            }
        }
        if cut >= ops.len() {
            drop(db.take());
            db = Some(FixDatabase::open(&path).unwrap());
        }
        let db = db.unwrap();

        prop_assert_eq!(db.len(), reference.len(), "final document count diverged");
        for q in &final_queries {
            match (db.query(q), reference.query(q)) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.results, &b.results, "WAL survivor vs uninterrupted on {}", q);
                }
                (Err(_), Err(_)) => {}
                (a, b) => prop_assert!(
                    false,
                    "outcome disagreement on {}: survivor {:?}, uninterrupted {:?}",
                    q,
                    a.map(|o| o.results.len()),
                    b.map(|o| o.results.len())
                ),
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_dir_all(fix::storage::wal_dir(&path));
    }
}

static FAULT_SEQ: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The read-fault leg of the oracle: save the collection through the
    /// paged format, then sweep an injected physical-read fault (I/O
    /// error, short read, torn bytes) over the open and query paths. The
    /// contract under fault is exactly two outcomes — the *correct*
    /// answer (the fault landed on a read the operation never made, or
    /// was detected and the page re-read is irrelevant) or a structured
    /// `FixError` — never a panic, never a wrong answer. Wrong answers
    /// are checked against an uninterrupted in-memory database over the
    /// same documents.
    #[test]
    fn read_faults_never_panic_or_lie(
        seed_docs in prop::collection::vec(doc_strategy(), 2..5),
        opts in options_strategy(),
        queries in prop::collection::vec(query_strategy(), 2..4),
        nth in 0usize..24,
        kind_sel in 0u8..3,
    ) {
        use fix::storage::{set_read_fault, ReadFaultKind, ReadFaultPlan};

        let model: Vec<(String, bool)> =
            seed_docs.iter().map(|x| (x.clone(), true)).collect();
        let truth = rebuild(&model, &opts);

        let mut popts = opts.clone();
        popts.storage = StorageMode::Paged;
        popts.pool_pages = 8;
        let mut on_disk = rebuild(&model, &popts);
        let mut path = std::env::temp_dir();
        path.push(format!(
            "fix-differential-fault-{}-{}.fix",
            std::process::id(),
            FAULT_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        on_disk.save_as(&path).unwrap();

        let kind = match kind_sel {
            0 => ReadFaultKind::Error,
            1 => ReadFaultKind::Short,
            _ => ReadFaultKind::Torn { keep: 7 },
        };

        // Leg 1: the fault lands somewhere in open (superblock, metadata
        // tail, first page attaches). Open must return — Ok (fault fell
        // past the reads open performs) or a structured error.
        set_read_fault(Some(ReadFaultPlan::new(nth, kind)));
        let opened = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || FixDatabase::open(&path),
        ));
        set_read_fault(None);
        prop_assert!(opened.is_ok(), "open panicked under read fault {:?} at {}", kind, nth);

        // Leg 2: clean open, then the fault lands mid-query on a
        // demand-read page. Either the exact in-memory answer or a
        // structured error (the faulted page may stay quarantined for
        // the rest of the loop — subsequent structured errors are part
        // of the contract, silent misses are not).
        let reopened = FixDatabase::open(&path).unwrap();
        for q in &queries {
            set_read_fault(Some(ReadFaultPlan::new(nth, kind)));
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(
                || reopened.query(q),
            ));
            set_read_fault(None);
            let res = match res {
                Ok(r) => r,
                Err(_) => {
                    prop_assert!(false, "query {} panicked under read fault {:?} at {}", q, kind, nth);
                    unreachable!()
                }
            };
            match (res, truth.query(q)) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(
                        &a.results, &b.results,
                        "fault survivor answered {} wrong (fault {:?} at {})", q, kind, nth
                    );
                }
                // Structured failure under injection is allowed; so are
                // queries both sides reject (e.g. depth coverage).
                (Err(_), _) => {}
                (Ok(_), Err(_)) => prop_assert!(
                    false,
                    "survivor answered {} but the oracle rejects it", q
                ),
            }
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// The stale-index footgun, pinned deterministically: a database mutated
/// after `build()` must serve the *merged* truth — new documents appear
/// in answers immediately, removed ones vanish immediately, with no
/// rebuild and no error. Guards against the failure mode where
/// post-build mutations silently don't reach queries until a compaction.
#[test]
fn mutated_database_never_serves_stale_answers() {
    for clustered in [false, true] {
        let opts = FixOptions::builder()
            .clustered(clustered)
            .compact_ratio(0.0)
            .build();
        let mut db = FixDatabase::in_memory();
        db.add_xml("<p0><p1><p2/></p1></p0>").unwrap();
        db.build(opts).unwrap();

        // Insert: visible in the very next query, straight from the delta.
        let added = db.add_xml("<p0><p1><p2/></p1><p1/></p0>").unwrap();
        assert_eq!(
            db.index().unwrap().delta_len(),
            1,
            "insert must land in the delta"
        );
        let out = db.query("//p1/p2").unwrap();
        assert_eq!(
            out.results.iter().filter(|(d, _)| *d == added).count(),
            1,
            "clustered={clustered}: freshly added document missing from results"
        );
        assert_eq!(out.results.len(), 2);

        // Remove: gone from the very next query, no vacuum needed.
        db.remove_document(added).unwrap();
        let out = db.query("//p1/p2").unwrap();
        assert!(
            out.results.iter().all(|(d, _)| *d != added),
            "clustered={clustered}: tombstoned document still answered"
        );
        assert_eq!(out.results.len(), 1);

        // And the delta still holds the (masked) entry until compaction.
        assert_eq!(db.index().unwrap().delta_len(), 1);
        db.compact().unwrap();
        assert_eq!(db.index().unwrap().delta_len(), 0);
        assert_eq!(db.query("//p1/p2").unwrap().results.len(), 1);
    }
}
