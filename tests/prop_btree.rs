//! Model-based property tests: the disk B+-tree must behave exactly like
//! `std::collections::BTreeMap` under arbitrary insert / point / range
//! workloads, and its structural invariants must hold throughout.

use std::collections::BTreeMap;

use proptest::prelude::*;

use fix::btree::BTree;
use fix::storage::PageSpace;

fn key(v: u32) -> Vec<u8> {
    let mut k = vec![0u8; 12];
    k[4..8].copy_from_slice(&v.to_be_bytes());
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_btreemap_model(
        inserts in prop::collection::vec((0u32..5000, 0u64..1_000_000), 1..600),
        probes in prop::collection::vec(0u32..5000, 1..40),
        ranges in prop::collection::vec((0u32..5000, 0u32..5000), 1..20),
    ) {
        let mut tree = BTree::new(PageSpace::in_memory(256), 12);
        // The model maps a key to the list of values (duplicates allowed).
        let mut model: BTreeMap<Vec<u8>, Vec<u64>> = BTreeMap::new();
        for (k, v) in &inserts {
            tree.insert(&key(*k), *v);
            model.entry(key(*k)).or_default().push(*v);
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len() as usize, inserts.len());

        // Point lookups return the first stored value for the key.
        for p in &probes {
            let got = tree.get(&key(*p));
            let want = model.get(&key(*p)).map(|vs| vs[0]);
            // `get` returns *a* value for the key; with duplicates any of
            // them is acceptable.
            match (got, model.get(&key(*p))) {
                (None, None) => {}
                (Some(g), Some(vs)) => prop_assert!(vs.contains(&g)),
                (g, w) => prop_assert!(false, "get({p}) = {g:?}, model = {w:?}"),
            }
            let _ = want;
        }

        // Range scans return exactly the model's entries, in key order.
        for (a, b) in &ranges {
            let (lo, hi) = (*a.min(b), *a.max(b));
            let got: Vec<(Vec<u8>, u64)> = tree.range(&key(lo), Some(&key(hi))).collect();
            let mut want: Vec<(Vec<u8>, u64)> = model
                .range(key(lo)..key(hi))
                .flat_map(|(k, vs)| vs.iter().map(move |&v| (k.clone(), v)))
                .collect();
            // Within one key, insertion order is preserved by the tree and
            // by the model's Vec, so plain equality is the right check.
            want.sort_by(|x, y| x.0.cmp(&y.0));
            prop_assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(&g.0, &w.0);
            }
        }

        // A full scan is sorted and complete.
        let all: Vec<(Vec<u8>, u64)> = tree.iter().collect();
        prop_assert_eq!(all.len(), inserts.len());
        for w in all.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
        }
    }

    #[test]
    fn order_preserving_f64_codec(
        mut vals in prop::collection::vec(-1e12f64..1e12, 2..200),
    ) {
        use fix::btree::{decode_f64, encode_f64};
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        for w in vals.windows(2) {
            prop_assert!(encode_f64(w[0]) < encode_f64(w[1]));
        }
        for &v in &vals {
            prop_assert_eq!(decode_f64(encode_f64(v)), v);
        }
    }
}
