//! Property tests for the index itself: on arbitrary random collections
//! and arbitrary twig queries, FIX (both feature modes where soundness is
//! claimed) returns exactly the navigational baseline's results — the
//! no-false-negative guarantee of Theorems 3 & 5, end to end.

use proptest::prelude::*;

use fix::core::{Collection, DocId, FixIndex, FixOptions};
use fix::exec::eval_path;
use fix::xpath::{parse_path, PathExpr};

/// Random document XML over a 6-label alphabet with nesting (labels repeat
/// across levels, exercising the recursive corner cases) and occasional
/// text values drawn from a 3-value pool.
fn doc_strategy() -> impl Strategy<Value = String> {
    #[derive(Debug, Clone)]
    enum T {
        Leaf(u8),
        Text(u8, u8),
        Node(u8, Vec<T>),
    }
    fn render(t: &T, out: &mut String) {
        match t {
            T::Leaf(l) => out.push_str(&format!("<l{l}/>")),
            T::Text(l, v) => out.push_str(&format!("<l{l}>v{v}</l{l}>")),
            T::Node(l, c) => {
                out.push_str(&format!("<l{l}>"));
                for x in c {
                    render(x, out);
                }
                out.push_str(&format!("</l{l}>"));
            }
        }
    }
    let leaf = prop_oneof![
        (0u8..6).prop_map(T::Leaf),
        (0u8..6, 0u8..3).prop_map(|(l, v)| T::Text(l, v)),
    ];
    leaf.prop_recursive(5, 48, 4, |inner| {
        ((0u8..6), prop::collection::vec(inner, 1..4)).prop_map(|(l, c)| T::Node(l, c))
    })
    .prop_map(|t| {
        let mut s = String::from("<l0>");
        render(&t, &mut s);
        s.push_str("</l0>");
        s
    })
}

/// Random twig query string over the same alphabet, with occasional
/// value-equality predicates (half of which target values that exist).
fn query_strategy() -> impl Strategy<Value = String> {
    let step = (0u8..6).prop_map(|l| format!("l{l}"));
    let pred =
        (0u8..6, prop::option::of(0u8..6), prop::option::of(0u8..4)).prop_map(|(a, b, v)| {
            match (b, v) {
                (Some(b), _) => format!("[l{a}/l{b}]"),
                (None, Some(v)) => format!("[l{a}=\"v{v}\"]"),
                (None, None) => format!("[l{a}]"),
            }
        });
    (
        prop::bool::ANY,
        prop::collection::vec((step, prop::option::of(pred)), 1..4),
    )
        .prop_map(|(rooted, steps)| {
            let mut q = String::new();
            for (i, (name, pred)) in steps.iter().enumerate() {
                q.push_str(if i == 0 && !rooted { "//" } else { "/" });
                q.push_str(name);
                if let Some(p) = pred {
                    q.push_str(p);
                }
            }
            q
        })
}

fn baseline(coll: &Collection, path: &PathExpr) -> Vec<(DocId, u32)> {
    let mut out = Vec::new();
    for (id, d) in coll.iter() {
        for n in eval_path(d, &coll.labels, path) {
            out.push((id, n.0));
        }
    }
    out.sort_unstable();
    out
}

fn check(docs: &[String], query: &str, opts: FixOptions) -> Result<(), TestCaseError> {
    let mut coll = Collection::new();
    for d in docs {
        coll.add_xml(d).unwrap();
    }
    let path = parse_path(query).unwrap();
    let idx = FixIndex::build(&mut coll, opts);
    let out = match idx.query_path(&coll, &path) {
        Ok(o) => o,
        Err(fix::core::QueryError::NotCovered { .. }) => return Ok(()),
        Err(e) => panic!("{e}"),
    };
    let got: Vec<(DocId, u32)> = out.results.iter().map(|&(d, n)| (d, n.0)).collect();
    let want = baseline(&coll, &path);
    prop_assert_eq!(got, want, "query {} over {} docs", query, docs.len());
    prop_assert!(out.metrics.candidates >= out.metrics.producing);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn collection_mode_has_no_false_negatives(
        docs in prop::collection::vec(doc_strategy(), 1..6),
        query in query_strategy(),
    ) {
        check(&docs, &query, FixOptions::collection())?;
    }

    #[test]
    fn large_document_mode_has_no_false_negatives(
        doc in doc_strategy(),
        query in query_strategy(),
    ) {
        check(std::slice::from_ref(&doc), &query, FixOptions::large_document(3))?;
    }

    #[test]
    fn clustered_mode_agrees(
        docs in prop::collection::vec(doc_strategy(), 1..4),
        query in query_strategy(),
    ) {
        check(&docs, &query, FixOptions::collection().clustered())?;
    }

    #[test]
    fn extended_features_stay_sound(
        doc in doc_strategy(),
        query in query_strategy(),
    ) {
        let mut opts = FixOptions::large_document(3);
        opts.extended_features = true;
        check(std::slice::from_ref(&doc), &query, opts)?;
    }

    #[test]
    fn value_index_has_no_false_negatives(
        doc in doc_strategy(),
        query in query_strategy(),
        beta in 1u32..16,
    ) {
        // Small β forces hash collisions — which may only ever add false
        // positives.
        check(
            std::slice::from_ref(&doc),
            &query,
            FixOptions::large_document(3).with_values(beta).with_edge_bloom(),
        )?;
    }

    #[test]
    fn edge_bloom_stays_sound(
        doc in doc_strategy(),
        query in query_strategy(),
    ) {
        // The edge-fingerprint filter must never lose results — it is
        // sound even for non-injective matches.
        check(
            std::slice::from_ref(&doc),
            &query,
            FixOptions::large_document(3).with_edge_bloom(),
        )?;
        check(&[doc], &query, FixOptions::collection().with_edge_bloom())?;
    }
}
