//! Property tests for the spectral machinery: eigensolver identities,
//! spectrum symmetry for skew matrices, and Theorem 3's containment on
//! actual subtree relationships.

use proptest::prelude::*;

use fix::bisim::{build_document_graph, subpattern};
use fix::spectral::{
    jacobi_eigenvalues, spectrum_of_magnitude, spectrum_of_skew, EdgeEncoder, EigOptions,
    FeatureExtractor, SkewMatrix,
};
use fix::xml::{parse_document, LabelTable};

/// Random XML over a small alphabet (recursive labels included).
fn doc_strategy() -> impl Strategy<Value = String> {
    #[derive(Debug, Clone)]
    enum T {
        Leaf(u8),
        Node(u8, Vec<T>),
    }
    fn render(t: &T, out: &mut String) {
        match t {
            T::Leaf(l) => out.push_str(&format!("<t{l}/>")),
            T::Node(l, c) => {
                out.push_str(&format!("<t{l}>"));
                for x in c {
                    render(x, out);
                }
                out.push_str(&format!("</t{l}>"));
            }
        }
    }
    let leaf = (0u8..5).prop_map(T::Leaf);
    leaf.prop_recursive(5, 40, 4, |inner| {
        ((0u8..5), prop::collection::vec(inner, 1..4)).prop_map(|(l, c)| T::Node(l, c))
    })
    .prop_map(|t| {
        let mut s = String::new();
        render(&t, &mut s);
        s
    })
}

fn sym_matrix_strategy() -> impl Strategy<Value = (Vec<f64>, usize)> {
    (2usize..8).prop_flat_map(|n| {
        prop::collection::vec(-10.0f64..10.0, n * (n + 1) / 2).prop_map(move |upper| {
            let mut a = vec![0.0; n * n];
            let mut it = upper.into_iter();
            for i in 0..n {
                for j in i..n {
                    let v = it.next().unwrap();
                    a[i * n + j] = v;
                    a[j * n + i] = v;
                }
            }
            (a, n)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn jacobi_preserves_trace_and_frobenius((a, n) in sym_matrix_strategy()) {
        let eigs = jacobi_eigenvalues(&a, n, &EigOptions::default());
        prop_assert_eq!(eigs.len(), n);
        let trace: f64 = (0..n).map(|i| a[i * n + i]).sum();
        let frob2: f64 = a.iter().map(|x| x * x).sum();
        let sum: f64 = eigs.iter().sum();
        let sq: f64 = eigs.iter().map(|x| x * x).sum();
        prop_assert!((trace - sum).abs() < 1e-7 * (1.0 + trace.abs()), "{} vs {}", trace, sum);
        prop_assert!((frob2 - sq).abs() < 1e-7 * (1.0 + frob2), "{} vs {}", frob2, sq);
        // Sorted descending.
        for w in eigs.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn skew_spectrum_is_symmetric_and_bounded(doc in doc_strategy()) {
        let mut lt = LabelTable::new();
        let d = parse_document(&doc, &mut lt).unwrap();
        let (g, info) = build_document_graph(&d);
        let mut enc = EdgeEncoder::new();
        let m = SkewMatrix::from_pattern_interning(&g, info.root, &mut enc);
        let s = spectrum_of_skew(&m, &EigOptions::default());
        prop_assert_eq!(s.len(), m.dim());
        let norm = s.first().copied().unwrap_or(0.0).max(1.0);
        for (i, &v) in s.iter().enumerate() {
            let mirror = s[s.len() - 1 - i];
            prop_assert!((v + mirror).abs() < 1e-6 * norm, "{:?}", s);
        }
        // σ_max of the skew matrix is bounded by the magnitude Perron root.
        let mag = spectrum_of_magnitude(&m, &EigOptions::default());
        prop_assert!(s[0] <= mag[0] + 1e-6 * norm, "{} > {}", s[0], mag[0]);
    }

    // NOTE (reproduction finding, see DESIGN.md §2): a depth-`k` truncated
    // pattern is a *quotient* of the full pattern (the traveler merges
    // vertices that differ only below the cut), not an induced subgraph —
    // so "full contains truncated" does NOT hold in general and the index
    // never relies on it. The property the index *does* rely on is below:
    // a matching query pattern's features are contained in its anchor's
    // entry-pattern features.

    #[test]
    fn matching_query_features_are_contained_in_entry_features(
        doc in doc_strategy(),
        depth in 2usize..5,
        pick in any::<prop::sample::Index>(),
    ) {
        use fix::xml::NodeId;
        use fix::xpath::{parse_path, TwigQuery};
        use fix::bisim::{query_pattern, BisimBuilder, BisimGraph};

        let mut lt = LabelTable::new();
        let d = parse_document(&doc, &mut lt).unwrap();
        // Sample an anchor element and read a child chain off it as the
        // query spine (so the query provably matches at the anchor).
        let nodes: Vec<NodeId> = d.descendants_or_self(d.root()).collect();
        let anchor = nodes[pick.index(nodes.len())];
        let mut spine = vec![anchor];
        let mut cur = anchor;
        while spine.len() < depth {
            match d.element_children(cur).next() {
                Some(c) => {
                    spine.push(c);
                    cur = c;
                }
                None => break,
            }
        }
        let q: String = spine
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let name = lt.resolve(d.label(n).unwrap());
                if i == 0 { format!("//{name}") } else { format!("/{name}") }
            })
            .collect();
        let path = parse_path(&q).unwrap();
        let twig = TwigQuery::from_path(&path, &lt).unwrap();
        let (qpat, qinfo) = query_pattern(&twig);
        // Queries with duplicate labels can match non-injectively; the
        // index handles them with the root-label-only guard, so skip them
        // here (the end-to-end property tests cover that path).
        prop_assume!(!qpat.has_duplicate_labels());

        // Build the anchor's depth-`depth` entry pattern the same way the
        // index builder does.
        let mut g = BisimGraph::new();
        let info = BisimBuilder::new(&mut g)
            .record_all_elements()
            .run(&mut fix::xml::TreeEventSource::whole(&d));
        let anchor_vertex = info
            .closed
            .iter()
            .find(|&&(_, p)| p == anchor.0 as u64)
            .map(|&(v, _)| v)
            .unwrap();
        let (entry_pat, entry_info) = subpattern(&g, anchor_vertex, depth);

        let fx = FeatureExtractor::default(); // SymmetricNorm
        let mut enc = EdgeEncoder::new();
        let (entry_f, _) = fx.extract_interning(&entry_pat, entry_info.root, &mut enc);
        let qf = fx
            .extract_query(&qpat, qinfo.root, &enc)
            .expect("query edges exist in the entry pattern");
        prop_assert!(
            entry_f.contains(&qf),
            "query {} features {:?} not contained in entry {:?}",
            q, qf, entry_f
        );
    }
}
