//! Persistence property test: for arbitrary collections and index
//! configurations, save → open must reproduce identical query outcomes
//! (results *and* metrics), including tombstones. Exercises the
//! `FixDatabase` facade end to end.

use proptest::prelude::*;

use fix::core::DocId;
use fix::{FixDatabase, FixOptions};

fn doc_strategy() -> impl Strategy<Value = String> {
    #[derive(Debug, Clone)]
    enum T {
        Leaf(u8),
        Text(u8, u8),
        Node(u8, Vec<T>),
    }
    fn render(t: &T, out: &mut String) {
        match t {
            T::Leaf(l) => out.push_str(&format!("<p{l}/>")),
            T::Text(l, v) => out.push_str(&format!("<p{l}>w{v}</p{l}>")),
            T::Node(l, c) => {
                out.push_str(&format!("<p{l}>"));
                for x in c {
                    render(x, out);
                }
                out.push_str(&format!("</p{l}>"));
            }
        }
    }
    let leaf = prop_oneof![
        (0u8..5).prop_map(T::Leaf),
        (0u8..5, 0u8..3).prop_map(|(l, v)| T::Text(l, v)),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        ((0u8..5), prop::collection::vec(inner, 1..4)).prop_map(|(l, c)| T::Node(l, c))
    })
    .prop_map(|t| {
        let mut s = String::from("<p0>");
        render(&t, &mut s);
        s.push_str("</p0>");
        s
    })
}

fn options_strategy() -> impl Strategy<Value = FixOptions> {
    (
        0usize..4,
        prop::bool::ANY,
        prop::option::of(1u32..16),
        prop::bool::ANY,
        1usize..5,
    )
        .prop_map(|(depth, clustered, beta, bloom, threads)| {
            let mut b = FixOptions::builder()
                .depth_limit(depth)
                .clustered(clustered)
                .edge_bloom(bloom)
                .threads(threads);
            if let Some(beta) = beta {
                b = b.values(beta);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn save_open_is_an_identity_on_outcomes(
        docs in prop::collection::vec(doc_strategy(), 1..5),
        opts in options_strategy(),
        remove_first in prop::bool::ANY,
        queries in prop::collection::vec((0u8..5, 0u8..5), 1..4),
    ) {
        let dir = std::env::temp_dir().join(format!("fix-prop-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case-{:x}.fixdb", rand_suffix(&docs)));

        let clustered = opts.clustered;
        let mut db = FixDatabase::in_memory();
        for d in &docs {
            db.add_xml(d).unwrap();
        }
        db.build(opts).unwrap();
        if remove_first && !clustered {
            db.remove_document(DocId(0)).unwrap();
        }
        db.save_as(&path).unwrap();
        let loaded = FixDatabase::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(loaded.len(), db.len());
        let (idx, lidx) = (db.index().unwrap(), loaded.index().unwrap());
        prop_assert_eq!(lidx.entry_count(), idx.entry_count());
        for (a, b) in &queries {
            let q = format!("//p{a}/p{b}");
            // Depth-1 indexes legitimately reject two-step queries; the
            // loaded index must reject them identically.
            match (idx.query(db.collection(), &q), lidx.query(loaded.collection(), &q)) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(&x.results, &y.results, "results differ on {}", q);
                    prop_assert_eq!(x.metrics, y.metrics, "metrics differ on {}", q);
                }
                (Err(ex), Err(ey)) => prop_assert_eq!(ex, ey, "errors differ on {}", q),
                (x, y) => prop_assert!(false, "coverage disagreement on {}: {:?} vs {:?}", q, x.is_ok(), y.is_ok()),
            }
        }
    }
}

/// A cheap deterministic suffix so parallel proptest cases do not clobber
/// each other's files.
fn rand_suffix(docs: &[String]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for d in docs {
        for b in d.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}
