//! Persistence property test: for arbitrary collections and index
//! configurations, save → load must reproduce identical query outcomes
//! (results *and* metrics), including tombstones.

use proptest::prelude::*;

use fix::core::{load_database, save_database, Collection, DocId, FixIndex, FixOptions};

fn doc_strategy() -> impl Strategy<Value = String> {
    #[derive(Debug, Clone)]
    enum T {
        Leaf(u8),
        Text(u8, u8),
        Node(u8, Vec<T>),
    }
    fn render(t: &T, out: &mut String) {
        match t {
            T::Leaf(l) => out.push_str(&format!("<p{l}/>")),
            T::Text(l, v) => out.push_str(&format!("<p{l}>w{v}</p{l}>")),
            T::Node(l, c) => {
                out.push_str(&format!("<p{l}>"));
                for x in c {
                    render(x, out);
                }
                out.push_str(&format!("</p{l}>"));
            }
        }
    }
    let leaf = prop_oneof![
        (0u8..5).prop_map(T::Leaf),
        (0u8..5, 0u8..3).prop_map(|(l, v)| T::Text(l, v)),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        ((0u8..5), prop::collection::vec(inner, 1..4)).prop_map(|(l, c)| T::Node(l, c))
    })
    .prop_map(|t| {
        let mut s = String::from("<p0>");
        render(&t, &mut s);
        s.push_str("</p0>");
        s
    })
}

fn options_strategy() -> impl Strategy<Value = FixOptions> {
    (
        0usize..4,
        prop::bool::ANY,
        prop::option::of(1u32..16),
        prop::bool::ANY,
    )
        .prop_map(|(depth, clustered, beta, bloom)| {
            let mut o = if depth == 0 {
                FixOptions::collection()
            } else {
                FixOptions::large_document(depth)
            };
            o.clustered = clustered;
            o.value_beta = beta;
            o.edge_bloom = bloom;
            o
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn save_load_is_an_identity_on_outcomes(
        docs in prop::collection::vec(doc_strategy(), 1..5),
        opts in options_strategy(),
        remove_first in prop::bool::ANY,
        queries in prop::collection::vec((0u8..5, 0u8..5), 1..4),
    ) {
        let dir = std::env::temp_dir().join(format!("fix-prop-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case-{:x}.fixdb", rand_suffix(&docs)));

        let clustered = opts.clustered;
        let mut coll = Collection::new();
        for d in &docs {
            coll.add_xml(d).unwrap();
        }
        let mut idx = FixIndex::build(&mut coll, opts);
        if remove_first && !clustered {
            idx.remove_document(DocId(0));
        }
        save_database(&path, &coll, &idx).unwrap();
        let (lcoll, lidx) = load_database(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(lcoll.len(), coll.len());
        prop_assert_eq!(lidx.entry_count(), idx.entry_count());
        for (a, b) in &queries {
            let q = format!("//p{a}/p{b}");
            // Depth-1 indexes legitimately reject two-step queries; the
            // loaded index must reject them identically.
            match (idx.query(&coll, &q), lidx.query(&lcoll, &q)) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(&x.results, &y.results, "results differ on {}", q);
                    prop_assert_eq!(x.metrics, y.metrics, "metrics differ on {}", q);
                }
                (Err(ex), Err(ey)) => prop_assert_eq!(ex, ey, "errors differ on {}", q),
                (x, y) => prop_assert!(false, "coverage disagreement on {}: {:?} vs {:?}", q, x.is_ok(), y.is_ok()),
            }
        }
    }
}

/// A cheap deterministic suffix so parallel proptest cases do not clobber
/// each other's files.
fn rand_suffix(docs: &[String]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for d in docs {
        for b in d.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}
