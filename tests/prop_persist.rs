//! Persistence property tests: for arbitrary collections and index
//! configurations, save → open must reproduce identical query outcomes
//! (results *and* metrics), including tombstones and the incremental
//! delta run; arbitrarily corrupted files (truncations, bit flips) must
//! be *detected* — a structured `FixError::Corrupt`, never a panic or a
//! silent wrong answer — and a save interrupted at every write boundary
//! (the crash matrix, swept through the optional delta frame) must leave
//! the previous database byte-for-byte intact. Exercises the
//! `FixDatabase` facade and the fault-injection harness end to end.

use proptest::prelude::*;

use fix::core::{Collection, DocId, FixIndex};
use fix::storage::{FaultKind, FaultPlan};
use fix::{FixDatabase, FixError, FixOptions};

fn doc_strategy() -> impl Strategy<Value = String> {
    #[derive(Debug, Clone)]
    enum T {
        Leaf(u8),
        Text(u8, u8),
        Node(u8, Vec<T>),
    }
    fn render(t: &T, out: &mut String) {
        match t {
            T::Leaf(l) => out.push_str(&format!("<p{l}/>")),
            T::Text(l, v) => out.push_str(&format!("<p{l}>w{v}</p{l}>")),
            T::Node(l, c) => {
                out.push_str(&format!("<p{l}>"));
                for x in c {
                    render(x, out);
                }
                out.push_str(&format!("</p{l}>"));
            }
        }
    }
    let leaf = prop_oneof![
        (0u8..5).prop_map(T::Leaf),
        (0u8..5, 0u8..3).prop_map(|(l, v)| T::Text(l, v)),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        ((0u8..5), prop::collection::vec(inner, 1..4)).prop_map(|(l, c)| T::Node(l, c))
    })
    .prop_map(|t| {
        let mut s = String::from("<p0>");
        render(&t, &mut s);
        s.push_str("</p0>");
        s
    })
}

fn options_strategy() -> impl Strategy<Value = FixOptions> {
    (
        0usize..4,
        prop::bool::ANY,
        prop::option::of(1u32..16),
        prop::bool::ANY,
        1usize..5,
    )
        .prop_map(|(depth, clustered, beta, bloom, threads)| {
            let mut b = FixOptions::builder()
                .depth_limit(depth)
                .clustered(clustered)
                .edge_bloom(bloom)
                .threads(threads)
                // Explicit compaction only, so post-build inserts stay in
                // the delta run and the save path writes the delta frame.
                .compact_ratio(0.0);
            if let Some(beta) = beta {
                b = b.values(beta);
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn save_open_is_an_identity_on_outcomes(
        docs in prop::collection::vec(doc_strategy(), 1..5),
        delta_docs in prop::collection::vec(doc_strategy(), 0..3),
        opts in options_strategy(),
        remove_first in prop::bool::ANY,
        queries in prop::collection::vec((0u8..5, 0u8..5), 1..4),
    ) {
        let dir = std::env::temp_dir().join(format!("fix-prop-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case-{:x}.fixdb", rand_suffix(&docs)));

        let clustered = opts.clustered;
        let mut db = FixDatabase::in_memory();
        for d in &docs {
            db.add_xml(d).unwrap();
        }
        db.build(opts).unwrap();
        if remove_first && !clustered {
            db.remove_document(DocId(0)).unwrap();
        }
        // Post-build inserts land in the delta run (compact_ratio 0.0
        // keeps them there), so the save carries a delta frame too.
        for d in &delta_docs {
            db.add_xml(d).unwrap();
        }
        db.save_as(&path).unwrap();
        let loaded = FixDatabase::open(&path).unwrap();
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(loaded.len(), db.len());
        let (idx, lidx) = (db.index().unwrap(), loaded.index().unwrap());
        prop_assert_eq!(lidx.entry_count(), idx.entry_count());
        prop_assert_eq!(lidx.delta_len(), idx.delta_len(), "delta run must round-trip");
        for (a, b) in &queries {
            let q = format!("//p{a}/p{b}");
            // Depth-1 indexes legitimately reject two-step queries; the
            // loaded index must reject them identically.
            match (idx.query(db.collection(), &q), lidx.query(loaded.collection(), &q)) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(&x.results, &y.results, "results differ on {}", q);
                    prop_assert_eq!(x.metrics, y.metrics, "metrics differ on {}", q);
                }
                (Err(ex), Err(ey)) => prop_assert_eq!(ex, ey, "errors differ on {}", q),
                (x, y) => prop_assert!(false, "coverage disagreement on {}: {:?} vs {:?}", q, x.is_ok(), y.is_ok()),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Corruption fuzz: random truncations and bit flips over a valid
    /// database file either leave it byte-identical (flips that cancel)
    /// or make the load fail with `FixError::Corrupt` — never a panic,
    /// never an unbounded allocation, never a silently different database.
    #[test]
    fn corrupted_files_are_always_detected(
        docs in prop::collection::vec(doc_strategy(), 1..4),
        delta_docs in prop::collection::vec(doc_strategy(), 0..2),
        opts in options_strategy(),
        flips in prop::collection::vec((0.0f64..1.0, 0u8..8), 1..4),
        truncate in prop::option::of(0.0f64..1.0),
    ) {
        let dir = std::env::temp_dir().join(format!("fix-prop-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("case-{:x}.fixdb", rand_suffix(&docs)));

        let mut db = FixDatabase::in_memory();
        for d in &docs {
            db.add_xml(d).unwrap();
        }
        db.build(opts).unwrap();
        // Delta-bearing saves put the optional delta frame (and its
        // checksum) under the same corruption fuzz as the base sections.
        for d in &delta_docs {
            db.add_xml(d).unwrap();
        }
        db.save_as(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        let mut bad = good.clone();
        if let Some(t) = truncate {
            let keep = (bad.len() as f64 * t) as usize;
            bad.truncate(keep);
        } else {
            for (fpos, bit) in &flips {
                let i = ((good.len() - 1) as f64 * fpos) as usize;
                bad[i] ^= 1 << bit;
            }
        }
        std::fs::write(&path, &bad).unwrap();
        let outcome = FixDatabase::open(&path);
        std::fs::remove_file(&path).ok();
        if bad == good {
            prop_assert!(outcome.is_ok(), "pristine bytes must load");
        } else {
            match outcome {
                Err(FixError::Corrupt { section, detail }) => {
                    prop_assert!(!section.is_empty() && !detail.is_empty());
                }
                Err(e) => prop_assert!(false, "corruption surfaced as a non-Corrupt error: {e}"),
                Ok(_) => prop_assert!(false, "corruption went undetected"),
            }
        }
    }
}

/// The crash matrix: interrupt a save at *every* write boundary, in every
/// failure mode the fault harness models (outright error, torn write,
/// writes silently lost until fsync). After each interrupted save the
/// previous database must still be on disk byte-for-byte, loadable, and
/// free of stray temp files.
#[test]
fn crash_matrix_every_boundary_leaves_previous_version_loadable() {
    let dir = std::env::temp_dir().join(format!("fix-crash-matrix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.fixdb");

    let mut coll1 = Collection::new();
    coll1.add_xml("<r><a><b/></a></r>").unwrap();
    let idx1 = FixIndex::build(&mut coll1, FixOptions::collection());
    fix::core::save_with_faults(&path, &coll1, &idx1, None).unwrap();
    let before = std::fs::read(&path).unwrap();

    let mut coll2 = Collection::new();
    coll2.add_xml("<r><c><d/></c></r>").unwrap();
    coll2.add_xml("<r><e/></r>").unwrap();
    let mut idx2 = FixIndex::build(
        &mut coll2,
        FixOptions::builder().depth_limit(2).clustered(true).build(),
    );
    // Post-build maintenance state — a delta insert and a tombstone — so
    // the boundary sweep also walks the optional delta frame's writes.
    idx2.insert_xml(&mut coll2, "<r><c><f/></c></r>").unwrap();
    idx2.remove_document(DocId(0));
    assert!(
        idx2.delta_len() > 0,
        "crash matrix needs a delta frame to sweep"
    );

    for kind in [
        FaultKind::Error,
        FaultKind::Torn { keep: 3 },
        FaultKind::Truncate,
    ] {
        let mut boundaries = None;
        for nth in 0.. {
            let result =
                fix::core::save_with_faults(&path, &coll2, &idx2, Some(FaultPlan::new(nth, kind)));
            if result.is_ok() {
                // The fault landed beyond the last write: the sweep for
                // this kind is complete. Restore the old version for the
                // next kind.
                boundaries = Some(nth);
                std::fs::write(&path, &before).unwrap();
                break;
            }
            assert_eq!(
                std::fs::read(&path).unwrap(),
                before,
                "{kind:?} at boundary {nth} must leave the previous file byte-identical"
            );
            let db = FixDatabase::open(&path).unwrap_or_else(|e| {
                panic!("{kind:?} at boundary {nth}: previous version unloadable: {e}")
            });
            assert_eq!(db.len(), 1, "{kind:?} at boundary {nth}: wrong content");
            let strays: Vec<_> = std::fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().contains(".tmp"))
                .collect();
            assert!(
                strays.is_empty(),
                "{kind:?} at boundary {nth} left temp files: {strays:?}"
            );
        }
        let boundaries = boundaries.unwrap();
        assert!(
            boundaries > 10,
            "expected a real multi-write sweep, saw only {boundaries} boundaries"
        );
    }

    // With no fault injected the new version replaces the old atomically,
    // maintenance state included.
    fix::core::save_with_faults(&path, &coll2, &idx2, None).unwrap();
    let db = FixDatabase::open(&path).unwrap();
    assert_eq!(db.len(), 3);
    assert!(db.index().unwrap().options().clustered);
    assert_eq!(db.index().unwrap().delta_len(), idx2.delta_len());
    std::fs::remove_file(&path).ok();
}

/// The WAL crash matrix: inject a fault at *every* log-file write
/// boundary — record appends, segment headers, seals forced by a tiny
/// seal threshold, and (for `Truncate`) the fsync that discovers lost
/// writes — in every failure mode the harness models. Durability is
/// `Sync`, so each fault fails exactly the batch it lands in; everything
/// committed before it, and everything after (the write path checkpoints
/// and re-engages a fresh log), must survive a kill-and-reopen.
#[test]
fn wal_crash_matrix_every_boundary_keeps_the_committed_prefix() {
    use fix::storage::wal_dir;
    use fix::{Durability, WriteBatch};

    let dir = std::env::temp_dir().join(format!("fix-wal-matrix-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let opts = || {
        FixOptions::builder()
            .compact_ratio(0.0)
            .durability(Durability::Sync)
            .wal_seal_bytes(48) // tiny: the sweep crosses seal boundaries
            .build()
    };
    let base = ["<p0><p1><p2/></p1></p0>", "<p0><p3/><p1/></p0>"];
    // Five literal batches, each valid whichever single one of them the
    // fault knocks out: at most one batch fails per sweep step (the
    // fault plan is consumed with the log it poisoned), so by batch 5 at
    // least one earlier add landed and `DocId(2)` names a real document.
    let script: Vec<WriteBatch> = {
        let mut s = Vec::new();
        let mut b = WriteBatch::new();
        b.add_xml("<p0><p1/></p0>");
        s.push(b);
        let mut b = WriteBatch::new();
        b.add_xml("<p0><p2><p1/></p2></p0>");
        s.push(b);
        let mut b = WriteBatch::new();
        b.remove_document(DocId(1));
        s.push(b);
        let mut b = WriteBatch::new();
        b.add_xml("<p0><p3/></p0>");
        b.add_xml("<p0><p2/><p2/></p0>");
        s.push(b);
        let mut b = WriteBatch::new();
        b.remove_document(DocId(2));
        s.push(b);
        s
    };
    let queries = ["//p1", "//p2/p1", "//p0[p3]", "//p2"];

    for (k, kind) in [
        FaultKind::Error,
        FaultKind::Torn { keep: 5 },
        FaultKind::Truncate,
    ]
    .into_iter()
    .enumerate()
    {
        let mut boundaries = None;
        for nth in 0.. {
            let path = dir.join(format!("matrix-{k}-{nth}.fixdb"));
            std::fs::remove_file(&path).ok();
            std::fs::remove_dir_all(wal_dir(&path)).ok();
            let mut db = FixDatabase::open(&path).unwrap();
            for d in base {
                db.add_xml(d).unwrap();
            }
            db.build(opts()).unwrap();
            db.save().unwrap();
            db.set_wal_fault(Some(FaultPlan::new(nth, kind)));

            // The in-memory reference sees exactly the batches that
            // committed; ids line up because both sides apply the same
            // literal ops in the same order.
            let mut reference = FixDatabase::in_memory();
            for d in base {
                reference.add_xml(d).unwrap();
            }
            reference.build(opts()).unwrap();
            let mut failures = 0;
            for batch in &script {
                match db.write(batch.clone()) {
                    Ok(_) => {
                        reference.write(batch.clone()).unwrap();
                    }
                    Err(FixError::Io(_)) => failures += 1,
                    Err(e) => panic!("{kind:?} at boundary {nth}: unexpected error {e}"),
                }
            }
            assert!(
                failures <= 1,
                "{kind:?} at boundary {nth}: one fault killed {failures} batches"
            );

            drop(db);
            let db = FixDatabase::open(&path)
                .unwrap_or_else(|e| panic!("{kind:?} at boundary {nth}: survivor unloadable: {e}"));
            assert_eq!(
                db.len(),
                reference.len(),
                "{kind:?} at boundary {nth}: document count diverged"
            );
            for q in queries {
                assert_eq!(
                    db.query(q).unwrap().results,
                    reference.query(q).unwrap().results,
                    "{kind:?} at boundary {nth}: answers diverged on {q}"
                );
            }
            std::fs::remove_file(&path).ok();
            std::fs::remove_dir_all(wal_dir(&path)).ok();

            if failures == 0 {
                // The fault landed beyond the last log write: sweep done.
                boundaries = Some(nth);
                break;
            }
        }
        let boundaries = boundaries.unwrap();
        assert!(
            boundaries >= script.len(),
            "{kind:?}: expected at least one boundary per batch, saw only {boundaries}"
        );
    }
}

/// A cheap deterministic suffix so parallel proptest cases do not clobber
/// each other's files.
fn rand_suffix(docs: &[String]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for d in docs {
        for b in d.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}
