//! End-to-end CLI test: generate a corpus, build a database file, query
//! it, inspect stats — the full `fixdb` surface a downstream user touches.

use std::path::PathBuf;
use std::process::Command;

fn fixdb() -> Command {
    Command::new(env!("CARGO_BIN_EXE_fixdb"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fixdb-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn gen_build_query_stats_round_trip() {
    let dir = workdir("roundtrip");
    let xml = dir.join("dblp.xml");
    let db = dir.join("db.fixdb");

    let out = fixdb()
        .args(["gen", "dblp", "--scale", "0.03", "--out"])
        .arg(&xml)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = fixdb()
        .args(["build"])
        .arg(&db)
        .args(["--depth-limit", "6", "--values", "32", "--bloom"])
        .arg(&xml)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("indexed 1 documents"), "{stdout}");

    let out = fixdb()
        .args(["query"])
        .arg(&db)
        .args(["//inproceedings[url]/title", "--metrics"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("results in"), "{stdout}");
    assert!(stdout.contains("metrics:"), "{stdout}");

    let out = fixdb().args(["stats"]).arg(&db).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("depth limit:       6"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_and_insert_small_collection() {
    let dir = workdir("insert");
    let a = dir.join("a.xml");
    let b = dir.join("b.xml");
    let db = dir.join("db.fixdb");
    std::fs::write(&a, "<bib><article><author/><ee/></article></bib>").unwrap();
    std::fs::write(&b, "<bib><book><author/></book></bib>").unwrap();

    let out = fixdb().args(["build"]).arg(&db).arg(&a).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = fixdb().args(["insert"]).arg(&db).arg(&b).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 documents"), "{stdout}");

    let out = fixdb()
        .args(["query"])
        .arg(&db)
        .arg("//book/author")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("1 results"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn add_compact_flow_round_trips() {
    // build → add (clustered!) → remove → query → compact → verify:
    // the incremental maintenance surface end to end.
    let dir = workdir("add-compact");
    let a = dir.join("a.xml");
    let b = dir.join("b.xml");
    let c = dir.join("c.xml");
    let db = dir.join("db.fixdb");
    std::fs::write(&a, "<bib><article><author/><ee/></article></bib>").unwrap();
    std::fs::write(&b, "<bib><book><author/></book></bib>").unwrap();
    std::fs::write(&c, "<bib><article><author/><ee/></article></bib>").unwrap();

    let out = fixdb()
        .args(["build"])
        .arg(&db)
        .arg("--clustered")
        .arg(&a)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // `add` (the `insert` alias) works on clustered databases too.
    let out = fixdb()
        .args(["add"])
        .arg(&db)
        .arg(&b)
        .arg(&c)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("3 documents"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let out = fixdb().args(["remove"]).arg(&db).arg("1").output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Merged (base + delta, tombstone-filtered) answers.
    let out = fixdb()
        .args(["query"])
        .arg(&db)
        .arg("//article[author]/ee")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("2 results"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let out = fixdb()
        .args(["query"])
        .arg(&db)
        .arg("//book/author")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("0 results"),
        "tombstoned doc leaked: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    let out = fixdb().args(["compact"]).arg(&db).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("compacted"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let out = fixdb().args(["stats"]).arg(&db).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("delta entries:     0"), "{stdout}");

    // Same answers after compaction, and the file verifies clean.
    let out = fixdb()
        .args(["query"])
        .arg(&db)
        .arg("//article[author]/ee")
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("2 results"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let out = fixdb().args(["verify"]).arg(&db).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_query_serves_and_verifies() {
    let dir = workdir("bench-query");
    let xml = dir.join("dblp.xml");
    let db = dir.join("db.fixdb");

    let out = fixdb()
        .args(["gen", "dblp", "--scale", "0.03", "--out"])
        .arg(&xml)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = fixdb().args(["build"]).arg(&db).arg(&xml).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = fixdb()
        .args(["bench-query"])
        .arg(&db)
        .args([
            "//inproceedings[url]/title",
            "//article[number]/author",
            "--threads",
            "2",
            "--repeat",
            "3",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 refinement thread(s)"), "{stdout}");
    assert!(stdout.contains("plan cache: 4 hits / 2 misses"), "{stdout}");
    assert!(
        stdout.contains("verified against the sequential path"),
        "{stdout}"
    );

    // Unservable queries surface as errors, not bogus timings.
    let out = fixdb()
        .args(["bench-query"])
        .arg(&db)
        .arg("not a path")
        .output()
        .unwrap();
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn observability_flags_round_trip() {
    let dir = workdir("observability");
    let xml = dir.join("dblp.xml");
    let db = dir.join("db.fixdb");

    let out = fixdb()
        .args(["gen", "dblp", "--scale", "0.03", "--out"])
        .arg(&xml)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = fixdb().args(["build"]).arg(&db).arg(&xml).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // --trace prints the per-stage pipeline breakdown; a cold session
    // shows a cache miss and every stage.
    let out = fixdb()
        .args(["query"])
        .arg(&db)
        .args(["//inproceedings[url]/title", "--trace"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for stage in ["cache_probe", "parse", "compile", "eigen", "scan", "refine"] {
        assert!(stdout.contains(stage), "missing {stage} in: {stdout}");
    }
    assert!(stdout.contains("miss"), "{stdout}");
    assert!(stdout.contains("total"), "{stdout}");

    // --json emits one machine-readable document with the same stages.
    let out = fixdb()
        .args(["query"])
        .arg(&db)
        .args(["//inproceedings[url]/title", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_end().starts_with('{') && stdout.trim_end().ends_with('}'));
    for key in [
        "\"trace\"",
        "\"metrics\"",
        "\"stage\":\"refine\"",
        "\"cache_hit\":false",
    ] {
        assert!(stdout.contains(key), "missing {key} in: {stdout}");
    }

    // --analyze is EXPLAIN ANALYZE: plan plus one real traced run.
    let out = fixdb()
        .args(["query"])
        .arg(&db)
        .args(["//inproceedings[url]/title", "--analyze"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("normalized:"), "{stdout}");
    assert!(stdout.contains("sel "), "{stdout}");
    assert!(stdout.contains("refine"), "{stdout}");

    // stats renders the registry in both exposition formats, counters
    // present even before any query has run in this process.
    let out = fixdb()
        .args(["stats"])
        .arg(&db)
        .arg("--prometheus")
        .output()
        .unwrap();
    assert!(out.status.success());
    let prom = String::from_utf8_lossy(&out.stdout);
    for name in [
        "fix_plan_cache_hits",
        "fix_plan_cache_misses",
        "fix_plan_cache_evictions",
        "fix_btree_scans",
        "fix_refine_candidates_total",
        "fix_queries_total",
    ] {
        assert!(prom.contains(name), "prometheus missing {name}");
    }
    assert!(prom.contains("# TYPE"), "{prom}");

    let out = fixdb()
        .args(["stats"])
        .arg(&db)
        .arg("--json")
        .output()
        .unwrap();
    assert!(out.status.success());
    let json = String::from_utf8_lossy(&out.stdout);
    assert!(json.contains("\"fix_plan_cache_evictions\""), "{json}");
    assert!(json.contains("\"fix_btree_scans\""), "{json}");

    // bench-query --json reports per-stage quantiles and cache counters.
    let out = fixdb()
        .args(["bench-query"])
        .arg(&db)
        .args(["//inproceedings[url]/title", "--repeat", "3", "--json"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    for key in [
        "\"stages\"",
        "\"p50\"",
        "\"p95\"",
        "\"p99\"",
        "\"plan_cache\"",
        "\"hits\":2",
        "\"misses\":1",
    ] {
        assert!(stdout.contains(key), "missing {key} in: {stdout}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn verify_corrupt_salvage_round_trip() {
    let dir = workdir("verify");
    let a = dir.join("a.xml");
    let db = dir.join("db.fixdb");
    let recovered = dir.join("recovered.fixdb");
    std::fs::write(&a, "<bib><article><author/><ee/></article></bib>").unwrap();

    let out = fixdb().args(["build"]).arg(&db).arg(&a).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A freshly built database verifies clean.
    let out = fixdb().args(["verify"]).arg(&db).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_end().ends_with("ok"), "{stdout}");
    for section in ["options", "documents", "btree", "footer"] {
        assert!(stdout.contains(section), "missing {section} in: {stdout}");
    }

    // Flip one byte mid-file: verify must fail and name corrupt sections.
    let mut bytes = std::fs::read(&db).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&db, &bytes).unwrap();

    let out = fixdb().args(["verify"]).arg(&db).output().unwrap();
    assert!(!out.status.success(), "corrupt file verified clean");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CORRUPT"), "{stdout}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--salvage"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A corrupt database refuses to open for queries.
    let out = fixdb()
        .args(["query"])
        .arg(&db)
        .arg("//article/ee")
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("corrupt"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Salvage recovers the intact sections into a fresh verified file.
    let out = fixdb()
        .args(["verify"])
        .arg(&db)
        .arg("--salvage")
        .arg(&recovered)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("verified ok"), "{stdout}");

    let out = fixdb().args(["verify"]).arg(&recovered).output().unwrap();
    assert!(out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_max_depth_flag_limits_nesting() {
    let dir = workdir("max-depth");
    let xml = dir.join("deep.xml");
    let db = dir.join("db.fixdb");
    std::fs::write(&xml, "<a>".repeat(40) + &"</a>".repeat(40)).unwrap();

    let out = fixdb()
        .args(["build"])
        .arg(&db)
        .args(["--max-depth", "8"])
        .arg(&xml)
        .output()
        .unwrap();
    assert!(!out.status.success(), "40-deep document beat --max-depth 8");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("depth"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = fixdb()
        .args(["build"])
        .arg(&db)
        .args(["--max-depth", "64"])
        .arg(&xml)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = fixdb().output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    let out = fixdb()
        .args(["query", "/nonexistent.fixdb", "//a"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = fixdb().args(["gen", "bogus"]).output().unwrap();
    assert!(!out.status.success());
}

#[test]
fn paged_build_query_verify_stats_round_trip() {
    let dir = workdir("paged");
    let corpus = dir.join("tcmd");
    let db = dir.join("db.fixdb");

    let out = fixdb()
        .args(["gen", "tcmd", "--scale", "0.03", "--out"])
        .arg(&corpus)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let mut files: Vec<PathBuf> = std::fs::read_dir(&corpus)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    files.sort();
    let out = fixdb()
        .args(["build"])
        .arg(&db)
        .args(["--clustered", "--paged", "--pool-pages", "16"])
        .args(&files)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The file on disk is the paged (v4) format and verifies clean.
    let out = fixdb().args(["verify"]).arg(&db).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("v4"), "{stdout}");

    // Queries read pages on demand through the pool.
    let out = fixdb()
        .args(["query"])
        .arg(&db)
        .args(["//article/prolog/authors/author", "--metrics"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("results in"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Human stats name the storage mode and the pool budget; the JSON
    // exposition carries the fix_pool_* gauges the smoke job scrapes.
    let out = fixdb().args(["stats"]).arg(&db).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("storage:           Paged"), "{stdout}");
    assert!(stdout.contains("buffer pool:"), "{stdout}");

    let out = fixdb()
        .args(["stats"])
        .arg(&db)
        .arg("--json")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fix_pool_resident"), "{stdout}");
    assert!(stdout.contains("fix_pool_capacity"), "{stdout}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn events_top_and_interval_stats_round_trip() {
    // The flight-recorder surface: `events` narrating recovery replay on
    // reopen, the slow-op log with a 0ns threshold, category filters, and
    // the two rate viewers (`top`, `stats --interval`) sharing one
    // snapshot-delta arithmetic.
    let dir = workdir("events");
    let a = dir.join("a.xml");
    let b = dir.join("b.xml");
    let c = dir.join("c.xml");
    let db = dir.join("db.fixdb");
    std::fs::write(&a, "<bib><article><author/><ee/></article></bib>").unwrap();
    std::fs::write(&b, "<bib><book><author/></book></bib>").unwrap();
    std::fs::write(&c, "<bib><phdthesis><author/></phdthesis></bib>").unwrap();

    let out = fixdb().args(["build"]).arg(&db).arg(&a).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // `add` commits through the WAL and leaves the record there (no full
    // save), so the *next* open replays it — and the recorder sees it.
    let out = fixdb().args(["add"]).arg(&db).arg(&b).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = fixdb()
        .args(["events"])
        .arg(&db)
        .arg("--json")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"name\":\"open\""), "{stdout}");
    assert!(stdout.contains("\"name\":\"recovery.replay\""), "{stdout}");
    assert!(stdout.contains("\"records\":1"), "{stdout}");

    // Slow-op log with a floor threshold: the in-process `--commit` span
    // promotes, payload intact.
    let out = fixdb()
        .args(["events"])
        .arg(&db)
        .args(["--slow", "--slow-ns", "0", "--commit"])
        .arg(&c)
        .arg("--json")
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"slow_threshold_ns\":0"), "{stdout}");
    assert!(stdout.contains("\"name\":\"commit\""), "{stdout}");
    assert!(stdout.contains("\"duration_ns\":"), "{stdout}");

    // Category filter: recovery lines only.
    let out = fixdb()
        .args(["events"])
        .arg(&db)
        .args(["--category", "recovery"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("recovery.replay"), "{stdout}");
    assert!(stdout.lines().all(|l| l.contains(" recovery ")), "{stdout}");

    // An unknown category is a usage error, not a silent empty dump.
    let out = fixdb()
        .args(["events"])
        .arg(&db)
        .args(["--category", "nope"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    // `top` paints at least one frame with the rate lines…
    let out = fixdb()
        .args(["top"])
        .arg(&db)
        .args(["--interval", "0.05", "--count", "1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fixdb top"), "{stdout}");
    assert!(stdout.contains("commits/s:"), "{stdout}");
    assert!(stdout.contains("fsync window:"), "{stdout}");
    assert!(stdout.contains("wal tail:"), "{stdout}");

    // …and `stats --interval` prints the same lines as plain blocks,
    // one per window.
    let out = fixdb()
        .args(["stats"])
        .arg(&db)
        .args(["--interval", "0.05", "--count", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        stdout.matches("window --").count(),
        2,
        "two windows: {stdout}"
    );
    assert!(stdout.contains("queries/s:"), "{stdout}");
    assert!(!stdout.contains('\x1b'), "no ANSI outside top: {stdout}");

    std::fs::remove_dir_all(&dir).ok();
}
