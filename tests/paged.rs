//! Facade-level tests of the paged (v4) storage engine: byte-identical
//! query answers against the in-memory backend, bounded residency under a
//! tiny buffer pool, metadata-only cold start, and several databases
//! sharing one pool.

use std::path::PathBuf;

use fix::datagen::{tcmd, GenConfig};
use fix::{BufferPool, FixDatabase, FixOptions, StorageMode};

/// Queries that exercise the index, refinement (document reads through
/// the heap), and value predicates over the TCMD corpus.
const QUERIES: &[&str] = &[
    "//article/prolog/authors/author",
    "//article[epilog]/prolog/authors/author",
    "//article/epilog[acknoledgements]/references/a_id",
    "//prolog[keywords]//author",
    "//author/contact[phone]",
    "//references//a_id",
];

struct TempPath(PathBuf);

impl TempPath {
    fn new(name: &str) -> Self {
        let mut p = std::env::temp_dir();
        p.push(format!("fix-paged-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&p);
        Self(p)
    }
}

impl Drop for TempPath {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn corpus(scale: f64) -> Vec<String> {
    tcmd(GenConfig::scaled(scale))
}

fn build_db(docs: &[String], opts: FixOptions) -> FixDatabase {
    let mut db = FixDatabase::in_memory();
    for d in docs {
        db.add_xml(d).unwrap();
    }
    db.build(opts).unwrap();
    db
}

fn answers(db: &FixDatabase) -> Vec<Vec<(u32, u32)>> {
    QUERIES
        .iter()
        .map(|q| {
            db.query(q)
                .unwrap()
                .results
                .iter()
                .map(|&(d, n)| (d.0, n.0))
                .collect()
        })
        .collect()
}

/// The heart of the acceptance criteria: a database saved paged and
/// reopened from disk answers every query byte-identically to the
/// in-memory database it was built from — clustered and unclustered.
#[test]
fn paged_reopen_answers_are_byte_identical_to_in_memory() {
    let docs = corpus(0.05);
    for clustered in [false, true] {
        let opts = FixOptions::builder()
            .clustered(clustered)
            .values(8)
            .storage(StorageMode::Paged)
            .pool_pages(16)
            .build();
        let mem = build_db(&docs, opts.clone());
        let expected = answers(&mem);

        let path = TempPath::new(&format!("identical-{clustered}.fix"));
        let mut to_save = build_db(&docs, opts);
        to_save.save_as(&path.0).unwrap();

        let paged = FixDatabase::open(&path.0).unwrap();
        assert_eq!(
            paged.index().unwrap().options().storage,
            StorageMode::Paged,
            "reopened database must identify as paged"
        );
        assert_eq!(paged.len(), mem.len());
        assert_eq!(
            answers(&paged),
            expected,
            "clustered={clustered}: paged answers diverge from in-memory"
        );
    }
}

/// With an index many pages larger than the pool, residency stays at or
/// under the configured frame budget while a full query sweep runs —
/// eviction is doing its job, and answers are still right.
#[test]
fn resident_pages_stay_bounded_under_a_tiny_pool() {
    let docs = corpus(0.2);
    let opts = FixOptions::builder()
        .clustered(true)
        .storage(StorageMode::Paged)
        .pool_pages(8)
        .build();
    let expected = answers(&build_db(&docs, opts.clone()));

    let path = TempPath::new("bounded.fix");
    build_db(&docs, opts).save_as(&path.0).unwrap();
    let file_pages = std::fs::metadata(&path.0).unwrap().len() / 8192;
    assert!(
        file_pages > 32,
        "corpus too small to stress an 8-page pool ({file_pages} pages)"
    );

    let db = FixDatabase::open(&path.0).unwrap();
    assert_eq!(answers(&db), expected);
    let stats = db.pool_stats().unwrap();
    assert_eq!(stats.capacity, 8);
    assert!(
        stats.resident <= stats.capacity,
        "resident {} frames exceeds the {}-frame pool",
        stats.resident,
        stats.capacity
    );
    assert!(stats.evictions > 0, "a sweep this size must evict");
    assert!(stats.hits > 0 && stats.misses > 0);
    assert!(stats.hit_rate() > 0.0);
}

/// Cold start is O(metadata): opening a paged file reads the superblock
/// and the metadata tail, not the pages. The facade's bytes-read counter
/// makes that directly observable.
#[test]
fn cold_start_reads_metadata_not_the_whole_file() {
    let docs = corpus(0.2);
    let opts = FixOptions::builder()
        .storage(StorageMode::Paged)
        .pool_pages(32)
        .build();
    let path = TempPath::new("coldstart.fix");
    build_db(&docs, opts).save_as(&path.0).unwrap();
    let file_len = std::fs::metadata(&path.0).unwrap().len();

    let db = FixDatabase::open(&path.0).unwrap();
    let read = db
        .metrics()
        .snapshot()
        .counter("fix_persist_bytes_read_total")
        .unwrap();
    assert!(read > 0);
    assert!(
        read < file_len / 4,
        "cold start read {read} of {file_len} bytes — not metadata-only"
    );
}

/// Two databases opened through `open_shared` compete for one pool's
/// frames: combined residency respects the shared budget and both keep
/// answering correctly.
#[test]
fn two_databases_share_one_buffer_pool() {
    let docs_a = corpus(0.08);
    let docs_b: Vec<String> = corpus(0.08).into_iter().rev().collect();
    let opts = FixOptions::builder()
        .clustered(true)
        .storage(StorageMode::Paged)
        .pool_pages(12)
        .build();

    let expected_a = answers(&build_db(&docs_a, opts.clone()));
    let expected_b = answers(&build_db(&docs_b, opts.clone()));

    let path_a = TempPath::new("shared-a.fix");
    let path_b = TempPath::new("shared-b.fix");
    build_db(&docs_a, opts.clone()).save_as(&path_a.0).unwrap();
    build_db(&docs_b, opts).save_as(&path_b.0).unwrap();

    let pool = BufferPool::shared(12);
    let a = FixDatabase::open_shared(&path_a.0, &pool).unwrap();
    let b = FixDatabase::open_shared(&path_b.0, &pool).unwrap();
    for _ in 0..3 {
        assert_eq!(answers(&a), expected_a);
        assert_eq!(answers(&b), expected_b);
    }
    let stats = pool.stats();
    assert!(
        stats.resident <= 12,
        "two tenants hold {} frames in a 12-frame pool",
        stats.resident
    );
    assert!(
        stats.evictions > 0,
        "tenants must have contended for frames"
    );
    // Both facades report the same shared pool.
    assert_eq!(a.pool_stats().unwrap().capacity, 12);
    assert_eq!(b.pool_stats().unwrap().capacity, 12);
}

/// A reopened paged database stays a live database: inserts land in the
/// delta, queries merge them immediately, and saving again (still paged)
/// round-trips the grown collection.
#[test]
fn paged_database_accepts_inserts_and_resaves() {
    let docs = corpus(0.03);
    let opts = FixOptions::builder()
        .clustered(true)
        .storage(StorageMode::Paged)
        .pool_pages(16)
        .build();
    let path = TempPath::new("resave.fix");
    build_db(&docs, opts).save_as(&path.0).unwrap();

    let mut db = FixDatabase::open(&path.0).unwrap();
    let before = db.len();
    db.add_xml(
        "<article><prolog><authors><author><name>x</name></author></authors></prolog></article>",
    )
    .unwrap();
    let hits = db.query("//prolog/authors/author").unwrap().results.len();
    assert!(hits > 0);
    db.save().unwrap();

    let again = FixDatabase::open(&path.0).unwrap();
    assert_eq!(again.len(), before + 1);
    assert_eq!(
        again
            .query("//prolog/authors/author")
            .unwrap()
            .results
            .len(),
        hits,
        "resaved paged database lost the delta insert"
    );
}
