//! Cross-evaluator property tests: the navigational evaluator, the
//! bottom-up DP matcher, the structural-join plan, the F&B index
//! evaluator, and TwigStack must agree on arbitrary documents and twig
//! queries (each under its own edge semantics).

use proptest::prelude::*;

use fix::bisim::FbIndex;
use fix::exec::{eval_fb, eval_path, eval_structural, eval_twig, eval_twigstack};
use fix::xml::{parse_document, Document, LabelTable, RegionIndex};
use fix::xpath::{parse_path, Axis, PathExpr, Predicate, Step, TwigQuery};

fn doc_strategy() -> impl Strategy<Value = String> {
    #[derive(Debug, Clone)]
    enum T {
        Leaf(u8),
        Node(u8, Vec<T>),
    }
    fn render(t: &T, out: &mut String) {
        match t {
            T::Leaf(l) => out.push_str(&format!("<e{l}/>")),
            T::Node(l, c) => {
                out.push_str(&format!("<e{l}>"));
                for x in c {
                    render(x, out);
                }
                out.push_str(&format!("</e{l}>"));
            }
        }
    }
    let leaf = (0u8..5).prop_map(T::Leaf);
    leaf.prop_recursive(5, 48, 4, |inner| {
        ((0u8..5), prop::collection::vec(inner, 1..4)).prop_map(|(l, c)| T::Node(l, c))
    })
    .prop_map(|t| {
        let mut s = String::from("<e0>");
        render(&t, &mut s);
        s.push_str("</e0>");
        s
    })
}

fn query_strategy() -> impl Strategy<Value = String> {
    let step = (0u8..5).prop_map(|l| format!("e{l}"));
    let pred = (0u8..5, prop::option::of(0u8..5)).prop_map(|(a, b)| match b {
        Some(b) => format!("[e{a}/e{b}]"),
        None => format!("[e{a}]"),
    });
    prop::collection::vec((step, prop::option::of(pred)), 1..4).prop_map(|steps| {
        let mut q = String::new();
        for (i, (name, pred)) in steps.iter().enumerate() {
            q.push_str(if i == 0 { "//" } else { "/" });
            q.push_str(name);
            if let Some(p) = pred {
                q.push_str(p);
            }
        }
        q
    })
}

fn to_descendant(path: &PathExpr) -> PathExpr {
    fn steps(ss: &[Step]) -> Vec<Step> {
        ss.iter()
            .map(|s| Step {
                axis: Axis::Descendant,
                name: s.name.clone(),
                predicates: s
                    .predicates
                    .iter()
                    .map(|p| Predicate {
                        path: PathExpr {
                            steps: steps(&p.path.steps),
                        },
                        value: p.value.clone(),
                    })
                    .collect(),
            })
            .collect()
    }
    PathExpr {
        steps: steps(&path.steps),
    }
}

fn parse(xml: &str) -> (Document, LabelTable) {
    let mut lt = LabelTable::new();
    let d = parse_document(xml, &mut lt).unwrap();
    (d, lt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn five_evaluators_agree(xml in doc_strategy(), qs in query_strategy()) {
        let (d, lt) = parse(&xml);
        let path = parse_path(&qs).unwrap();
        let twig = match TwigQuery::from_path(&path, &lt) {
            Ok(t) => t,
            Err(_) => return Ok(()), // label not in this document
        };
        let regions = RegionIndex::build(&d);
        let fb = FbIndex::build(&d);

        let nok: Vec<u32> = eval_path(&d, &lt, &path).iter().map(|n| n.0).collect();
        let dp: Vec<u32> = eval_twig(&d, &twig).iter().map(|n| n.0).collect();
        let sj: Vec<u32> = eval_structural(&d, &regions, &twig).iter().map(|n| n.0).collect();
        let fbr: Vec<u32> = eval_fb(&d, &fb, &twig).iter().map(|n| n.0).collect();
        prop_assert_eq!(&nok, &dp, "nok vs DP on {}", qs);
        prop_assert_eq!(&nok, &sj, "nok vs structural join on {}", qs);
        prop_assert_eq!(&nok, &fbr, "nok vs F&B on {}", qs);

        // TwigStack evaluates descendant semantics; compare against the
        // navigational evaluator on the descendant-rewritten query.
        let ts: Vec<u32> = eval_twigstack(&d, &regions, &twig).iter().map(|n| n.0).collect();
        let nok_desc: Vec<u32> = eval_path(&d, &lt, &to_descendant(&path))
            .iter()
            .map(|n| n.0)
            .collect();
        prop_assert_eq!(&ts, &nok_desc, "twigstack vs nok// on {}", qs);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Normalization must preserve semantics on every evaluator.
    #[test]
    fn normalization_preserves_results(xml in doc_strategy(), qs in query_strategy()) {
        use fix::xpath::normalize;
        let (d, lt) = parse(&xml);
        let path = parse_path(&qs).unwrap();
        let normalized = normalize(&path);
        let a: Vec<u32> = eval_path(&d, &lt, &path).iter().map(|n| n.0).collect();
        let b: Vec<u32> = eval_path(&d, &lt, &normalized).iter().map(|n| n.0).collect();
        prop_assert_eq!(a, b, "normalize changed {} -> {}", qs, normalized);
        // Idempotence.
        prop_assert_eq!(normalize(&normalized), normalized);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// PathStack (linear, descendant semantics) agrees with the
    /// navigational evaluator on descendant-rewritten linear paths.
    #[test]
    fn pathstack_agrees_on_linear_paths(
        xml in doc_strategy(),
        labels in prop::collection::vec(0u8..5, 1..4),
        rooted in prop::bool::ANY,
    ) {
        use fix::exec::eval_pathstack;
        let (d, lt) = parse(&xml);
        let mut q = String::new();
        for (i, l) in labels.iter().enumerate() {
            q.push_str(if i == 0 && !rooted { "//" } else { "/" });
            q.push_str(&format!("e{l}"));
        }
        let path = parse_path(&q).unwrap();
        let regions = RegionIndex::build(&d);
        let (got, stats) = eval_pathstack(&d, &regions, &lt, &path);
        let got: Vec<u32> = got.iter().map(|n| n.0).collect();
        // Reference: descendant-rewritten (keep the leading axis).
        let mut reference = to_descendant(&path);
        if rooted {
            reference.steps[0].axis = Axis::Child;
        }
        let want: Vec<u32> = eval_path(&d, &lt, &reference).iter().map(|n| n.0).collect();
        prop_assert_eq!(got, want, "pathstack vs nok on {}", q);
        prop_assert!(stats.pushed <= stats.scanned);
    }
}
