//! Property tests for fix-obs aggregation: snapshot merge is associative
//! and — for counter/histogram payloads — commutative, and histogram
//! quantiles are monotone (p50 ≤ p95 ≤ p99) and never underestimate the
//! true sample quantile (buckets resolve to their upper bound).
//!
//! Gauges are deliberately excluded from the commutativity property:
//! same-name gauges keep the first operand's level when merged (the
//! documented fold semantics), which is associative but not commutative.

use proptest::prelude::*;

use fix::obs::{Histogram, MetricsRegistry, MetricsSnapshot};

/// Builds a snapshot from scripted operations over a fixed name universe:
/// two counters and two histograms (no gauges — see the module docs).
fn build_snapshot(ops: &[(u8, u64)]) -> MetricsSnapshot {
    let reg = MetricsRegistry::new();
    for &(which, v) in ops {
        match which % 4 {
            0 => reg.counter("fix_a_total").add(v),
            1 => reg.counter("fix_b_total").add(v),
            2 => reg.histogram("fix_h1_ns").record(v),
            _ => reg.histogram("fix_h2_ns").record(v),
        }
    }
    reg.snapshot()
}

fn ops_strategy() -> impl Strategy<Value = Vec<(u8, u64)>> {
    proptest::collection::vec((0u8..4, 0u64..(1 << 40)), 0..40)
}

proptest! {
    #[test]
    fn merge_is_associative_and_commutative(
        a in ops_strategy(),
        b in ops_strategy(),
        c in ops_strategy(),
    ) {
        let (sa, sb, sc) = (build_snapshot(&a), build_snapshot(&b), build_snapshot(&c));
        // Associativity: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        let mut bc = sb.clone();
        bc.merge(&sc);
        let mut right = sa.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // Commutativity: a ⊕ b == b ⊕ a.
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(ab, ba);
        // Identity: merging an empty snapshot changes nothing.
        let mut with_empty = sa.clone();
        with_empty.merge(&MetricsSnapshot::default());
        prop_assert_eq!(with_empty, sa);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_conservative(
        samples in proptest::collection::vec(0u64..(1 << 48), 1..200),
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let q = |q: f64| snap.quantile(q).expect("non-empty histogram");
        let (p50, p95, p99) = (q(0.5), q(0.95), q(0.99));
        prop_assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
        prop_assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
        // Conservative: the bucketed quantile upper-bounds the true
        // quantile (smallest sample whose 1-based rank is ≥ ⌈q·n⌉).
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for (frac, got) in [(0.5, p50), (0.95, p95), (0.99, p99)] {
            let rank = ((frac * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            prop_assert!(got >= truth, "q={frac}: bucketed {got} < true {truth}");
        }
    }
}
