//! Property test for the buffer pool: an arbitrary interleaving of
//! allocations, writes, reads, and flushes against a 4-frame pool (every
//! access evicts something) must observe exactly the same bytes as a pool
//! large enough to never evict. Run twice — once memory-backed, once
//! file-backed — so dirty write-back on eviction is exercised against a
//! real file.

use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use fix::storage::{BufferPool, FileBackend, PageId, PageSpace, PAGE_SIZE};

#[derive(Debug, Clone)]
enum Op {
    Allocate,
    /// Stamp a recognisable pattern into page `page % num_pages`.
    Write {
        page: usize,
        val: u8,
    },
    /// Read one byte of page `page % num_pages`.
    Read {
        page: usize,
    },
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Allocate),
        (0usize..64, any::<u8>()).prop_map(|(page, val)| Op::Write { page, val }),
        (0usize..64, any::<u8>()).prop_map(|(page, val)| Op::Write { page, val }),
        (0usize..64).prop_map(|page| Op::Read { page }),
        (0usize..64).prop_map(|page| Op::Read { page }),
        Just(Op::Flush),
    ]
}

/// Applies one op to a page space; returns the observed byte for reads.
fn apply(space: &PageSpace, op: &Op) -> Option<u8> {
    let pages = space.num_pages() as usize;
    match op {
        Op::Allocate => {
            space.allocate();
            None
        }
        Op::Write { page, val } => {
            if pages == 0 {
                return None;
            }
            let id = PageId((page % pages) as u64);
            space.with_page_mut(id, |b| {
                // A spread of offsets, so partial write-back would show.
                b[0] = *val;
                b[PAGE_SIZE / 2] = val.wrapping_add(1);
                b[PAGE_SIZE - 1] = val.wrapping_mul(31);
            });
            None
        }
        Op::Read { page } => {
            if pages == 0 {
                return None;
            }
            let id = PageId((page % pages) as u64);
            Some(space.with_page(id, |b| b[0]))
        }
        Op::Flush => {
            space.flush().unwrap();
            None
        }
    }
}

fn check(small: PageSpace, ops: &[Op]) {
    let oracle = PageSpace::in_memory(4096); // never evicts at these sizes
    for op in ops {
        let a = apply(&small, op);
        let b = apply(&oracle, op);
        assert_eq!(a, b, "read through evicting pool diverges on {op:?}");
        let s = small.pool_stats();
        assert!(
            s.resident <= s.capacity,
            "pool over budget: {} resident in {} frames",
            s.resident,
            s.capacity
        );
    }
    // Every page, end to end: eviction + write-back must have preserved
    // exactly the bytes the no-eviction oracle holds.
    assert_eq!(small.num_pages(), oracle.num_pages());
    for p in 0..small.num_pages() {
        let a = small.with_page(PageId(p), |b| b.to_vec());
        let b = oracle.with_page(PageId(p), |b| b.to_vec());
        assert_eq!(a, b, "page {p} differs after eviction round-trips");
    }
    assert_eq!(small.pool_stats().crc_failures, 0);
}

static SEQ: AtomicU64 = AtomicU64::new(0);

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn evicting_pool_matches_no_eviction_oracle_in_memory(
        ops in prop::collection::vec(op_strategy(), 1..48),
    ) {
        check(PageSpace::in_memory(4), &ops);
    }

    #[test]
    fn evicting_pool_matches_no_eviction_oracle_on_disk(
        ops in prop::collection::vec(op_strategy(), 1..48),
    ) {
        let mut path = std::env::temp_dir();
        path.push(format!(
            "fix-prop-pool-{}-{}.pages",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        let backend = FileBackend::create(&path).unwrap();
        check(BufferPool::shared(4).attach(Box::new(backend)), &ops);
        let _ = std::fs::remove_file(&path);
    }
}
