//! Minimal offline stand-in for the `criterion` bench harness.
//!
//! Implements the API subset the `fix-bench` benches use: groups,
//! `bench_function` / `bench_with_input`, throughput/sample-size hints,
//! and the `criterion_group!` / `criterion_main!` macros. Measurement is
//! deliberately simple (fixed wall-clock budget per benchmark, mean
//! time per iteration printed to stdout); `--test` runs every benchmark
//! exactly once, which is what CI smoke runs use.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    test_mode: bool,
    filter: Option<String>,
    /// Wall-clock budget per benchmark outside `--test` mode.
    measure_budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut test_mode = false;
        let mut filter = None;
        for arg in &args {
            match arg.as_str() {
                "--test" => test_mode = true,
                // Flags cargo bench passes through; ignored here.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                a if a.starts_with('-') => {}
                a => filter = Some(a.to_string()),
            }
        }
        Self {
            test_mode,
            filter,
            measure_budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// Throughput hint attached to a group (accepted, not reported).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterised benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark label.
pub trait IntoBenchmarkLabel {
    /// Converts to the printed label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.id
    }
}

/// Timing helper handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` for the configured iteration count, timing it.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepts (and ignores) a throughput hint.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepts (and ignores) a sample-size hint.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.run(&label, |b| f(b));
        self
    }

    /// Registers and immediately runs one benchmark over `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        self.run(&label, |b| f(b, input));
        self
    }

    /// Ends the group (upstream flushes reports here; nothing to do).
    pub fn finish(self) {}

    fn run(&mut self, label: &str, mut routine: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.criterion.filter {
            if !label.contains(filter.as_str()) {
                return;
            }
        }
        if self.criterion.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            routine(&mut b);
            println!("test {label} ... ok");
            return;
        }
        // Calibrate: one timed iteration sizes the measurement batch.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let per_iter = b.elapsed.max(Duration::from_nanos(1));
        let budget = self.criterion.measure_budget;
        let iters = (budget.as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        routine(&mut b);
        let mean = b.elapsed / iters.max(1) as u32;
        println!("{label}: {mean:?}/iter ({iters} iterations)");
    }
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion {
            test_mode: true,
            filter: None,
            measure_budget: Duration::from_millis(1),
        };
        let mut ran = 0u32;
        let mut g = c.benchmark_group("g");
        g.bench_function("f", |b| b.iter(|| ran += 1));
        g.bench_with_input(BenchmarkId::from_parameter(3), &3u32, |b, &n| {
            b.iter(|| ran += n)
        });
        g.finish();
        assert_eq!(ran, 4);
    }
}
