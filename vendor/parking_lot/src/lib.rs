//! Minimal offline stand-in for the `parking_lot` crate.
//!
//! This workspace vendors the small API subset it actually uses so the
//! build has no network dependency. The semantics differ from upstream in
//! one deliberate way: poisoning is ignored (like real `parking_lot`,
//! a panic while holding the lock does not poison it for later callers).

use std::sync::{self, TryLockError};

/// A mutex that, like `parking_lot::Mutex`, has an infallible `lock()`
/// and no poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed — the borrow checker guarantees exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
