//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the API subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map` / `prop_recursive`,
//! range and tuple and regex-literal strategies, `prop::collection::vec`,
//! `prop::option::of`, `prop::bool::ANY`, `prop::sample::Index`,
//! `prop_oneof!`, and the `proptest!` test macro with
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!`.
//!
//! Differences from upstream, by design:
//! - no shrinking — a failing case reports the generated input as-is;
//! - generation is driven by a ChaCha8 stream seeded deterministically
//!   from the test's module path, so runs are reproducible but the cases
//!   differ from what upstream proptest would generate;
//! - `.proptest-regressions` files are ignored.

use std::fmt;
use std::rc::Rc;

use rand::Rng as _;
use rand_chacha::rand_core::SeedableRng as _;

/// Deterministic RNG handed to strategies.
pub struct TestRng(rand_chacha::ChaCha8Rng);

impl TestRng {
    /// Seeds deterministically from an arbitrary name.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self(rand_chacha::ChaCha8Rng::seed_from_u64(h))
    }
}

/// Error produced by one test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property failed.
    Fail(String),
    /// The inputs were rejected by `prop_assume!`; try another case.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self::Fail(reason.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        Self::Reject(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Fail(r) => write!(f, "test case failed: {r}"),
            Self::Reject(r) => write!(f, "test case rejected: {r}"),
        }
    }
}

impl<E: std::error::Error> From<E> for TestCaseError {
    fn from(e: E) -> Self {
        Self::Fail(e.to_string())
    }
}

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { source: self, f }
    }

    /// Generates a value, then generates from the strategy `f` returns.
    fn prop_flat_map<S, F>(self, f: F) -> strategy::FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        strategy::FlatMap { source: self, f }
    }

    /// Recursive strategies: `self` generates leaves, `recurse` wraps an
    /// inner strategy into a branch. `depth` bounds the nesting; the
    /// size/branch hints are accepted for API compatibility.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = strategy::LeafOrBranch {
                leaf: leaf.clone(),
                branch: recurse(level).boxed(),
            }
            .boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased [`Strategy`].
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub mod strategy {
    //! Combinator strategies returned by [`Strategy`]
    //! methods and the `prop_oneof!` macro.

    use super::{fmt, BoxedStrategy, Strategy, TestRng};
    use rand::Rng as _;

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        pub(crate) source: S,
        pub(crate) f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// One level of a recursive strategy: leaf or branch.
    pub(crate) struct LeafOrBranch<V> {
        pub(crate) leaf: BoxedStrategy<V>,
        pub(crate) branch: BoxedStrategy<V>,
    }

    impl<V: fmt::Debug> Strategy for LeafOrBranch<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            // Favour branches so recursive structures get real depth.
            if rng.0.gen_bool(0.7) {
                self.branch.generate(rng)
            } else {
                self.leaf.generate(rng)
            }
        }
    }

    /// Uniform choice between strategies; built by `prop_oneof!`.
    pub struct OneOf<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> OneOf<V> {
        /// Builds from a non-empty option list.
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<V: fmt::Debug> Strategy for OneOf<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rng.0.gen_range(0..self.options.len());
            self.options[i].generate(rng)
        }
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String-literal strategies: a small regex-subset interpreter covering
/// the patterns this workspace uses (character classes, `.`, literals,
/// `{m}` / `{m,n}` / `*` / `+` / `?` quantifiers).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        regex_lite::generate(self, rng)
    }
}

mod regex_lite {
    use super::TestRng;
    use rand::Rng as _;

    enum Atom {
        Lit(char),
        /// Inclusive character ranges.
        Class(Vec<(char, char)>),
        /// `.` — printable ASCII.
        Any,
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => {
                    let mut ranges = Vec::new();
                    let mut class: Vec<char> = Vec::new();
                    for c in chars.by_ref() {
                        if c == ']' {
                            break;
                        }
                        class.push(c);
                    }
                    let mut i = 0;
                    while i < class.len() {
                        if i + 2 < class.len() && class[i + 1] == '-' {
                            ranges.push((class[i], class[i + 2]));
                            i += 3;
                        } else {
                            ranges.push((class[i], class[i]));
                            i += 1;
                        }
                    }
                    assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                    Atom::Class(ranges)
                }
                '\\' => Atom::Lit(chars.next().expect("dangling escape")),
                c => Atom::Lit(c),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for c in chars.by_ref() {
                        if c == '}' {
                            break;
                        }
                        spec.push(c);
                    }
                    match spec.split_once(',') {
                        Some((lo, hi)) => (
                            lo.parse().expect("bad quantifier"),
                            hi.parse().expect("bad quantifier"),
                        ),
                        None => {
                            let n = spec.parse().expect("bad quantifier");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    pub(super) fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = rng.0.gen_range(piece.min..=piece.max);
            for _ in 0..count {
                match &piece.atom {
                    Atom::Lit(c) => out.push(*c),
                    Atom::Any => out.push(char::from(rng.0.gen_range(0x20u8..=0x7E))),
                    Atom::Class(ranges) => {
                        let (lo, hi) = ranges[rng.0.gen_range(0..ranges.len())];
                        out.push(
                            char::from_u32(rng.0.gen_range(lo as u32..=hi as u32))
                                .expect("class range within valid chars"),
                        );
                    }
                }
            }
        }
        out
    }
}

/// Types with a canonical strategy, usable via [`any`].
pub trait Arbitrary: Sized + fmt::Debug {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// A full-domain strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrim<T>(std::marker::PhantomData<T>);

impl<T: rand::FromRng + fmt::Debug> Strategy for AnyPrim<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::from_rng(&mut rng.0)
    }
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrim(std::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_prim!(u8, u32, u64, usize, bool, f64);

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// Accepted element-count specifications for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.0.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// See [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.0.gen_bool(0.25) {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }

    /// `None` a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

pub mod bool {
    //! `bool` strategies.

    use super::{Strategy, TestRng};
    use rand::Rng as _;

    /// The strategy type of [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.0.gen_bool(0.5)
        }
    }

    /// Uniform `true` / `false`.
    pub const ANY: Any = Any;
}

pub mod sample {
    //! Sampling helpers.

    use super::{Arbitrary, Strategy, TestRng};
    use rand::Rng as _;

    /// An index into a not-yet-known-length collection.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(usize);

    impl Index {
        /// Projects onto `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    /// The strategy type of `any::<Index>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;

        fn generate(&self, rng: &mut TestRng) -> Index {
            Index(rng.0.gen::<usize>())
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;

        fn arbitrary() -> Self::Strategy {
            IndexStrategy
        }
    }
}

pub mod test_runner {
    //! The case loop behind the `proptest!` macro.

    use super::{ProptestConfig, Strategy, TestCaseError, TestRng};

    /// Runs `cfg.cases` successful cases of `test` over `strategy`,
    /// panicking (with the offending input) on the first failure.
    pub fn run<S, F>(name: &str, cfg: &ProptestConfig, strategy: &S, test: F)
    where
        S: Strategy,
        F: Fn(S::Value) -> Result<(), TestCaseError>,
    {
        let mut rng = TestRng::from_name(name);
        let max_rejects = cfg.cases.saturating_mul(64).saturating_add(1024);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < cfg.cases {
            let value = strategy.generate(&mut rng);
            let rendered = format!("{value:?}");
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
            match outcome {
                Ok(Ok(())) => passed += 1,
                Ok(Err(TestCaseError::Reject(_))) => {
                    rejected += 1;
                    assert!(
                        rejected < max_rejects,
                        "{name}: too many rejected cases ({rejected})"
                    );
                }
                Ok(Err(TestCaseError::Fail(reason))) => {
                    panic!("{name}: case #{passed} failed: {reason}\n    input: {rendered}")
                }
                Err(payload) => {
                    eprintln!("{name}: case #{passed} panicked\n    input: {rendered}");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// Declares property tests: `#[test]` functions whose arguments are drawn
/// from strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (
        cfg = $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                &config,
                &strategy,
                #[allow(unreachable_code, unused_mut)]
                |($($pat,)+)| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

/// Rejects the current case (drawing a fresh one) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    pub mod prop {
        //! Namespaced strategy modules (`prop::collection`, ...).
        pub use crate::{bool, collection, option, sample, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn tree_strategy() -> impl Strategy<Value = Vec<u8>> {
        prop::collection::vec(0u8..5, 1..4)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_vecs((a, n) in (0u8..5, 1usize..4), v in tree_strategy()) {
            prop_assert!(a < 5);
            prop_assert!((1..4).contains(&n));
            prop_assert!(!v.is_empty() && v.len() < 4);
        }

        #[test]
        fn regex_and_oneof(s in "[a-z ]{1,12}", which in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c == ' ' || c.is_ascii_lowercase()));
            prop_assert!(which == 1 || which == 2, "got {}", which);
        }

        #[test]
        fn assume_rejects_and_index_projects(n in 0u32..100, pick in any::<prop::sample::Index>()) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert!(pick.index(7) < 7);
        }

        #[test]
        fn recursive_flat_map_exact_vec(
            t in (0u8..3).prop_recursive(3, 16, 3, |inner| {
                (0u8..3, prop::collection::vec(inner, 1..3)).prop_map(|(l, _)| l)
            }),
            (len, v) in (2usize..5).prop_flat_map(|n| {
                (Just(n), prop::collection::vec(0u64..10, n))
            }),
        ) {
            prop_assert!(t < 3);
            prop_assert_eq!(v.len(), len);
        }
    }

    #[test]
    #[should_panic(expected = "case #0 failed")]
    fn failing_property_panics_with_input() {
        crate::test_runner::run(
            "failing_property",
            &ProptestConfig::with_cases(4),
            &(0u8..5),
            |_| Err(TestCaseError::fail("nope")),
        );
    }

    #[test]
    fn question_mark_on_io_errors_converts() {
        fn body() -> Result<(), TestCaseError> {
            std::fs::read("/definitely/not/here/ever")?;
            Ok(())
        }
        assert!(matches!(body(), Err(TestCaseError::Fail(_))));
    }
}
