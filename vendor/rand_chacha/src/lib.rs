//! Minimal offline stand-in for the `rand_chacha` crate.
//!
//! [`ChaCha8Rng`] is a genuine ChaCha8 keystream generator (8 rounds,
//! RFC 7539 state layout), seeded from a `u64` via SplitMix64 key
//! expansion. The stream is deterministic per seed but not byte-identical
//! to upstream `rand_chacha` — this repo's tests assert structural
//! properties of generated data, never exact bytes.

pub mod rand_core {
    //! Re-exports matching `rand_chacha::rand_core` paths.
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A deterministic ChaCha8-based random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Eight 32-bit key words (seed material).
    key: [u32; 8],
    /// Block counter for the next block to generate.
    counter: u64,
    /// Current keystream block.
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means the buffer is exhausted.
    idx: usize,
}

#[inline]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k" constants, key, 64-bit counter, zero nonce.
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buf = state;
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }

    fn next_word(&mut self) -> u32 {
        if self.idx == 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 key expansion, as upstream rand does for small seeds.
        let mut s = state;
        let mut next = || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        Self {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_sampling_roughly_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
