//! Minimal offline stand-in for the `crossbeam` crate.
//!
//! Implements the scoped-thread subset this workspace uses
//! (`crossbeam::scope` + `Scope::spawn`) on top of `std::thread::scope`,
//! which has been stable since Rust 1.63 and makes the old crossbeam
//! scoped-thread machinery unnecessary.

pub mod thread {
    //! Scoped threads (`crossbeam::thread` API subset).

    /// A scope for spawning borrowed threads; wraps [`std::thread::Scope`].
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread; join is optional (the scope joins
    /// stragglers on exit, as upstream crossbeam does).
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish and returns its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. As in crossbeam, the closure receives
        /// the scope again so it can spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Creates a scope in which borrowed threads can be spawned.
    ///
    /// Unlike upstream (which collects child panics into the `Err` arm),
    /// a panicking child re-panics on scope exit via `std::thread::scope`;
    /// the `Result` wrapper only preserves the upstream signature.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_spawn_borrows_stack_data() {
        let data = [1u32, 2, 3];
        let sum = crate::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<u32>());
            h.join().expect("child thread")
        })
        .expect("scope");
        assert_eq!(sum, 6);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = crate::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 41u32).join().expect("inner") + 1)
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(n, 42);
    }
}
