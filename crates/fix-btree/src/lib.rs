//! A disk-resident B+-tree — the stand-in for the Berkeley DB B-tree the
//! paper builds FIX on.
//!
//! Fixed-length byte-string keys (length chosen at creation), `u64` values,
//! split-on-overflow insertion, and leaf-chained range scans. Keys are
//! compared as raw bytes, so callers use the order-preserving codecs in
//! [`keycodec`] to build composite `(root label, λ_max, λ_min, seq)` keys
//! whose byte order equals the intended numeric order.

pub mod keycodec;
pub mod levels;
pub mod rtree;
pub mod run;
pub mod tree;

pub use keycodec::{decode_f64, encode_f64, KeyWriter};
pub use levels::{merge_runs, KMergeIter, LevelStats, MergeDetail, TieredRuns};
pub use rtree::{Point, RTree, RTreeProbeStats};
pub use run::SortedRun;
pub use tree::{BTree, BTreeStats, RangeScan, ScanStats};
