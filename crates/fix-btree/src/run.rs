//! A sorted in-memory key run — the delta side of an LSM-style pair with
//! the on-disk [`BTree`](crate::BTree).
//!
//! Holds fixed-length byte-string keys with `u64` values in key order, so
//! a scan over the run can be merged with a B+-tree range scan into one
//! globally ordered candidate stream. Inserts keep the run sorted (binary
//! search + shift); runs are expected to stay small relative to the base
//! tree and to be folded into it by compaction before they grow large.
//!
//! Range semantics mirror [`BTree::range`](crate::BTree::range): the start
//! bound is inclusive, the end bound (when present) exclusive, and keys
//! compare as raw bytes.

/// A sorted run of fixed-length keys and `u64` values.
#[derive(Debug, Clone, Default)]
pub struct SortedRun {
    key_len: usize,
    entries: Vec<(Vec<u8>, u64)>,
}

impl SortedRun {
    /// An empty run over keys of `key_len` bytes.
    pub fn new(key_len: usize) -> Self {
        Self {
            key_len,
            entries: Vec::new(),
        }
    }

    /// The fixed key length in bytes.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Number of entries in the run.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Approximate resident size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(k, _)| k.len() + std::mem::size_of::<u64>())
            .sum()
    }

    /// Builds a run from entries that are already in key order. Merges and
    /// the load path use this to avoid per-entry binary searches.
    ///
    /// # Panics
    ///
    /// When an entry is shorter/longer than `key_len` or out of order.
    pub fn from_sorted(key_len: usize, entries: Vec<(Vec<u8>, u64)>) -> Self {
        for w in entries.windows(2) {
            assert!(w[0].0 <= w[1].0, "entries must be in key order");
        }
        for (k, _) in &entries {
            assert_eq!(k.len(), key_len, "key length mismatch");
        }
        Self { key_len, entries }
    }

    /// The entries as a sorted slice — the raw material for k-way merges
    /// across runs.
    pub fn as_slice(&self) -> &[(Vec<u8>, u64)] {
        &self.entries
    }

    /// Inserts a key/value pair, keeping the run sorted. Duplicate keys are
    /// allowed and kept adjacent in insertion order.
    pub fn insert(&mut self, key: &[u8], value: u64) {
        assert_eq!(key.len(), self.key_len, "key length mismatch");
        // `partition_point` finds the end of the <=-run, so equal keys land
        // after existing ones — stable with respect to insertion order.
        let pos = self.entries.partition_point(|(k, _)| k.as_slice() <= key);
        self.entries.insert(pos, (key.to_vec(), value));
    }

    /// Iterates all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&[u8], u64)> + '_ {
        self.entries.iter().map(|(k, v)| (k.as_slice(), *v))
    }

    /// Iterates entries with `start <= key < end` (no upper bound when
    /// `end` is `None`), matching `BTree::range` semantics.
    pub fn range<'a>(
        &'a self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> impl Iterator<Item = (&'a [u8], u64)> + 'a {
        let lo = self.entries.partition_point(|(k, _)| k.as_slice() < start);
        let hi = match end {
            Some(end) => self.entries.partition_point(|(k, _)| k.as_slice() < end),
            None => self.entries.len(),
        };
        self.entries[lo..hi.max(lo)]
            .iter()
            .map(|(k, v)| (k.as_slice(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_keeps_key_order() {
        let mut run = SortedRun::new(2);
        for (k, v) in [([3u8, 0], 30), ([1, 0], 10), ([2, 0], 20), ([1, 1], 11)] {
            run.insert(&k, v);
        }
        let keys: Vec<_> = run.iter().map(|(k, v)| (k.to_vec(), v)).collect();
        assert_eq!(
            keys,
            vec![
                (vec![1, 0], 10),
                (vec![1, 1], 11),
                (vec![2, 0], 20),
                (vec![3, 0], 30)
            ]
        );
        assert_eq!(run.len(), 4);
        assert_eq!(run.size_bytes(), 4 * (2 + 8));
    }

    #[test]
    fn range_is_start_inclusive_end_exclusive() {
        let mut run = SortedRun::new(1);
        for k in [1u8, 3, 5, 7] {
            run.insert(&[k], k as u64);
        }
        let got: Vec<u64> = run.range(&[3], Some(&[7])).map(|(_, v)| v).collect();
        assert_eq!(got, vec![3, 5]);
        let open: Vec<u64> = run.range(&[4], None).map(|(_, v)| v).collect();
        assert_eq!(open, vec![5, 7]);
        assert!(run.range(&[8], Some(&[9])).next().is_none());
    }

    #[test]
    fn duplicate_keys_are_stable() {
        let mut run = SortedRun::new(1);
        run.insert(&[5], 1);
        run.insert(&[5], 2);
        run.insert(&[5], 3);
        let vals: Vec<u64> = run.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, vec![1, 2, 3]);
    }
}
