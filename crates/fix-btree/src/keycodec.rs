//! Order-preserving key encodings.
//!
//! B-tree keys are compared bytewise, so every component must be encoded
//! such that `a < b ⇔ encode(a) < encode(b)` lexicographically:
//!
//! * unsigned integers: big-endian;
//! * `f64`: flip the sign bit for non-negative values, flip *all* bits for
//!   negative values (the classic total-order trick; works for ±∞ too).

/// Encodes an `f64` into 8 order-preserving bytes.
///
/// NaN is rejected — feature values are always ordered.
pub fn encode_f64(v: f64) -> [u8; 8] {
    assert!(!v.is_nan(), "NaN cannot be a key component");
    let bits = v.to_bits();
    let mapped = if bits >> 63 == 0 {
        bits ^ (1u64 << 63)
    } else {
        !bits
    };
    mapped.to_be_bytes()
}

/// Inverse of [`encode_f64`].
pub fn decode_f64(b: [u8; 8]) -> f64 {
    let mapped = u64::from_be_bytes(b);
    let bits = if mapped >> 63 == 1 {
        mapped ^ (1u64 << 63)
    } else {
        !mapped
    };
    f64::from_bits(bits)
}

/// Builds a composite key by appending order-preserving components.
#[derive(Debug, Default, Clone)]
pub struct KeyWriter {
    buf: Vec<u8>,
}

impl KeyWriter {
    /// Starts an empty key.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a big-endian `u32`.
    pub fn u32(mut self, v: u32) -> Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn u64(mut self, v: u64) -> Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends an order-preserving `f64`.
    pub fn f64(mut self, v: f64) -> Self {
        self.buf.extend_from_slice(&encode_f64(v));
        self
    }

    /// The finished key bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_round_trips() {
        for v in [
            0.0,
            -0.0,
            1.5,
            -1.5,
            f64::MAX,
            f64::MIN,
            f64::INFINITY,
            f64::NEG_INFINITY,
            1e-300,
            -1e-300,
        ] {
            let d = decode_f64(encode_f64(v));
            assert!(d == v || (v == 0.0 && d == 0.0), "{v} -> {d}");
        }
    }

    #[test]
    fn f64_order_is_preserved() {
        let vals = [
            f64::NEG_INFINITY,
            -1e30,
            -2.5,
            -1.0,
            -1e-10,
            0.0,
            1e-10,
            1.0,
            2.5,
            1e30,
            f64::INFINITY,
        ];
        for w in vals.windows(2) {
            assert!(encode_f64(w[0]) < encode_f64(w[1]), "{} !< {}", w[0], w[1]);
        }
    }

    #[test]
    fn pseudo_random_monotonicity() {
        // Deterministic xorshift sample, pairwise order check.
        let mut seed = 0x1234_5678_9ABC_DEF0u64;
        let mut vals: Vec<f64> = (0..500)
            .map(|_| {
                seed ^= seed << 13;
                seed ^= seed >> 7;
                seed ^= seed << 17;
                ((seed % 2_000_001) as f64 - 1_000_000.0) / 997.0
            })
            .collect();
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        vals.dedup();
        for w in vals.windows(2) {
            assert!(encode_f64(w[0]) < encode_f64(w[1]));
        }
    }

    #[test]
    fn composite_keys_sort_componentwise() {
        let k = |label: u32, lmax: f64, seq: u64| {
            KeyWriter::new().u32(label).f64(lmax).u64(seq).finish()
        };
        assert!(k(1, 100.0, 0) < k(2, 0.0, 0), "label dominates");
        assert!(k(1, 1.0, 9) < k(1, 2.0, 0), "lmax next");
        assert!(k(1, 1.0, 1) < k(1, 1.0, 2), "seq last");
        assert!(k(1, -3.0, 0) < k(1, 3.0, 0));
        assert!(k(1, 3.0, 0) < k(1, f64::INFINITY, 0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_is_rejected() {
        let _ = encode_f64(f64::NAN);
    }
}
