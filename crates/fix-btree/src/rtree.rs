//! A 2-D R-tree (STR bulk-loaded) over feature points — the paper's
//! closing future-work item: "we plan to move the index to R-tree or other
//! high-dimensional indexing trees to gain further pruning power".
//!
//! FIX's containment probe is a *quadrant* query: report entries with
//! `λ_max ≥ q.λ_max ∧ λ_min ≤ q.λ_min`. On a B-tree sorted by λ_max the
//! probe scans the whole suffix and post-filters on λ_min; an R-tree can
//! prune on both dimensions at once. The `ablation` bench compares the
//! two probe structures' visited-entry counts.

/// A 2-D point with a `u64` payload (the index entry value).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// First dimension (λ_max).
    pub x: f64,
    /// Second dimension (λ_min).
    pub y: f64,
    /// Payload.
    pub value: u64,
}

/// Minimum bounding rectangle.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Mbr {
    x0: f64,
    x1: f64,
    y0: f64,
    y1: f64,
}

impl Mbr {
    fn of_points(pts: &[Point]) -> Mbr {
        let mut m = Mbr {
            x0: f64::INFINITY,
            x1: f64::NEG_INFINITY,
            y0: f64::INFINITY,
            y1: f64::NEG_INFINITY,
        };
        for p in pts {
            m.x0 = m.x0.min(p.x);
            m.x1 = m.x1.max(p.x);
            m.y0 = m.y0.min(p.y);
            m.y1 = m.y1.max(p.y);
        }
        m
    }

    fn union(&self, o: &Mbr) -> Mbr {
        Mbr {
            x0: self.x0.min(o.x0),
            x1: self.x1.max(o.x1),
            y0: self.y0.min(o.y0),
            y1: self.y1.max(o.y1),
        }
    }

    /// Could this rectangle contain a point of the quadrant
    /// `x ≥ qx ∧ y ≤ qy`?
    fn intersects_quadrant(&self, qx: f64, qy: f64) -> bool {
        self.x1 >= qx && self.y0 <= qy
    }
}

enum Node {
    Leaf(Vec<Point>),
    Inner(Vec<(Mbr, Node)>),
}

/// Probe statistics: how much of the structure a query visited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RTreeProbeStats {
    /// Internal + leaf nodes visited.
    pub nodes_visited: usize,
    /// Points tested against the predicate.
    pub points_tested: usize,
}

/// An STR bulk-loaded R-tree (static — FIX probes dominate; rebuilds are
/// linear-ish and the comparison target, the B-tree index, is also
/// bulk-loaded for the clustered variant).
pub struct RTree {
    root: Option<(Mbr, Node)>,
    len: usize,
    fanout: usize,
}

impl RTree {
    /// Bulk-loads with the Sort-Tile-Recursive packing.
    pub fn bulk_load(mut points: Vec<Point>, fanout: usize) -> Self {
        assert!(fanout >= 2, "fanout must be at least 2");
        let len = points.len();
        if points.is_empty() {
            return Self {
                root: None,
                len: 0,
                fanout,
            };
        }
        // STR: sort by x, cut into √(n/f) vertical slabs, sort each slab
        // by y, pack leaves of `fanout` points.
        points.sort_by(|a, b| a.x.partial_cmp(&b.x).expect("finite coordinates"));
        let n_leaves = points.len().div_ceil(fanout);
        let slabs = (n_leaves as f64).sqrt().ceil() as usize;
        let slab_size = points.len().div_ceil(slabs.max(1));
        let mut leaves: Vec<(Mbr, Node)> = Vec::with_capacity(n_leaves);
        for slab in points.chunks(slab_size.max(1)) {
            let mut slab = slab.to_vec();
            slab.sort_by(|a, b| a.y.partial_cmp(&b.y).expect("finite coordinates"));
            for group in slab.chunks(fanout) {
                leaves.push((Mbr::of_points(group), Node::Leaf(group.to_vec())));
            }
        }
        // Pack upward.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(fanout));
            let mut iter = level.into_iter().peekable();
            while iter.peek().is_some() {
                let group: Vec<(Mbr, Node)> = iter.by_ref().take(fanout).collect();
                let mbr = group
                    .iter()
                    .map(|(m, _)| *m)
                    .reduce(|a, b| a.union(&b))
                    .expect("non-empty group");
                next.push((mbr, Node::Inner(group)));
            }
            level = next;
        }
        Self {
            root: level.pop(),
            len,
            fanout,
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no point is indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The configured fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Quadrant query: every point with `x ≥ qx ∧ y ≤ qy` (the FIX
    /// containment probe), plus visit statistics.
    pub fn query_quadrant(&self, qx: f64, qy: f64) -> (Vec<Point>, RTreeProbeStats) {
        let mut out = Vec::new();
        let mut stats = RTreeProbeStats::default();
        if let Some((mbr, node)) = &self.root {
            if mbr.intersects_quadrant(qx, qy) {
                Self::visit(node, qx, qy, &mut out, &mut stats);
            }
        }
        (out, stats)
    }

    fn visit(node: &Node, qx: f64, qy: f64, out: &mut Vec<Point>, stats: &mut RTreeProbeStats) {
        stats.nodes_visited += 1;
        match node {
            Node::Leaf(points) => {
                for p in points {
                    stats.points_tested += 1;
                    if p.x >= qx && p.y <= qy {
                        out.push(*p);
                    }
                }
            }
            Node::Inner(children) => {
                for (mbr, child) in children {
                    if mbr.intersects_quadrant(qx, qy) {
                        Self::visit(child, qx, qy, out, stats);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(n: usize) -> Vec<Point> {
        let mut pts = Vec::new();
        for i in 0..n {
            for j in 0..n {
                pts.push(Point {
                    x: i as f64,
                    y: -(j as f64),
                    value: (i * n + j) as u64,
                });
            }
        }
        pts
    }

    fn brute(pts: &[Point], qx: f64, qy: f64) -> Vec<u64> {
        let mut v: Vec<u64> = pts
            .iter()
            .filter(|p| p.x >= qx && p.y <= qy)
            .map(|p| p.value)
            .collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn quadrant_queries_match_brute_force() {
        let pts = grid(12);
        let t = RTree::bulk_load(pts.clone(), 8);
        assert_eq!(t.len(), 144);
        for (qx, qy) in [
            (0.0, 0.0),
            (5.5, -3.5),
            (11.0, -11.0),
            (12.5, 1.0),
            (-1.0, -20.0),
        ] {
            let (got, _) = t.query_quadrant(qx, qy);
            let mut got: Vec<u64> = got.iter().map(|p| p.value).collect();
            got.sort_unstable();
            assert_eq!(got, brute(&pts, qx, qy), "query ({qx},{qy})");
        }
    }

    #[test]
    fn pseudo_random_points_match_brute_force() {
        let mut seed = 0xACE1u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 10_000) as f64 / 100.0
        };
        let pts: Vec<Point> = (0..3000)
            .map(|i| Point {
                x: next(),
                y: -next(),
                value: i,
            })
            .collect();
        let t = RTree::bulk_load(pts.clone(), 16);
        for _ in 0..20 {
            let (qx, qy) = (next(), -next());
            let (got, stats) = t.query_quadrant(qx, qy);
            let mut got: Vec<u64> = got.iter().map(|p| p.value).collect();
            got.sort_unstable();
            assert_eq!(got, brute(&pts, qx, qy));
            assert!(stats.nodes_visited >= 1);
        }
    }

    #[test]
    fn selective_probes_visit_little() {
        // A probe matching nothing should prune subtrees, not test every
        // point.
        let pts = grid(40); // 1600 points
        let t = RTree::bulk_load(pts, 16);
        let (hits, stats) = t.query_quadrant(1e9, -1e9);
        assert!(hits.is_empty());
        assert!(
            stats.points_tested < 200,
            "expected pruning, tested {}",
            stats.points_tested
        );
    }

    #[test]
    fn empty_and_single() {
        let t = RTree::bulk_load(Vec::new(), 8);
        assert!(t.is_empty());
        assert!(t.query_quadrant(0.0, 0.0).0.is_empty());
        let t = RTree::bulk_load(
            vec![Point {
                x: 1.0,
                y: -1.0,
                value: 7,
            }],
            8,
        );
        assert_eq!(t.query_quadrant(0.5, 0.0).0.len(), 1);
        assert_eq!(t.query_quadrant(1.5, 0.0).0.len(), 0);
    }
}
