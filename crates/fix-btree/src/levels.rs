//! Size-tiered levels of frozen [`SortedRun`]s — the middle of the
//! LSM-style write path between the active in-memory run and the base
//! B+-tree.
//!
//! The engine freezes the active run into level 0 whenever a WAL segment
//! seals. When a level accumulates `fanout` runs they are folded by one
//! k-way merge into a single run on the next level, cascading as levels
//! fill. The base tree plays the role of the final level and is only
//! rewritten by compaction, which collapses everything here back into it.
//!
//! Read amplification is therefore bounded by the policy: at most
//! `fanout - 1` runs per level and `O(log_fanout(runs))` levels, so a
//! merged scan touches the base tree, every frozen run, and the active
//! run — a capped, slowly-growing constant rather than one run per batch.
//!
//! Keys across runs are globally unique (the key encodes each entry's
//! sequence number), so any merge order yields the same byte stream and
//! tiering stays invisible to the byte-identity invariants: merging all
//! runs always equals the single sorted run a rebuild would produce.

use crate::run::SortedRun;

/// Detail of one cascade merge [`TieredRuns::push_run_detailed`] ran, for
/// flight-recorder narration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergeDetail {
    /// The level whose runs were folded (output lands on `level + 1`).
    pub level: usize,
    /// Runs consumed by the merge.
    pub runs_in: usize,
    /// Entries in the merged output run.
    pub entries: u64,
    /// Wall time of the merge, nanoseconds.
    pub wall_ns: u64,
}

/// Per-level shape of the tier stack, for stats surfaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelStats {
    /// Level index (0 = freshest, fed by sealed WAL segments).
    pub level: usize,
    /// Frozen runs currently on this level.
    pub runs: usize,
    /// Total entries across the level's runs.
    pub entries: u64,
    /// Approximate resident bytes across the level's runs.
    pub bytes: u64,
}

/// Frozen runs organized into size-tiered levels (see module docs).
#[derive(Debug, Clone)]
pub struct TieredRuns {
    key_len: usize,
    fanout: usize,
    /// `levels[0]` is fed directly; higher levels hold bigger, older runs.
    /// Within a level, runs are ordered oldest first.
    levels: Vec<Vec<SortedRun>>,
}

impl TieredRuns {
    /// An empty tier stack. `fanout` is the merge trigger: a level holding
    /// this many runs folds into one run on the next level (min 2).
    pub fn new(key_len: usize, fanout: usize) -> Self {
        Self {
            key_len,
            fanout: fanout.max(2),
            levels: Vec::new(),
        }
    }

    /// The merge fanout.
    pub fn fanout(&self) -> usize {
        self.fanout
    }

    /// Freezes `run` into level 0 and cascades merges while any level is
    /// full. Returns how many merges ran (0 on the common path).
    pub fn push_run(&mut self, run: SortedRun) -> usize {
        self.push_run_detailed(run).len()
    }

    /// [`TieredRuns::push_run`] with per-merge detail — which level
    /// folded, how many runs went in, the output size, and the merge's
    /// wall time — so callers can narrate each cascade step.
    pub fn push_run_detailed(&mut self, run: SortedRun) -> Vec<MergeDetail> {
        assert_eq!(run.key_len(), self.key_len, "key length mismatch");
        let mut merges = Vec::new();
        if run.is_empty() {
            return merges;
        }
        if self.levels.is_empty() {
            self.levels.push(Vec::new());
        }
        self.levels[0].push(run);
        let mut level = 0;
        while level < self.levels.len() && self.levels[level].len() >= self.fanout {
            let t0 = std::time::Instant::now();
            let runs = std::mem::take(&mut self.levels[level]);
            let refs: Vec<&SortedRun> = runs.iter().collect();
            let merged = merge_runs(self.key_len, &refs);
            if self.levels.len() == level + 1 {
                self.levels.push(Vec::new());
            }
            merges.push(MergeDetail {
                level,
                runs_in: runs.len(),
                entries: merged.len() as u64,
                wall_ns: u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
            });
            self.levels[level + 1].push(merged);
            level += 1;
        }
        merges
    }

    /// All live runs, oldest data first: deepest level outward, and within
    /// a level oldest run first. Merging the result (any order — keys are
    /// unique) plus the active run reproduces the full delta stream.
    pub fn runs(&self) -> Vec<&SortedRun> {
        let mut out = Vec::new();
        for level in self.levels.iter().rev() {
            out.extend(level.iter());
        }
        out
    }

    /// Total entries across all frozen runs.
    pub fn len(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.iter())
            .map(|r| r.len())
            .sum()
    }

    /// Whether no frozen runs exist.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(|l| l.is_empty())
    }

    /// Number of live frozen runs.
    pub fn run_count(&self) -> usize {
        self.levels.iter().map(|l| l.len()).sum()
    }

    /// Approximate resident bytes across all frozen runs.
    pub fn size_bytes(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| l.iter())
            .map(|r| r.size_bytes())
            .sum()
    }

    /// Per-level shapes, level 0 first. Empty levels are included so the
    /// depth of the stack is visible.
    pub fn level_stats(&self) -> Vec<LevelStats> {
        self.levels
            .iter()
            .enumerate()
            .map(|(i, runs)| LevelStats {
                level: i,
                runs: runs.len(),
                entries: runs.iter().map(|r| r.len() as u64).sum(),
                bytes: runs.iter().map(|r| r.size_bytes() as u64).sum(),
            })
            .collect()
    }

    /// Drops every frozen run (compaction folded them into the base).
    pub fn clear(&mut self) {
        self.levels.clear();
    }
}

/// K-way merges `runs` into one sorted run. Ties (impossible for the
/// engine's unique keys, but defined anyway) break toward the earlier
/// source, matching the stable two-way merge this generalizes.
pub fn merge_runs(key_len: usize, runs: &[&SortedRun]) -> SortedRun {
    let total = runs.iter().map(|r| r.len()).sum();
    let mut out: Vec<(Vec<u8>, u64)> = Vec::with_capacity(total);
    for (k, v) in KMergeIter::new(runs.iter().map(|r| r.as_slice()).collect()) {
        out.push((k.to_vec(), v));
    }
    SortedRun::from_sorted(key_len, out)
}

/// Lazy k-way merge over sorted entry slices: yields globally key-ordered
/// `(key, value)` pairs, breaking ties toward the earlier source.
pub struct KMergeIter<'a> {
    sources: Vec<&'a [(Vec<u8>, u64)]>,
    cursors: Vec<usize>,
}

impl<'a> KMergeIter<'a> {
    /// Merges the given sorted slices.
    pub fn new(sources: Vec<&'a [(Vec<u8>, u64)]>) -> Self {
        let cursors = vec![0; sources.len()];
        Self { sources, cursors }
    }
}

impl<'a> Iterator for KMergeIter<'a> {
    type Item = (&'a [u8], u64);

    fn next(&mut self) -> Option<Self::Item> {
        // Linear scan over the heads: the engine's k is small (bounded by
        // the tiering policy), so this beats a heap on constant factors.
        let mut best: Option<(usize, &'a [u8])> = None;
        for (i, src) in self.sources.iter().enumerate() {
            if let Some((k, _)) = src.get(self.cursors[i]) {
                match best {
                    Some((_, bk)) if bk <= k.as_slice() => {}
                    _ => best = Some((i, k.as_slice())),
                }
            }
        }
        let (i, _) = best?;
        let (k, v) = &self.sources[i][self.cursors[i]];
        self.cursors[i] += 1;
        Some((k.as_slice(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_of(pairs: &[(u8, u64)]) -> SortedRun {
        let mut r = SortedRun::new(1);
        for (k, v) in pairs {
            r.insert(&[*k], *v);
        }
        r
    }

    #[test]
    fn kmerge_is_globally_ordered_and_tie_breaks_toward_earlier_source() {
        let a = run_of(&[(1, 10), (5, 50)]);
        let b = run_of(&[(2, 20), (5, 51), (9, 90)]);
        let merged = merge_runs(1, &[&a, &b]);
        let got: Vec<(Vec<u8>, u64)> = merged.iter().map(|(k, v)| (k.to_vec(), v)).collect();
        assert_eq!(
            got,
            vec![
                (vec![1], 10),
                (vec![2], 20),
                (vec![5], 50), // source 0 wins the tie
                (vec![5], 51),
                (vec![9], 90),
            ]
        );
    }

    #[test]
    fn push_run_cascades_merges_at_fanout() {
        let mut tiers = TieredRuns::new(1, 2);
        assert_eq!(tiers.push_run(run_of(&[(1, 1)])), 0);
        // Second run fills level 0 (fanout 2) → merge into level 1.
        assert_eq!(tiers.push_run(run_of(&[(2, 2)])), 1);
        assert_eq!(tiers.run_count(), 1);
        assert_eq!(tiers.len(), 2);
        // Two more runs: level 0 merge + level 1 now has 2 → cascades.
        tiers.push_run(run_of(&[(3, 3)]));
        let merges = tiers.push_run(run_of(&[(4, 4)]));
        assert_eq!(merges, 2, "level-0 merge cascades into level 1");
        assert_eq!(tiers.run_count(), 1);
        let stats = tiers.level_stats();
        assert_eq!(stats.last().unwrap().entries, 4);
        // Every level respects the fanout cap → bounded read amplification.
        assert!(stats.iter().all(|l| l.runs < tiers.fanout()));
    }

    #[test]
    fn merged_stream_equals_one_big_sorted_run() {
        let mut tiers = TieredRuns::new(1, 3);
        let mut all: Vec<(Vec<u8>, u64)> = Vec::new();
        for batch in 0..7u64 {
            let pairs: Vec<(u8, u64)> = (0..5)
                .map(|i| ((batch * 5 + i) as u8 ^ 0x35, batch * 5 + i))
                .collect();
            for (k, v) in &pairs {
                all.push((vec![*k], *v));
            }
            tiers.push_run(run_of(&pairs));
        }
        all.sort();
        let refs = tiers.runs();
        let merged = merge_runs(1, &refs);
        let got: Vec<(Vec<u8>, u64)> = merged.iter().map(|(k, v)| (k.to_vec(), v)).collect();
        assert_eq!(got, all, "tiering is invisible to the merged stream");
    }

    #[test]
    fn empty_runs_are_ignored() {
        let mut tiers = TieredRuns::new(1, 2);
        assert_eq!(tiers.push_run(SortedRun::new(1)), 0);
        assert!(tiers.is_empty());
        assert_eq!(tiers.level_stats().len(), 0);
    }
}
