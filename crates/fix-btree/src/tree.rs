//! The B+-tree proper.
//!
//! Nodes live on buffer-pool pages. For modification we deserialize a node
//! into memory, mutate, and re-serialize — with ~200 entries per page this
//! costs a memcpy and keeps the split logic obviously correct; the I/O
//! pattern (the part the experiments measure) is identical to an in-place
//! implementation.

use std::sync::atomic::{AtomicU64, Ordering};

use fix_obs::{MetricsRegistry, Reportable};
use fix_storage::{PageGuard, PageId, PageSpace, StorageError, PAGE_SIZE};

/// Offset of the entry area in a node page.
const HDR: usize = 12;
/// "No next leaf" sentinel.
const NO_PAGE: u64 = u64::MAX;

/// Tree shape statistics (Table 1 reports index sizes; benches report I/O).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeStats {
    /// Height (1 = a single leaf).
    pub height: usize,
    /// Number of pages owned by the tree.
    pub pages: u64,
    /// Number of key/value entries.
    pub entries: u64,
    /// Page-granular size in bytes.
    pub size_bytes: u64,
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        entries: Vec<(Vec<u8>, u64)>,
        next: u64,
    },
    Internal {
        keys: Vec<Vec<u8>>,
        children: Vec<u64>,
    },
}

/// Cumulative scan-work counters since the tree was opened (relaxed
/// atomics — `&self` scans from any number of threads tally safely).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Range scans started (`range`, `iter`, and `get` each count one).
    pub scans: u64,
    /// Entries yielded across all scans.
    pub entries_scanned: u64,
}

#[derive(Default)]
struct ScanCounters {
    scans: AtomicU64,
    entries: AtomicU64,
}

/// A B+-tree with fixed-length byte keys and `u64` values.
pub struct BTree {
    pool: PageSpace,
    key_len: usize,
    root: PageId,
    height: usize,
    entries: u64,
    pages: u64,
    scan_counters: ScanCounters,
}

impl BTree {
    /// Creates an empty tree with `key_len`-byte keys on `pool`.
    pub fn new(pool: PageSpace, key_len: usize) -> Self {
        assert!((1..=256).contains(&key_len), "unsupported key length");
        let root = pool.allocate();
        let mut t = Self {
            pool,
            key_len,
            root,
            height: 1,
            entries: 0,
            pages: 1,
            scan_counters: ScanCounters::default(),
        };
        t.store(
            root,
            &Node::Leaf {
                entries: Vec::new(),
                next: NO_PAGE,
            },
        );
        t
    }

    /// Builds a tree bottom-up from entries already sorted by key
    /// (ascending; equal keys must be adjacent). Leaves are packed full
    /// and chained left-to-right, then each internal level is built over
    /// the one below it — one page write per page, no splits. This is the
    /// loading path for batch index construction; the resulting tree
    /// accepts ordinary [`insert`](Self::insert) calls afterwards.
    ///
    /// # Panics
    /// Panics if the input is not sorted or a key has the wrong length.
    pub fn bulk_load<I>(pool: PageSpace, key_len: usize, sorted: I) -> Self
    where
        I: IntoIterator<Item = (Vec<u8>, u64)>,
    {
        assert!((1..=256).contains(&key_len), "unsupported key length");
        let entries: Vec<(Vec<u8>, u64)> = sorted.into_iter().collect();
        if entries.is_empty() {
            return Self::new(pool, key_len);
        }
        for (k, _) in &entries {
            assert_eq!(k.len(), key_len, "key length mismatch");
        }
        for w in entries.windows(2) {
            assert!(w[0].0 <= w[1].0, "bulk_load input not sorted");
        }
        let total = entries.len() as u64;
        let mut t = Self {
            pool,
            key_len,
            root: PageId(0), // patched below
            height: 1,
            entries: 0,
            pages: 0,
            scan_counters: ScanCounters::default(),
        };

        // Leaf level: pack `leaf_cap` entries per page, chain the pages.
        let cap = t.leaf_cap();
        let leaf_count = entries.len().div_ceil(cap);
        let leaf_pages: Vec<PageId> = (0..leaf_count).map(|_| t.alloc()).collect();
        // `(subtree min key, page)` for the level under construction.
        let mut level: Vec<(Vec<u8>, u64)> = Vec::with_capacity(leaf_count);
        let mut iter = entries.into_iter();
        for (i, page) in leaf_pages.iter().enumerate() {
            let chunk: Vec<(Vec<u8>, u64)> = iter.by_ref().take(cap).collect();
            level.push((chunk[0].0.clone(), page.0));
            let next = leaf_pages.get(i + 1).map_or(NO_PAGE, |p| p.0);
            t.store(
                *page,
                &Node::Leaf {
                    entries: chunk,
                    next,
                },
            );
        }

        // Internal levels: group children, separator = right child's min.
        let mut height = 1;
        while level.len() > 1 {
            let per = t.internal_cap() + 1;
            let mut next_level = Vec::with_capacity(level.len().div_ceil(per));
            let mut i = 0;
            while i < level.len() {
                let mut take = per.min(level.len() - i);
                // Never leave a single orphan child for the next group:
                // an internal node must have at least one key.
                if level.len() - i - take == 1 {
                    take -= 1;
                }
                let group = &level[i..i + take];
                let keys: Vec<Vec<u8>> = group[1..].iter().map(|(k, _)| k.clone()).collect();
                let children: Vec<u64> = group.iter().map(|&(_, p)| p).collect();
                let page = t.alloc();
                t.store(page, &Node::Internal { keys, children });
                next_level.push((group[0].0.clone(), page.0));
                i += take;
            }
            level = next_level;
            height += 1;
        }

        t.root = PageId(level[0].1);
        t.height = height;
        t.entries = total;
        t
    }

    /// Max entries in a leaf page.
    fn leaf_cap(&self) -> usize {
        (PAGE_SIZE - HDR) / (self.key_len + 8)
    }

    /// Max keys in an internal page (children = keys + 1).
    fn internal_cap(&self) -> usize {
        (PAGE_SIZE - HDR - 8) / (self.key_len + 8)
    }

    fn load(&self, page: PageId) -> Node {
        let key_len = self.key_len;
        self.pool.with_page(page, |b| {
            let kind = b[0];
            let count = u16::from_le_bytes([b[2], b[3]]) as usize;
            if kind == 0 {
                let next = u64::from_le_bytes(b[4..12].try_into().expect("8"));
                let stride = key_len + 8;
                let entries = (0..count)
                    .map(|i| {
                        let off = HDR + i * stride;
                        let key = b[off..off + key_len].to_vec();
                        let val = u64::from_le_bytes(
                            b[off + key_len..off + stride].try_into().expect("8"),
                        );
                        (key, val)
                    })
                    .collect();
                Node::Leaf { entries, next }
            } else {
                let mut children = Vec::with_capacity(count + 1);
                for i in 0..=count {
                    let off = HDR + i * 8;
                    children.push(u64::from_le_bytes(b[off..off + 8].try_into().expect("8")));
                }
                let key_base = HDR + (count + 1) * 8;
                let keys = (0..count)
                    .map(|i| {
                        let off = key_base + i * key_len;
                        b[off..off + key_len].to_vec()
                    })
                    .collect();
                Node::Internal { keys, children }
            }
        })
    }

    fn store(&mut self, page: PageId, node: &Node) {
        let key_len = self.key_len;
        let leaf_cap = self.leaf_cap();
        let internal_cap = self.internal_cap();
        self.pool.with_page_mut(page, |b| match node {
            Node::Leaf { entries, next } => {
                assert!(entries.len() <= leaf_cap, "leaf overflow");
                b[0] = 0;
                b[2..4].copy_from_slice(&(entries.len() as u16).to_le_bytes());
                b[4..12].copy_from_slice(&next.to_le_bytes());
                let stride = key_len + 8;
                for (i, (k, v)) in entries.iter().enumerate() {
                    let off = HDR + i * stride;
                    b[off..off + key_len].copy_from_slice(k);
                    b[off + key_len..off + stride].copy_from_slice(&v.to_le_bytes());
                }
            }
            Node::Internal { keys, children } => {
                assert!(keys.len() <= internal_cap, "internal overflow");
                assert_eq!(children.len(), keys.len() + 1);
                b[0] = 1;
                b[2..4].copy_from_slice(&(keys.len() as u16).to_le_bytes());
                for (i, c) in children.iter().enumerate() {
                    let off = HDR + i * 8;
                    b[off..off + 8].copy_from_slice(&c.to_le_bytes());
                }
                let key_base = HDR + children.len() * 8;
                for (i, k) in keys.iter().enumerate() {
                    let off = key_base + i * key_len;
                    b[off..off + key_len].copy_from_slice(k);
                }
            }
        });
    }

    fn alloc(&mut self) -> PageId {
        self.pages += 1;
        self.pool.allocate()
    }

    /// Inserts `(key, value)`. Equal keys are allowed (they are stored
    /// adjacently); FIX keys carry a sequence suffix and are unique.
    ///
    /// # Panics
    /// Panics if `key.len()` differs from the tree's key length.
    pub fn insert(&mut self, key: &[u8], value: u64) {
        assert_eq!(key.len(), self.key_len, "key length mismatch");
        if let Some((sep, right)) = self.insert_rec(self.root, key, value) {
            let new_root = self.alloc();
            let node = Node::Internal {
                keys: vec![sep],
                children: vec![self.root.0, right.0],
            };
            self.store(new_root, &node);
            self.root = new_root;
            self.height += 1;
        }
        self.entries += 1;
    }

    fn insert_rec(&mut self, page: PageId, key: &[u8], value: u64) -> Option<(Vec<u8>, PageId)> {
        match self.load(page) {
            Node::Leaf { mut entries, next } => {
                let pos = entries.partition_point(|(k, _)| k.as_slice() <= key);
                entries.insert(pos, (key.to_vec(), value));
                if entries.len() <= self.leaf_cap() {
                    self.store(page, &Node::Leaf { entries, next });
                    return None;
                }
                // Split.
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0.clone();
                let right_page = self.alloc();
                self.store(
                    right_page,
                    &Node::Leaf {
                        entries: right_entries,
                        next,
                    },
                );
                self.store(
                    page,
                    &Node::Leaf {
                        entries,
                        next: right_page.0,
                    },
                );
                Some((sep, right_page))
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                // Child i covers keys in [keys[i-1], keys[i]).
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let child = PageId(children[idx]);
                let (sep, right) = self.insert_rec(child, key, value)?;
                keys.insert(idx, sep);
                children.insert(idx + 1, right.0);
                if keys.len() <= self.internal_cap() {
                    self.store(page, &Node::Internal { keys, children });
                    return None;
                }
                // Split; the middle key moves up.
                let mid = keys.len() / 2;
                let up = keys[mid].clone();
                let right_keys = keys.split_off(mid + 1);
                keys.pop(); // `up`
                let right_children = children.split_off(mid + 1);
                let right_page = self.alloc();
                self.store(
                    right_page,
                    &Node::Internal {
                        keys: right_keys,
                        children: right_children,
                    },
                );
                self.store(page, &Node::Internal { keys, children });
                Some((up, right_page))
            }
        }
    }

    /// Exact lookup: the value of the *first* entry with exactly `key`.
    pub fn get(&self, key: &[u8]) -> Option<u64> {
        self.range(key, None)
            .next()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Iterates entries with `start ≤ key` (and `key < end` if an end bound
    /// is given), in key order. The descent and the scan read node pages
    /// through pinned page guards — no node is materialized into an owned
    /// buffer, and the scan keeps exactly one leaf pinned at a time.
    ///
    /// # Panics
    /// Fail-stop on I/O or checksum failure during the descent; use
    /// [`BTree::try_range`] where the caller can degrade gracefully.
    pub fn range<'a>(&'a self, start: &[u8], end: Option<&[u8]>) -> RangeScan<'a> {
        self.try_range(start, end)
            .unwrap_or_else(|e| panic!("invariant: B-tree descent must be readable: {e}"))
    }

    /// [`BTree::range`] surfacing storage failures. The descent's page
    /// reads fail here; a failure while the scan later advances along the
    /// leaf chain ends iteration early and parks the error on the scan —
    /// check [`RangeScan::take_error`] after exhaustion.
    pub fn try_range<'a>(
        &'a self,
        start: &[u8],
        end: Option<&[u8]>,
    ) -> Result<RangeScan<'a>, StorageError> {
        assert_eq!(start.len(), self.key_len);
        self.scan_counters.scans.fetch_add(1, Ordering::Relaxed);
        let key_len = self.key_len;
        // Descend to the leaf that may contain `start`.
        let mut page = self.root;
        loop {
            let guard = self.pool.try_pin(page)?;
            let step = {
                let b = guard.data();
                let count = u16::from_le_bytes([b[2], b[3]]) as usize;
                if b[0] == 1 {
                    // Internal: first child whose separator exceeds `start`
                    // (binary search over the in-page key array).
                    let key_base = HDR + (count + 1) * 8;
                    let (mut lo, mut hi) = (0, count);
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        let off = key_base + mid * key_len;
                        if &b[off..off + key_len] <= start {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    let off = HDR + lo * 8;
                    Err(u64::from_le_bytes(b[off..off + 8].try_into().expect("8")))
                } else {
                    // Leaf: first entry with `key ≥ start`.
                    let stride = key_len + 8;
                    let (mut lo, mut hi) = (0, count);
                    while lo < hi {
                        let mid = (lo + hi) / 2;
                        let off = HDR + mid * stride;
                        if &b[off..off + key_len] < start {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    Ok(lo)
                }
            };
            match step {
                Err(child) => page = PageId(child),
                Ok(pos) => {
                    return Ok(RangeScan {
                        tree: self,
                        leaf: Some(guard),
                        pos,
                        end: end.map(<[u8]>::to_vec),
                        yielded: 0,
                        error: None,
                    })
                }
            }
        }
    }

    /// Iterates the whole tree in key order.
    pub fn iter(&self) -> RangeScan<'_> {
        let start = vec![0u8; self.key_len];
        self.range(&start, None)
    }

    /// [`BTree::iter`] surfacing storage failures (see
    /// [`BTree::try_range`]).
    pub fn try_iter(&self) -> Result<RangeScan<'_>, StorageError> {
        let start = vec![0u8; self.key_len];
        self.try_range(&start, None)
    }

    /// Cumulative scan-work counters since the tree was opened.
    pub fn scan_stats(&self) -> ScanStats {
        ScanStats {
            scans: self.scan_counters.scans.load(Ordering::Relaxed),
            entries_scanned: self.scan_counters.entries.load(Ordering::Relaxed),
        }
    }

    /// Current statistics.
    pub fn stats(&self) -> BTreeStats {
        BTreeStats {
            height: self.height,
            pages: self.pages,
            entries: self.entries,
            size_bytes: self.pages * PAGE_SIZE as u64,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.entries
    }

    /// True if no entry was inserted.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The tree's page space (shared I/O statistics).
    pub fn pool(&self) -> &PageSpace {
        &self.pool
    }

    /// The root page (persisted by the paged database format).
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Reconstructs a tree over pages that already exist in `pool`'s
    /// backend (the paged-open path): `root`/`height`/`entries`/`pages`
    /// come from persisted metadata, and no node is read until a lookup
    /// pins it.
    pub fn attach(
        pool: PageSpace,
        key_len: usize,
        root: PageId,
        height: usize,
        entries: u64,
        pages: u64,
    ) -> Self {
        assert!((1..=256).contains(&key_len), "unsupported key length");
        Self {
            pool,
            key_len,
            root,
            height,
            entries,
            pages,
            scan_counters: ScanCounters::default(),
        }
    }

    /// Verifies B+-tree invariants (test/diagnostic helper): key order
    /// within and across nodes, child counts, and uniform leaf depth.
    /// Returns the total entry count found.
    pub fn check_invariants(&self) -> u64 {
        fn rec(
            t: &BTree,
            page: PageId,
            lo: Option<&[u8]>,
            hi: Option<&[u8]>,
            depth: usize,
            leaf_depth: &mut Option<usize>,
        ) -> u64 {
            match t.load(page) {
                Node::Leaf { entries, .. } => {
                    match leaf_depth {
                        Some(d) => assert_eq!(*d, depth, "ragged leaf depth"),
                        None => *leaf_depth = Some(depth),
                    }
                    for w in entries.windows(2) {
                        assert!(w[0].0 <= w[1].0, "leaf keys out of order");
                    }
                    if let (Some(lo), Some((k, _))) = (lo, entries.first()) {
                        assert!(k.as_slice() >= lo, "leaf key below lower bound");
                    }
                    if let (Some(hi), Some((k, _))) = (hi, entries.last()) {
                        assert!(
                            k.as_slice() < hi || k.as_slice() <= hi,
                            "leaf key above bound"
                        );
                    }
                    entries.len() as u64
                }
                Node::Internal { keys, children } => {
                    assert!(!keys.is_empty(), "empty internal node");
                    assert_eq!(children.len(), keys.len() + 1);
                    for w in keys.windows(2) {
                        assert!(w[0] <= w[1], "internal keys out of order");
                    }
                    let mut total = 0;
                    for (i, &c) in children.iter().enumerate() {
                        let lo2 = if i == 0 {
                            lo
                        } else {
                            Some(keys[i - 1].as_slice())
                        };
                        let hi2 = keys.get(i).map(Vec::as_slice).or(hi);
                        total += rec(t, PageId(c), lo2, hi2, depth + 1, leaf_depth);
                    }
                    total
                }
            }
        }
        let mut leaf_depth = None;
        let found = rec(self, self.root, None, None, 1, &mut leaf_depth);
        assert_eq!(found, self.entries, "entry count mismatch");
        found
    }
}

/// Iterator over a key range, following the leaf chain. Holds one pinned
/// leaf at a time and reads entries straight off the page — dropping the
/// scan unpins the leaf.
pub struct RangeScan<'a> {
    tree: &'a BTree,
    leaf: Option<PageGuard>,
    pos: usize,
    end: Option<Vec<u8>>,
    /// Entries yielded so far; flushed into the tree's counters once on
    /// drop so the scan hot loop touches no shared cache lines.
    yielded: u64,
    /// A leaf-chain read failure mid-scan. Iteration ends early when this
    /// is set; callers that must distinguish "range exhausted" from
    /// "range truncated by damage" check [`RangeScan::take_error`].
    error: Option<StorageError>,
}

impl RangeScan<'_> {
    /// Takes the storage error that ended this scan early, if any.
    /// `None` after exhaustion means every entry in range was yielded.
    pub fn take_error(&mut self) -> Option<StorageError> {
        self.error.take()
    }
}

/// One step of a guard-held scan: yield an entry, hop to the next leaf,
/// or finish.
enum ScanStep {
    Yield(Vec<u8>, u64),
    Advance(u64),
    Done,
}

impl Iterator for RangeScan<'_> {
    type Item = (Vec<u8>, u64);

    fn next(&mut self) -> Option<Self::Item> {
        let key_len = self.tree.key_len;
        loop {
            let guard = self.leaf.take()?;
            let step = {
                let b = guard.data();
                let count = u16::from_le_bytes([b[2], b[3]]) as usize;
                debug_assert_eq!(b[0], 0, "leaf chain points to internal node");
                if self.pos < count {
                    let stride = key_len + 8;
                    let off = HDR + self.pos * stride;
                    let key = &b[off..off + key_len];
                    match &self.end {
                        Some(end) if key >= end.as_slice() => ScanStep::Done,
                        _ => ScanStep::Yield(
                            key.to_vec(),
                            u64::from_le_bytes(
                                b[off + key_len..off + stride].try_into().expect("8"),
                            ),
                        ),
                    }
                } else {
                    ScanStep::Advance(u64::from_le_bytes(b[4..12].try_into().expect("8")))
                }
            };
            match step {
                ScanStep::Yield(k, v) => {
                    self.pos += 1;
                    self.yielded += 1;
                    self.leaf = Some(guard);
                    return Some((k, v));
                }
                ScanStep::Done | ScanStep::Advance(NO_PAGE) => return None,
                ScanStep::Advance(next) => {
                    self.pos = 0;
                    match self.tree.pool.try_pin(PageId(next)) {
                        Ok(guard) => self.leaf = Some(guard),
                        Err(e) => {
                            // Park the failure and end the scan: the
                            // caller decides whether a truncated range is
                            // fatal (query path) or tolerable (salvage).
                            self.error = Some(e);
                            return None;
                        }
                    }
                }
            }
        }
    }
}

impl Drop for RangeScan<'_> {
    fn drop(&mut self) {
        if self.yielded > 0 {
            self.tree
                .scan_counters
                .entries
                .fetch_add(self.yielded, Ordering::Relaxed);
        }
    }
}

impl Reportable for BTreeStats {
    /// Sets shape gauges (idempotent — levels, not work).
    fn report(&self, registry: &MetricsRegistry) {
        registry.gauge("fix_btree_height").set(self.height as i64);
        registry.gauge("fix_btree_pages").set(self.pages as i64);
        registry.gauge("fix_btree_entries").set(self.entries as i64);
        registry
            .gauge("fix_btree_size_bytes")
            .set(self.size_bytes as i64);
    }
}

impl Reportable for ScanStats {
    /// Sets cumulative scan-work gauges (the tree's atomics are the source
    /// of truth; re-reporting overwrites with the latest totals).
    fn report(&self, registry: &MetricsRegistry) {
        registry.gauge("fix_btree_scans").set(self.scans as i64);
        registry
            .gauge("fix_btree_scanned_entries")
            .set(self.entries_scanned as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(key_len: usize) -> BTree {
        BTree::new(PageSpace::in_memory(64), key_len)
    }

    fn key8(v: u64) -> Vec<u8> {
        v.to_be_bytes().to_vec()
    }

    #[test]
    fn insert_and_get() {
        let mut t = tree(8);
        t.insert(&key8(5), 50);
        t.insert(&key8(1), 10);
        t.insert(&key8(9), 90);
        assert_eq!(t.get(&key8(5)), Some(50));
        assert_eq!(t.get(&key8(1)), Some(10));
        assert_eq!(t.get(&key8(2)), None);
        t.check_invariants();
    }

    #[test]
    fn many_inserts_split_and_stay_sorted() {
        let mut t = tree(8);
        // Insert in a scrambled but deterministic order.
        let n = 5000u64;
        let mut v: Vec<u64> = (0..n).collect();
        // Deterministic shuffle.
        let mut seed = 42u64;
        for i in (1..v.len()).rev() {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (seed % (i as u64 + 1)) as usize;
            v.swap(i, j);
        }
        for &x in &v {
            t.insert(&key8(x), x * 2);
        }
        assert_eq!(t.len(), n);
        assert!(t.stats().height >= 2, "{:?}", t.stats());
        t.check_invariants();
        // Full scan is sorted and complete.
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all.len(), n as usize);
        for (i, (k, val)) in all.iter().enumerate() {
            assert_eq!(k, &key8(i as u64));
            assert_eq!(*val, i as u64 * 2);
        }
    }

    #[test]
    fn range_scan_bounds() {
        let mut t = tree(8);
        for i in 0..100u64 {
            t.insert(&key8(i * 10), i);
        }
        let got: Vec<u64> = t
            .range(&key8(250), Some(&key8(500)))
            .map(|(_, v)| v)
            .collect();
        // Keys 250..500 exclusive → 250,260,...,490 → values 25..49.
        assert_eq!(got, (25..50).collect::<Vec<_>>());
        // Start below the smallest key.
        let from_start: Vec<u64> = t.range(&key8(0), Some(&key8(30))).map(|(_, v)| v).collect();
        assert_eq!(from_start, vec![0, 1, 2]);
        // Empty range.
        assert_eq!(t.range(&key8(991), None).count(), 0);
    }

    #[test]
    fn duplicate_keys_are_kept() {
        let mut t = tree(8);
        for v in 0..10u64 {
            t.insert(&key8(7), v);
        }
        let vals: Vec<u64> = t.range(&key8(7), Some(&key8(8))).map(|(_, v)| v).collect();
        assert_eq!(vals.len(), 10);
        t.check_invariants();
    }

    #[test]
    fn sequential_inserts() {
        let mut t = tree(8);
        for i in 0..3000u64 {
            t.insert(&key8(i), i);
        }
        t.check_invariants();
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all.len(), 3000);
    }

    #[test]
    fn reverse_sequential_inserts() {
        let mut t = tree(8);
        for i in (0..3000u64).rev() {
            t.insert(&key8(i), i);
        }
        t.check_invariants();
        assert_eq!(t.iter().count(), 3000);
    }

    #[test]
    fn wide_keys() {
        let mut t = tree(28);
        let mk = |i: u64| {
            let mut k = vec![0u8; 28];
            k[20..28].copy_from_slice(&i.to_be_bytes());
            k
        };
        for i in 0..2000 {
            t.insert(&mk(i), i);
        }
        t.check_invariants();
        let got: Vec<u64> = t.range(&mk(100), Some(&mk(110))).map(|(_, v)| v).collect();
        assert_eq!(got, (100..110).collect::<Vec<_>>());
    }

    #[test]
    fn stats_track_shape() {
        let mut t = tree(8);
        let s0 = t.stats();
        assert_eq!(s0.height, 1);
        assert_eq!(s0.pages, 1);
        for i in 0..10_000u64 {
            t.insert(&key8(i), i);
        }
        let s = t.stats();
        assert!(s.height >= 2);
        assert!(s.pages > 10);
        assert_eq!(s.entries, 10_000);
        assert_eq!(s.size_bytes, s.pages * PAGE_SIZE as u64);
    }

    #[test]
    fn bulk_load_matches_insertion_order_scan() {
        for n in [0u64, 1, 2, 200, 5000] {
            let sorted: Vec<(Vec<u8>, u64)> = (0..n).map(|i| (key8(i), i * 3)).collect();
            let t = BTree::bulk_load(PageSpace::in_memory(64), 8, sorted.clone());
            assert_eq!(t.len(), n);
            t.check_invariants();
            let scanned: Vec<_> = t.iter().collect();
            assert_eq!(scanned, sorted, "scan mismatch at n={n}");
            if n > 0 {
                assert_eq!(t.get(&key8(0)), Some(0));
                assert_eq!(t.get(&key8(n - 1)), Some((n - 1) * 3));
                assert_eq!(t.get(&key8(n)), None);
            }
        }
    }

    #[test]
    fn bulk_load_then_insert_keeps_invariants() {
        let sorted: Vec<(Vec<u8>, u64)> = (0..2000u64).map(|i| (key8(i * 2), i)).collect();
        let mut t = BTree::bulk_load(PageSpace::in_memory(64), 8, sorted);
        for i in 0..2000u64 {
            t.insert(&key8(i * 2 + 1), i + 10_000);
        }
        assert_eq!(t.len(), 4000);
        t.check_invariants();
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all.len(), 4000);
        for (i, (k, _)) in all.iter().enumerate() {
            assert_eq!(k, &key8(i as u64));
        }
    }

    #[test]
    fn bulk_load_range_scans_agree_with_inserted_tree() {
        let sorted: Vec<(Vec<u8>, u64)> = (0..1500u64).map(|i| (key8(i * 7), i)).collect();
        let bulk = BTree::bulk_load(PageSpace::in_memory(64), 8, sorted.clone());
        let mut inserted = tree(8);
        for (k, v) in &sorted {
            inserted.insert(k, *v);
        }
        for (lo, hi) in [(0u64, 100), (500, 5000), (9000, 11_000)] {
            let a: Vec<_> = bulk.range(&key8(lo), Some(&key8(hi))).collect();
            let b: Vec<_> = inserted.range(&key8(lo), Some(&key8(hi))).collect();
            assert_eq!(a, b, "range {lo}..{hi}");
        }
    }

    #[test]
    #[should_panic(expected = "not sorted")]
    fn bulk_load_rejects_unsorted_input() {
        let out_of_order = vec![(key8(5), 1), (key8(3), 2)];
        BTree::bulk_load(PageSpace::in_memory(64), 8, out_of_order);
    }

    #[test]
    fn scan_stats_count_scans_and_entries() {
        let mut t = tree(8);
        for i in 0..100u64 {
            t.insert(&key8(i), i);
        }
        assert_eq!(t.scan_stats(), ScanStats::default());
        assert_eq!(t.range(&key8(10), Some(&key8(20))).count(), 10);
        let s = t.scan_stats();
        assert_eq!(s.scans, 1);
        assert_eq!(s.entries_scanned, 10);
        // `get` runs a one-entry scan; iter scans everything.
        t.get(&key8(5));
        assert_eq!(t.iter().count(), 100);
        let s = t.scan_stats();
        assert_eq!(s.scans, 3);
        assert_eq!(s.entries_scanned, 111);
        // A dropped, half-consumed scan still flushes what it yielded.
        let mut scan = t.range(&key8(0), None);
        scan.next();
        scan.next();
        drop(scan);
        assert_eq!(t.scan_stats().entries_scanned, 113);
    }

    #[test]
    fn stats_report_as_gauges() {
        let mut t = tree(8);
        for i in 0..50u64 {
            t.insert(&key8(i), i);
        }
        t.iter().count();
        let reg = MetricsRegistry::new();
        t.stats().report(&reg);
        t.scan_stats().report(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("fix_btree_entries"), Some(50));
        assert_eq!(snap.gauge("fix_btree_scans"), Some(1));
        assert_eq!(snap.gauge("fix_btree_scanned_entries"), Some(50));
        assert!(snap.gauge("fix_btree_height").unwrap() >= 1);
    }

    #[test]
    fn try_range_surfaces_descent_failures() {
        // Attach over a backend that does not hold the root page: the
        // descent's first pin fails and try_range surfaces it.
        let pool = PageSpace::in_memory(4);
        let t = BTree::attach(pool, 8, PageId(42), 1, 0, 1);
        assert!(t.try_range(&key8(0), None).is_err());
        assert!(t.try_iter().is_err());
    }

    #[test]
    fn leaf_chain_damage_parks_an_error_on_the_scan() {
        use fix_storage::{BufferPool, FileBackend};
        let dir = std::env::temp_dir().join(format!("fix-btree-fault-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tree.pages");
        // 600 eight-byte-key entries span two leaves (leaf_cap = 511).
        let sorted: Vec<(Vec<u8>, u64)> = (0..600u64).map(|i| (key8(i), i)).collect();
        let (root, height, entries, pages, crcs) = {
            let pool = BufferPool::shared(16).attach(Box::new(FileBackend::create(&path).unwrap()));
            let t = BTree::bulk_load(pool.clone(), 8, sorted.clone());
            pool.flush().unwrap();
            let crcs: Vec<u32> = (0..pool.num_pages())
                .map(|i| pool.with_page(PageId(i), fix_storage::crc32))
                .collect();
            let s = t.stats();
            (t.root_page(), s.height, s.entries, s.pages, crcs)
        };
        // Damage the second leaf (bulk_load allocates leaves first, in
        // order, so it is page 1) on disk.
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.seek(SeekFrom::Start(PAGE_SIZE as u64 + 100)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        let pool = BufferPool::shared(16)
            .attach_verified(Box::new(FileBackend::open(&path).unwrap()), crcs);
        let t = BTree::attach(pool, 8, root, height, entries, pages);
        let mut scan = t.try_range(&key8(0), None).unwrap();
        let got: Vec<_> = scan.by_ref().collect();
        assert_eq!(got.len(), 511, "first leaf yielded, second truncated");
        let err = scan.take_error().expect("damage must be reported");
        assert!(matches!(err, StorageError::Corrupt { .. }), "{err}");
        // A bounded scan that never reaches the damage reports nothing.
        let mut scan = t.try_range(&key8(0), Some(&key8(100))).unwrap();
        assert_eq!(scan.by_ref().count(), 100);
        assert!(scan.take_error().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = tree(8);
        assert!(t.is_empty());
        assert_eq!(t.get(&key8(1)), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants();
    }
}
