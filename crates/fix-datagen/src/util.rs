//! Shared generator helpers: seeded RNG, XML writing, and text synthesis.

use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Creates the deterministic PRNG for a generator, mixing in a per-dataset
/// tag so different generators with the same seed do not correlate.
pub fn rng(seed: u64, tag: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Bernoulli draw.
pub fn chance(r: &mut ChaCha8Rng, p: f64) -> bool {
    r.gen::<f64>() < p
}

/// Uniform integer in `lo..=hi`.
pub fn between(r: &mut ChaCha8Rng, lo: usize, hi: usize) -> usize {
    r.gen_range(lo..=hi)
}

const WORDS: &[&str] = &[
    "query", "index", "tree", "graph", "pattern", "storage", "join", "stream", "matrix", "vector",
    "twig", "path", "node", "label", "value", "system", "data", "model", "cache", "page", "scan",
    "merge", "hash", "sort",
];

/// A short pseudo-sentence from the word pool.
pub fn words(r: &mut ChaCha8Rng, n: usize) -> String {
    let mut out = String::new();
    for i in 0..n {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(WORDS[r.gen_range(0..WORDS.len())]);
    }
    out
}

/// A person-name-like string.
pub fn person(r: &mut ChaCha8Rng) -> String {
    const FIRST: &[&str] = &[
        "John", "Mary", "Wei", "Tamer", "Ning", "Ihab", "Ana", "Sven",
    ];
    const LAST: &[&str] = &[
        "Smith", "Zhang", "Ozsu", "Ilyas", "Miller", "Kim", "Berg", "Rao",
    ];
    format!(
        "{} {}",
        FIRST[r.gen_range(0..FIRST.len())],
        LAST[r.gen_range(0..LAST.len())]
    )
}

/// A minimal XML writer that keeps generator code readable.
#[derive(Debug, Default)]
pub struct Xml {
    buf: String,
    stack: Vec<&'static str>,
}

impl Xml {
    /// Starts an empty document.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens `<tag>`.
    pub fn open(&mut self, tag: &'static str) -> &mut Self {
        self.buf.push('<');
        self.buf.push_str(tag);
        self.buf.push('>');
        self.stack.push(tag);
        self
    }

    /// Closes the innermost element.
    pub fn close(&mut self) -> &mut Self {
        let tag = self.stack.pop().expect("close without open");
        self.buf.push_str("</");
        self.buf.push_str(tag);
        self.buf.push('>');
        self
    }

    /// Emits `<tag/>`.
    pub fn empty(&mut self, tag: &'static str) -> &mut Self {
        self.buf.push('<');
        self.buf.push_str(tag);
        self.buf.push_str("/>");
        self
    }

    /// Emits `<tag>text</tag>` (escaped).
    pub fn leaf(&mut self, tag: &'static str, text: &str) -> &mut Self {
        self.open(tag);
        self.text(text);
        self.close()
    }

    /// Emits escaped character data.
    pub fn text(&mut self, text: &str) -> &mut Self {
        for c in text.chars() {
            match c {
                '&' => self.buf.push_str("&amp;"),
                '<' => self.buf.push_str("&lt;"),
                '>' => self.buf.push_str("&gt;"),
                _ => self.buf.push(c),
            }
        }
        self
    }

    /// Finishes the document.
    ///
    /// # Panics
    /// Panics if elements remain open.
    pub fn finish(self) -> String {
        assert!(self.stack.is_empty(), "unclosed element {:?}", self.stack);
        self.buf
    }
}

/// `words` with a uniformly random length in `lo..=hi` (avoids nested
/// mutable borrows of the RNG at call sites).
pub fn words_range(r: &mut ChaCha8Rng, lo: usize, hi: usize) -> String {
    let n = between(r, lo, hi);
    words(r, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(1, 2);
        let mut b = rng(1, 2);
        let va: u64 = a.gen();
        let vb: u64 = b.gen();
        assert_eq!(va, vb);
        let mut c = rng(1, 3);
        let vc: u64 = c.gen();
        assert_ne!(va, vc, "different tags must decorrelate");
    }

    #[test]
    fn xml_writer_builds_documents() {
        let mut x = Xml::new();
        x.open("a");
        x.leaf("b", "1 < 2");
        x.empty("c");
        x.close();
        assert_eq!(x.finish(), "<a><b>1 &lt; 2</b><c/></a>");
    }

    #[test]
    #[should_panic(expected = "unclosed element")]
    fn unclosed_panics() {
        let mut x = Xml::new();
        x.open("a");
        let _ = x.finish();
    }

    #[test]
    fn helpers_stay_in_bounds() {
        let mut r = rng(7, 7);
        for _ in 0..100 {
            let v = between(&mut r, 2, 5);
            assert!((2..=5).contains(&v));
        }
        assert!(!words(&mut r, 3).is_empty());
        assert!(person(&mut r).contains(' '));
    }
}
