//! XBench TCMD analogue: a large collection of small text-centric
//! documents (news-article-shaped) with mild structural variation.
//!
//! Element vocabulary covers the paper's TCMD queries:
//! `/article/epilog[acknoledgements]/references/a_id` (the paper's own
//! spelling), `/article/prolog[keywords]/authors/author/contact[phone]`,
//! `/article[epilog]/prolog/authors/author`.
//!
//! Branch probabilities are tuned so those three queries land in the
//! high/medium/low selectivity buckets, mirroring Table 2's TCMD rows.

use crate::util::{between, chance, person, rng, words, words_range, Xml};
use crate::GenConfig;

/// Generates the document collection (default ≈ 800 documents at scale 1).
pub fn tcmd(cfg: GenConfig) -> Vec<String> {
    let mut r = rng(cfg.seed, 0x7C3D);
    let n = cfg.count(800);
    (0..n).map(|_| one_article(&mut r)).collect()
}

fn one_article(r: &mut rand_chacha::ChaCha8Rng) -> String {
    let mut x = Xml::new();
    x.open("article");

    // Prolog: always present; keywords in ~70%.
    x.open("prolog");
    x.leaf("title", &words_range(r, 3, 7));
    if chance(r, 0.55) {
        x.leaf(
            "dateline",
            &format!(
                "200{}-0{}-1{}",
                between(r, 0, 5),
                between(r, 1, 9),
                between(r, 0, 9)
            ),
        );
    }
    x.open("authors");
    for _ in 0..between(r, 1, 4) {
        x.open("author");
        x.leaf("name", &person(r));
        if chance(r, 0.8) {
            x.open("contact");
            if chance(r, 0.55) {
                x.leaf("phone", &format!("+1-519-{}", between(r, 100_000, 999_999)));
            }
            if chance(r, 0.7) {
                x.leaf("email", &format!("user{}@example.org", between(r, 1, 9999)));
            }
            x.close();
        }
        x.close();
    }
    x.close(); // authors
    if chance(r, 0.7) {
        x.open("keywords");
        for _ in 0..between(r, 1, 5) {
            x.leaf("keyword", &words(r, 1));
        }
        x.close();
    }
    x.close(); // prolog

    // Body: a few sections of paragraphs.
    x.open("body");
    for _ in 0..between(r, 1, 3) {
        x.open("section");
        x.leaf("heading", &words_range(r, 2, 4));
        for _ in 0..between(r, 1, 4) {
            x.leaf("p", &words_range(r, 6, 18));
        }
        x.close();
    }
    x.close(); // body

    // Epilog in ~85% of articles; acknowledgements (paper's spelling) in
    // ~45% of epilogs; references in ~50%.
    if chance(r, 0.85) {
        x.open("epilog");
        if chance(r, 0.45) {
            x.leaf("acknoledgements", &words_range(r, 4, 10));
        }
        if chance(r, 0.5) {
            x.open("references");
            for _ in 0..between(r, 1, 6) {
                x.leaf("a_id", &format!("ref-{}", between(r, 1, 99999)));
            }
            x.close();
        }
        x.close();
    }
    x.close(); // article
    x.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_scaled() {
        let a = tcmd(GenConfig::scaled(0.05));
        let b = tcmd(GenConfig::scaled(0.05));
        assert_eq!(a, b, "same seed ⇒ same corpus");
        assert_eq!(a.len(), 40);
        let big = tcmd(GenConfig::scaled(0.1));
        assert_eq!(big.len(), 80);
    }

    #[test]
    fn documents_parse_and_contain_the_query_vocabulary() {
        let docs = tcmd(GenConfig::scaled(0.1));
        let mut lt = fix_xml::LabelTable::new();
        for d in &docs {
            fix_xml::parse_document(d, &mut lt).unwrap();
        }
        for name in [
            "article",
            "prolog",
            "epilog",
            "acknoledgements",
            "references",
            "a_id",
            "keywords",
            "authors",
            "author",
            "contact",
            "phone",
        ] {
            assert!(lt.lookup(name).is_some(), "missing element {name}");
        }
    }

    #[test]
    fn paper_queries_hit_the_expected_selectivity_order() {
        use fix_exec::eval_path;
        use fix_xpath::parse_path;
        let docs = tcmd(GenConfig::scaled(0.5));
        let mut lt = fix_xml::LabelTable::new();
        let parsed: Vec<_> = docs
            .iter()
            .map(|d| fix_xml::parse_document(d, &mut lt).unwrap())
            .collect();
        let frac = |q: &str| {
            let p = parse_path(q).unwrap();
            parsed
                .iter()
                .filter(|d| !eval_path(d, &lt, &p).is_empty())
                .count() as f64
                / parsed.len() as f64
        };
        let hi = frac("/article/epilog[acknoledgements]/references/a_id");
        let md = frac("/article/prolog[keywords]/authors/author/contact[phone]");
        let lo = frac("/article[epilog]/prolog/authors/author");
        // Matching fractions must be ordered hi < md < lo (selectivity is
        // the complement).
        assert!(hi < md && md < lo, "hi={hi} md={md} lo={lo}");
        assert!(hi > 0.05 && lo < 0.99);
    }
}
