//! Random twig-query generation (the "1000 random queries" of Figure 5).
//!
//! Queries are sampled *from the data*: pick a random element, walk a
//! random number of levels down its subtree for the spine, and attach
//! branch predicates drawn from actual sibling structure. A configurable
//! fraction of queries gets one label perturbed so that non-matching and
//! partially-matching queries appear in the mix (the paper discards only
//! selectivity-0 and selectivity-1 queries; we leave filtering to the
//! caller so the distribution itself is inspectable).

use rand::Rng;
use rand_chacha::ChaCha8Rng;

use fix_xml::{Document, LabelTable, NodeId};
use fix_xpath::{Axis, PathExpr, Predicate, Step};

use crate::util::rng;

/// Random-query generator configuration.
#[derive(Debug, Clone, Copy)]
pub struct QueryGenConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Number of queries to produce.
    pub count: usize,
    /// Maximum spine length (also bounds total query depth).
    pub max_depth: usize,
    /// Probability of attaching a predicate at each spine step.
    pub predicate_p: f64,
    /// Probability of perturbing one label to a random other label.
    pub perturb_p: f64,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED_5EED,
            count: 1000,
            max_depth: 5,
            predicate_p: 0.4,
            perturb_p: 0.1,
        }
    }
}

/// Generates `cfg.count` random twig queries over the given documents.
/// Every returned expression satisfies `PathExpr::is_twig()`.
pub fn random_twigs(docs: &[&Document], labels: &LabelTable, cfg: QueryGenConfig) -> Vec<PathExpr> {
    assert!(!docs.is_empty(), "need at least one document");
    let mut r = rng(cfg.seed, 0x0E51);
    (0..cfg.count)
        .map(|_| one_query(docs, labels, cfg, &mut r))
        .collect()
}

fn one_query(
    docs: &[&Document],
    labels: &LabelTable,
    cfg: QueryGenConfig,
    r: &mut ChaCha8Rng,
) -> PathExpr {
    let doc = docs[r.gen_range(0..docs.len())];
    // Random element node.
    let start = loop {
        let id = NodeId(r.gen_range(0..doc.len() as u32));
        if doc.label(id).is_some() {
            break id;
        }
    };
    // Spine: walk down random children.
    let target_len = r.gen_range(1..=cfg.max_depth);
    let mut spine: Vec<NodeId> = vec![start];
    let mut cur = start;
    while spine.len() < target_len {
        let kids: Vec<NodeId> = doc.element_children(cur).collect();
        if kids.is_empty() {
            break;
        }
        cur = kids[r.gen_range(0..kids.len())];
        spine.push(cur);
    }
    let budget = cfg.max_depth.saturating_sub(spine.len());
    let mut steps: Vec<Step> = Vec::with_capacity(spine.len());
    for (i, &n) in spine.iter().enumerate() {
        let mut step = Step {
            axis: if i == 0 {
                Axis::Descendant
            } else {
                Axis::Child
            },
            name: labels.resolve(doc.label(n).expect("element")).to_owned(),
            predicates: Vec::new(),
        };
        // Maybe attach a predicate from a child other than the spine child.
        if r.gen::<f64>() < cfg.predicate_p && budget > 0 {
            let next_spine = spine.get(i + 1).copied();
            let others: Vec<NodeId> = doc
                .element_children(n)
                .filter(|&c| Some(c) != next_spine)
                .collect();
            if !others.is_empty() {
                let pick = others[r.gen_range(0..others.len())];
                let mut pred_steps = vec![Step::child(
                    labels.resolve(doc.label(pick).expect("element")),
                )];
                // Occasionally extend the predicate one more level.
                if budget > 1 && r.gen::<f64>() < 0.4 {
                    let grand: Vec<NodeId> = doc.element_children(pick).collect();
                    if !grand.is_empty() {
                        let g = grand[r.gen_range(0..grand.len())];
                        pred_steps
                            .push(Step::child(labels.resolve(doc.label(g).expect("element"))));
                    }
                }
                step.predicates.push(Predicate {
                    path: PathExpr { steps: pred_steps },
                    value: None,
                });
            }
        }
        steps.push(step);
    }
    let mut path = PathExpr { steps };
    // Perturbation: swap one label for a random one from the table.
    if r.gen::<f64>() < cfg.perturb_p && labels.len() > 1 {
        let si = r.gen_range(0..path.steps.len());
        let li = r.gen_range(0..labels.len());
        path.steps[si].name = labels.resolve(fix_xml::LabelId(li as u32)).to_owned();
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{tcmd, GenConfig};

    #[test]
    fn queries_are_twigs_and_deterministic() {
        let docs = tcmd(GenConfig::scaled(0.05));
        let mut lt = LabelTable::new();
        let parsed: Vec<Document> = docs
            .iter()
            .map(|d| fix_xml::parse_document(d, &mut lt).unwrap())
            .collect();
        let refs: Vec<&Document> = parsed.iter().collect();
        let cfg = QueryGenConfig {
            count: 100,
            ..Default::default()
        };
        let qs = random_twigs(&refs, &lt, cfg);
        let qs2 = random_twigs(&refs, &lt, cfg);
        assert_eq!(qs, qs2, "same seed ⇒ same queries");
        assert_eq!(qs.len(), 100);
        for q in &qs {
            assert!(q.is_twig(), "{q} is not a twig");
            assert!(q.depth() <= cfg.max_depth, "{q} too deep");
        }
    }

    #[test]
    fn most_sampled_queries_match_something() {
        use fix_exec::eval_path;
        let docs = tcmd(GenConfig::scaled(0.05));
        let mut lt = LabelTable::new();
        let parsed: Vec<Document> = docs
            .iter()
            .map(|d| fix_xml::parse_document(d, &mut lt).unwrap())
            .collect();
        let refs: Vec<&Document> = parsed.iter().collect();
        let qs = random_twigs(
            &refs,
            &lt,
            QueryGenConfig {
                count: 100,
                perturb_p: 0.0,
                ..Default::default()
            },
        );
        let matching = qs
            .iter()
            .filter(|q| parsed.iter().any(|d| !eval_path(d, &lt, q).is_empty()))
            .count();
        // Data-sampled unperturbed queries must overwhelmingly match.
        assert!(matching >= 95, "{matching}/100 matched");
    }
}
