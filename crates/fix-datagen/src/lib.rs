//! Deterministic synthetic data sets standing in for the paper's corpora
//! (Section 6.1), plus the random twig-query generator behind Figure 5.
//!
//! | Paper data set | Generator | Reproduced property |
//! |---|---|---|
//! | XBench TCMD (2,607 small docs) | [`tcmd`] | small text-centric docs, mild structural variation → low-selectivity twigs |
//! | DBLP (169 MB) | [`dblp`] | regular, shallow, highly repetitive → unselective patterns, tiny F&B graph |
//! | XMark scale 1 (116 MB) | [`xmark`] | structure-rich, fairly deep, flat fan-out → highly selective patterns |
//! | Treebank (86 MB) | [`treebank`] | deep recursive grammar derivations → selective, largest bisim graph |
//!
//! All generators are seeded ([`GenConfig`]) and byte-stable across runs;
//! every element name appearing in the paper's Section 6 query lists is
//! emitted by the corresponding generator, so those queries run verbatim.

mod dblp;
pub mod naive;
pub mod queries;
mod tcmd;
mod treebank;
pub mod util;
mod xmark;

pub use dblp::dblp;
pub use queries::{random_twigs, QueryGenConfig};
pub use tcmd::tcmd;
pub use treebank::treebank;
pub use xmark::xmark;

/// Generator configuration: a seed for reproducibility and a scale knob
/// (1.0 ≈ the default experiment size, which is deliberately laptop-sized;
/// the paper's absolute corpus sizes are not the claim under test).
#[derive(Debug, Clone, Copy)]
pub struct GenConfig {
    /// PRNG seed.
    pub seed: u64,
    /// Linear size multiplier.
    pub scale: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            seed: 0xF1C5_2006,
            scale: 1.0,
        }
    }
}

impl GenConfig {
    /// A config with the default seed and the given scale.
    pub fn scaled(scale: f64) -> Self {
        Self {
            scale,
            ..Self::default()
        }
    }

    /// Scales a base count (at least 1).
    pub(crate) fn count(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(1)
    }
}
