//! Treebank analogue: deeply recursive parse-tree derivations. The real
//! corpus is partially encrypted linguistics data; what matters for the
//! index experiments is its *shape* — deep recursion over a small tag set
//! (`S`, `NP`, `VP`, `PP`, `EMPTY`, part-of-speech leaves), yielding highly
//! selective structural patterns and the largest bisimulation graph of the
//! four data sets (the Table 1 ICT column's worst case).
//!
//! Vocabulary covers the Section 6 Treebank queries: `//EMPTY/S/NP[PP]/NP`,
//! `//S[VP]/NP/NP/PP/NP`, `//EMPTY/S[VP]/NP`, `//EMPTY/S/NP/NP/PP`,
//! `//EMPTY/S/VP`.

use rand_chacha::ChaCha8Rng;

use crate::util::{between, chance, rng, words, Xml};
use crate::GenConfig;

/// Generates the document (default ≈ 1200 sentences at scale 1).
pub fn treebank(cfg: GenConfig) -> String {
    let mut r = rng(cfg.seed, 0x7B27);
    let sentences = cfg.count(1200);
    let mut x = Xml::new();
    x.open("FILE");
    for _ in 0..sentences {
        // The real Treebank wraps many sentences in EMPTY elements.
        if chance(&mut r, 0.7) {
            x.open("EMPTY");
            sentence(&mut x, &mut r);
            x.close();
        } else {
            sentence(&mut x, &mut r);
        }
    }
    x.close();
    x.finish()
}

fn sentence(x: &mut Xml, r: &mut ChaCha8Rng) {
    x.open("S");
    let budget = between(r, 4, 11);
    clause_body(x, r, budget);
    x.close();
}

/// Emits the children of an `S` clause with a recursion budget.
fn clause_body(x: &mut Xml, r: &mut ChaCha8Rng, budget: usize) {
    // Typical clause: optional leading NP(s), a VP, optional PP adjuncts,
    // occasionally an embedded S.
    if chance(r, 0.85) {
        np(x, r, budget.saturating_sub(1));
    }
    if chance(r, 0.3) {
        np(x, r, budget.saturating_sub(1));
    }
    if chance(r, 0.9) {
        vp(x, r, budget.saturating_sub(1));
    }
    if chance(r, 0.35) {
        pp(x, r, budget.saturating_sub(1));
    }
    if budget > 3 && chance(r, 0.25) {
        x.open("S");
        clause_body(x, r, budget - 2);
        x.close();
    }
}

fn np(x: &mut Xml, r: &mut ChaCha8Rng, budget: usize) {
    x.open("NP");
    if budget == 0 {
        x.leaf("NN", &words(r, 1));
        x.close();
        return;
    }
    if chance(r, 0.4) {
        x.leaf("DT", "the");
    }
    if chance(r, 0.25) {
        x.leaf("JJ", &words(r, 1));
    }
    x.leaf("NN", &words(r, 1));
    // Recursive NP (possessives, appositives) and PP attachment are what
    // make Treebank deep.
    if chance(r, 0.35) {
        np(x, r, budget - 1);
    }
    if chance(r, 0.4) {
        pp(x, r, budget - 1);
    }
    x.close();
}

fn vp(x: &mut Xml, r: &mut ChaCha8Rng, budget: usize) {
    x.open("VP");
    x.leaf("VB", &words(r, 1));
    if budget > 0 {
        if chance(r, 0.6) {
            np(x, r, budget - 1);
        }
        if chance(r, 0.3) {
            pp(x, r, budget - 1);
        }
        if budget > 2 && chance(r, 0.2) {
            x.open("S");
            clause_body(x, r, budget - 2);
            x.close();
        }
    }
    x.close();
}

fn pp(x: &mut Xml, r: &mut ChaCha8Rng, budget: usize) {
    x.open("PP");
    x.leaf("IN", "of");
    if budget > 0 {
        np(x, r, budget - 1);
    } else {
        x.leaf("NN", &words(r, 1));
    }
    x.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_exec::eval_path;
    use fix_xpath::parse_path;

    #[test]
    fn deterministic_deep_and_recursive() {
        let a = treebank(GenConfig::scaled(0.05));
        assert_eq!(a, treebank(GenConfig::scaled(0.05)));
        let mut lt = fix_xml::LabelTable::new();
        let d = fix_xml::parse_document(&a, &mut lt).unwrap();
        assert!(d.max_depth() >= 10, "depth {}", d.max_depth());
    }

    #[test]
    fn paper_queries_are_nonempty() {
        let xml = treebank(GenConfig::scaled(0.4));
        let mut lt = fix_xml::LabelTable::new();
        let d = fix_xml::parse_document(&xml, &mut lt).unwrap();
        for q in [
            "//EMPTY/S/NP[PP]/NP",
            "//S[VP]/NP/NP/PP/NP",
            "//EMPTY/S[VP]/NP",
            "//EMPTY/S/NP/NP/PP",
            "//EMPTY/S/VP",
        ] {
            let n = eval_path(&d, &lt, &parse_path(q).unwrap()).len();
            assert!(n > 0, "query {q} is empty");
        }
    }

    #[test]
    fn bisim_graph_is_comparatively_large() {
        // Structural selectivity: the bisim graph should have far more
        // distinct vertices relative to document size than DBLP's.
        let xml = treebank(GenConfig::scaled(0.1));
        let mut lt = fix_xml::LabelTable::new();
        let d = fix_xml::parse_document(&xml, &mut lt).unwrap();
        let (g, _) = fix_bisim::build_document_graph(&d);
        let tb_ratio = g.len() as f64 / d.len() as f64;
        let dblp_xml = crate::dblp(GenConfig::scaled(0.05));
        let dd = fix_xml::parse_document(&dblp_xml, &mut lt).unwrap();
        let (dg, _) = fix_bisim::build_document_graph(&dd);
        let dblp_ratio = dg.len() as f64 / dd.len() as f64;
        assert!(
            tb_ratio > 3.0 * dblp_ratio,
            "treebank ratio {tb_ratio} vs dblp {dblp_ratio}"
        );
    }
}
