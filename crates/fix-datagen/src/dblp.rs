//! DBLP analogue: one large, shallow, extremely regular bibliography
//! document. Structure repeats millions of times in the real corpus; here
//! the same patterns repeat at the configured scale, which is what makes
//! per-pattern selectivity low and the F&B graph tiny (the paper's
//! explanation for Figure 6c's crossover).
//!
//! Vocabulary covers the Section 6 DBLP queries, including the inline
//! `i`/`sub`/`sup` markup inside titles and the `publisher="Springer"` /
//! `year="1998"` value predicates of Figure 7.

use crate::util::{between, chance, person, rng, words, words_range, Xml};
use crate::GenConfig;

/// Generates the document (default ≈ 6,000 bibliography entries at
/// scale 1, ≈ 45k elements).
pub fn dblp(cfg: GenConfig) -> String {
    let mut r = rng(cfg.seed, 0xDB17);
    let n = cfg.count(6000);
    let mut x = Xml::new();
    x.open("dblp");
    for _ in 0..n {
        let kind = between(&mut r, 0, 99);
        if kind < 40 {
            article(&mut x, &mut r);
        } else if kind < 80 {
            inproceedings(&mut x, &mut r);
        } else if kind < 90 {
            proceedings(&mut x, &mut r);
        } else {
            www(&mut x, &mut r);
        }
    }
    x.close();
    x.finish()
}

fn year(r: &mut rand_chacha::ChaCha8Rng) -> String {
    format!("{}", 1990 + between(r, 0, 15))
}

/// Titles carry the paper's inline markup: `<i>`, `<sub>`, `<sup>`.
fn title(x: &mut Xml, r: &mut rand_chacha::ChaCha8Rng, sup_i_bias: f64) {
    x.open("title");
    x.text(&words_range(r, 2, 6));
    if chance(r, 0.25) {
        x.leaf("i", &words(r, 1));
    }
    if chance(r, 0.10) {
        x.leaf("sub", &words(r, 1));
    }
    if chance(r, sup_i_bias) {
        x.leaf("sup", &words(r, 1));
        if chance(r, 0.5) {
            x.leaf("i", &words(r, 1));
        }
    }
    x.text(&words_range(r, 1, 3));
    x.close();
}

fn article(x: &mut Xml, r: &mut rand_chacha::ChaCha8Rng) {
    x.open("article");
    for _ in 0..between(r, 1, 3) {
        x.leaf("author", &person(r));
    }
    title(x, r, 0.05);
    x.leaf("journal", &words(r, 2));
    x.leaf("volume", &format!("{}", between(r, 1, 60)));
    if chance(r, 0.25) {
        x.leaf("number", &format!("{}", between(r, 1, 12)));
    }
    x.leaf("year", &year(r));
    x.leaf(
        "pages",
        &format!("{}-{}", between(r, 1, 400), between(r, 401, 800)),
    );
    if chance(r, 0.6) {
        x.leaf("ee", &format!("db/journals/x{}.html", between(r, 1, 999)));
    }
    if chance(r, 0.5) {
        x.leaf(
            "url",
            &format!("http://dblp.example/a{}", between(r, 1, 99999)),
        );
    }
    x.close();
}

fn inproceedings(x: &mut Xml, r: &mut rand_chacha::ChaCha8Rng) {
    x.open("inproceedings");
    for _ in 0..between(r, 1, 4) {
        x.leaf("author", &person(r));
    }
    title(x, r, 0.02);
    x.leaf("booktitle", &words(r, 2));
    x.leaf("year", &year(r));
    x.leaf(
        "pages",
        &format!("{}-{}", between(r, 1, 400), between(r, 401, 800)),
    );
    if chance(r, 0.9) {
        x.leaf("url", &format!("db/conf/c{}.html", between(r, 1, 999)));
    }
    if chance(r, 0.3) {
        x.leaf("crossref", &format!("conf/x/{}", year(r)));
    }
    x.close();
}

fn proceedings(x: &mut Xml, r: &mut rand_chacha::ChaCha8Rng) {
    const PUBLISHERS: &[&str] = &[
        "Springer",
        "ACM",
        "IEEE Computer Society",
        "Morgan Kaufmann",
    ];
    x.open("proceedings");
    for _ in 0..between(r, 1, 2) {
        x.leaf("editor", &person(r));
    }
    // Proceedings titles are where sup/i co-occur (the hi-selectivity
    // DBLP query targets exactly this combination).
    title(x, r, 0.15);
    if chance(r, 0.9) {
        x.leaf("booktitle", &words(r, 2));
    }
    x.leaf("publisher", PUBLISHERS[between(r, 0, PUBLISHERS.len() - 1)]);
    x.leaf("year", &year(r));
    x.leaf("isbn", &format!("3-540-{}-X", between(r, 10000, 99999)));
    x.leaf("url", &format!("db/conf/p{}.html", between(r, 1, 999)));
    x.close();
}

fn www(x: &mut Xml, r: &mut rand_chacha::ChaCha8Rng) {
    x.open("www");
    x.leaf("author", &person(r));
    x.leaf("title", "Home Page");
    x.leaf(
        "url",
        &format!("http://example.org/~u{}", between(r, 1, 9999)),
    );
    x.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_exec::eval_path;
    use fix_xpath::parse_path;

    #[test]
    fn deterministic_and_parseable() {
        let a = dblp(GenConfig::scaled(0.02));
        assert_eq!(a, dblp(GenConfig::scaled(0.02)));
        let mut lt = fix_xml::LabelTable::new();
        let d = fix_xml::parse_document(&a, &mut lt).unwrap();
        assert!(d.len() > 500);
        // DBLP is shallow: title inline markup is the deepest chain.
        assert!(d.max_depth() <= 4, "depth {}", d.max_depth());
    }

    #[test]
    fn paper_queries_have_results_with_expected_ordering() {
        let xml = dblp(GenConfig::scaled(0.2));
        let mut lt = fix_xml::LabelTable::new();
        let d = fix_xml::parse_document(&xml, &mut lt).unwrap();
        let count = |q: &str| eval_path(&d, &lt, &parse_path(q).unwrap()).len();
        let hi = count("//proceedings[booktitle]/title[sup][i]");
        let md = count("//article[number]/author");
        let lo = count("//inproceedings[url]/title");
        assert!(hi > 0, "hi query must have results");
        assert!(hi < md && md < lo, "hi={hi} md={md} lo={lo}");
    }

    #[test]
    fn value_queries_have_results() {
        let xml = dblp(GenConfig::scaled(0.2));
        let mut lt = fix_xml::LabelTable::new();
        let d = fix_xml::parse_document(&xml, &mut lt).unwrap();
        let count = |q: &str| eval_path(&d, &lt, &parse_path(q).unwrap()).len();
        assert!(count(r#"//proceedings[publisher="Springer"][title]"#) > 0);
        assert!(count(r#"//inproceedings[year="1998"][title]/author"#) > 0);
    }
}
