//! A deliberately naive path evaluator and document store — the ground
//! truth for the differential test oracle (`tests/differential.rs`).
//!
//! This is an *independent* implementation of the query semantics: it
//! shares only the XML arena ([`fix_xml`]) and the query AST
//! ([`fix_xpath`]) with the indexed engine, and evaluates backwards —
//! for every element it asks "does a chain of ancestors witness the
//! spine?" via an explicit parent map — where the engine's refinement
//! operator navigates forwards set-at-a-time. Agreement between the two
//! is therefore evidence about the semantics, not about a shared code
//! path. No index, no pruning, no candidate sets: every query walks
//! every node of every live document.

use fix_xml::{parse_document, Document, LabelTable, NodeId, ParseError};
use fix_xpath::{parse_path, Axis, PathExpr, Predicate, Step};

/// One stored document: its arena, a private label table, and a liveness
/// flag (removal tombstones the slot; ids are never reused, mirroring
/// the engine's `DocId` discipline).
struct NaiveDoc {
    doc: Document,
    labels: LabelTable,
    live: bool,
}

/// An unindexed document store answering the same queries as
/// `FixDatabase`, by brute force.
#[derive(Default)]
pub struct NaiveStore {
    docs: Vec<NaiveDoc>,
}

impl NaiveStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and stores a document; the returned id is the slot index
    /// (dense, never reused).
    pub fn add_xml(&mut self, xml: &str) -> Result<u32, ParseError> {
        let mut labels = LabelTable::new();
        let doc = parse_document(xml, &mut labels)?;
        self.docs.push(NaiveDoc {
            doc,
            labels,
            live: true,
        });
        Ok((self.docs.len() - 1) as u32)
    }

    /// Tombstones a document. Returns `false` if the id is unknown or
    /// already removed.
    pub fn remove(&mut self, doc: u32) -> bool {
        match self.docs.get_mut(doc as usize) {
            Some(d) if d.live => {
                d.live = false;
                true
            }
            _ => false,
        }
    }

    /// Number of live (non-removed) documents.
    pub fn live_docs(&self) -> usize {
        self.docs.iter().filter(|d| d.live).count()
    }

    /// Evaluates `path` over every live document, returning
    /// `(doc, node)` pairs sorted by document id then preorder rank —
    /// the same order the indexed engine reports.
    pub fn query(&self, path: &PathExpr) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (id, d) in self.docs.iter().enumerate() {
            if !d.live {
                continue;
            }
            for n in eval_naive(&d.doc, &d.labels, path) {
                out.push((id as u32, n.0));
            }
        }
        out
    }

    /// [`NaiveStore::query`] from query text.
    pub fn query_str(&self, query: &str) -> Result<Vec<(u32, u32)>, fix_xpath::XPathError> {
        Ok(self.query(&parse_path(query)?))
    }
}

/// Evaluates `path` over one document: the nodes matched by the last
/// step of the main spine, in preorder, each reported once.
pub fn eval_naive(doc: &Document, labels: &LabelTable, path: &PathExpr) -> Vec<NodeId> {
    if path.steps.is_empty() {
        return Vec::new();
    }
    let parents = parent_map(doc);
    // Preorder scan keeps the result sorted and duplicate-free without a
    // later sort/dedup pass.
    (0..doc.len() as u32)
        .map(NodeId)
        .filter(|&n| doc.label(n).is_some())
        .filter(|&n| spine_ends_at(doc, labels, &parents, &path.steps, path.steps.len() - 1, n))
        .collect()
}

/// Parent of every node (`None` for the root), derived from the child
/// iterator alone.
fn parent_map(doc: &Document) -> Vec<Option<NodeId>> {
    let mut parents = vec![None; doc.len()];
    for n in doc.descendants_or_self(doc.root()) {
        for c in doc.children(n) {
            parents[c.index()] = Some(n);
        }
    }
    parents
}

/// Does some chain `n₀, …, nᵢ = n` witness `steps[..=i]`? Checks the
/// current step at `n`, then recurses up through the parent map: a `/`
/// axis pins the predecessor to the parent, a `//` axis tries every
/// proper ancestor. Step 0 grounds the chain: `/name` must sit at the
/// root, `//name` anywhere.
fn spine_ends_at(
    doc: &Document,
    labels: &LabelTable,
    parents: &[Option<NodeId>],
    steps: &[Step],
    i: usize,
    n: NodeId,
) -> bool {
    let step = &steps[i];
    if labels.lookup(&step.name) != doc.label(n) || doc.label(n).is_none() {
        return false;
    }
    if !step.predicates.iter().all(|p| holds(doc, labels, n, p)) {
        return false;
    }
    if i == 0 {
        return match step.axis {
            Axis::Child => n == doc.root(),
            Axis::Descendant => true,
        };
    }
    match step.axis {
        Axis::Child => match parents[n.index()] {
            Some(p) => spine_ends_at(doc, labels, parents, steps, i - 1, p),
            None => false,
        },
        Axis::Descendant => {
            let mut a = parents[n.index()];
            while let Some(p) = a {
                if spine_ends_at(doc, labels, parents, steps, i - 1, p) {
                    return true;
                }
                a = parents[p.index()];
            }
            false
        }
    }
}

/// Existence of a predicate path (with optional trailing value test)
/// below `n`.
fn holds(doc: &Document, labels: &LabelTable, n: NodeId, pred: &Predicate) -> bool {
    descend(doc, labels, n, &pred.path.steps, pred.value.as_deref())
}

/// Walks one predicate step at a time below `from`; the value test (if
/// any) applies to matches of the final step.
fn descend(
    doc: &Document,
    labels: &LabelTable,
    from: NodeId,
    steps: &[Step],
    value: Option<&str>,
) -> bool {
    let Some((step, rest)) = steps.split_first() else {
        return true;
    };
    let within: Vec<NodeId> = match step.axis {
        Axis::Child => doc.children(from).collect(),
        Axis::Descendant => doc.descendants_or_self(from).skip(1).collect(),
    };
    within.into_iter().any(|c| {
        doc.label(c) == labels.lookup(&step.name)
            && doc.label(c).is_some()
            && step.predicates.iter().all(|p| holds(doc, labels, c, p))
            && if rest.is_empty() {
                match value {
                    Some(v) => doc
                        .children(c)
                        .any(|t| doc.text(t).map(|s| s == v).unwrap_or(false)),
                    None => true,
                }
            } else {
                descend(doc, labels, c, rest, value)
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(xml: &str, q: &str) -> Vec<u32> {
        let mut store = NaiveStore::new();
        store.add_xml(xml).unwrap();
        store
            .query_str(q)
            .unwrap()
            .into_iter()
            .map(|(_, n)| n)
            .collect()
    }

    const BIB: &str = "<bib>\
        <article><author><email/></author><title>X</title><ee/></article>\
        <article><author><phone/><email/></author><title>Y</title></article>\
        <book><author><phone/></author><title>Z</title></book>\
    </bib>";

    #[test]
    fn axes_and_anchoring() {
        assert_eq!(eval(BIB, "/bib/article").len(), 2);
        assert_eq!(eval(BIB, "/article").len(), 0, "root is bib");
        assert_eq!(eval(BIB, "//author").len(), 3);
        assert_eq!(eval(BIB, "//article/author/email").len(), 2);
        assert_eq!(eval(BIB, "//bib//email").len(), 2);
    }

    #[test]
    fn predicates_and_values() {
        assert_eq!(eval(BIB, "//article[ee]/title").len(), 1);
        assert_eq!(eval(BIB, "//author[phone][email]").len(), 1);
        assert_eq!(eval(BIB, "//article[author/phone]/title").len(), 1);
        assert_eq!(eval(BIB, "//article[.//phone]/title").len(), 1);
        let xml = "<d><i><y>1998</y><t>A</t></i><i><y>1999</y><t>B</t></i></d>";
        assert_eq!(eval(xml, r#"//i[y="1998"]/t"#).len(), 1);
        assert_eq!(eval(xml, r#"//i[y="2000"]/t"#).len(), 0);
    }

    #[test]
    fn order_and_dedup_under_overlapping_contexts() {
        let r = eval("<r><a><a><b/></a><b/></a></r>", "//a//b");
        assert_eq!(r.len(), 2);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn unknown_labels_are_empty() {
        assert!(eval(BIB, "//nonexistent").is_empty());
        assert!(eval(BIB, "//article[nonexistent]").is_empty());
    }

    #[test]
    fn store_tombstones_and_orders_across_docs() {
        let mut s = NaiveStore::new();
        let a = s.add_xml("<a><b/></a>").unwrap();
        let b = s.add_xml("<a><b/><b/></a>").unwrap();
        assert_eq!(s.live_docs(), 2);
        let r = s.query_str("//a/b").unwrap();
        assert_eq!(r, vec![(a, 1), (b, 1), (b, 2)]);
        assert!(s.remove(a));
        assert!(!s.remove(a), "double remove is a no-op");
        assert!(!s.remove(99));
        assert_eq!(s.live_docs(), 1);
        assert_eq!(s.query_str("//a/b").unwrap(), vec![(b, 1), (b, 2)]);
    }
}
