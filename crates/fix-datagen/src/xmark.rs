//! XMark analogue: one structure-rich auction-site document — fairly deep,
//! very flat (large fan-out), with the recursive `parlist`/`listitem`
//! description markup that makes XMark patterns highly selective.
//!
//! Vocabulary covers the Section 6 XMark queries:
//! `//category/description[parlist]/parlist/listitem/text`,
//! `//closed_auction/annotation/description/text`,
//! `//open_auction[seller]/annotation/description/text`,
//! `//item/mailbox/mail/text/emph/keyword`,
//! `//item[name]/mailbox/mail[to]/text[bold]/emph/bold`,
//! `//item[payment][quantity][shipping][mailbox/mail/text]/description/parlist`.

use rand_chacha::ChaCha8Rng;

use crate::util::{between, chance, person, rng, words, words_range, Xml};
use crate::GenConfig;

/// Generates the document (default ≈ 50k elements at scale 1).
pub fn xmark(cfg: GenConfig) -> String {
    let mut r = rng(cfg.seed, 0x3A2C);
    let items = cfg.count(300);
    let categories = cfg.count(80);
    let people = cfg.count(200);
    let open = cfg.count(150);
    let closed = cfg.count(150);

    let mut x = Xml::new();
    x.open("site");

    x.open("regions");
    for (i, region) in [
        "africa",
        "asia",
        "australia",
        "europe",
        "namerica",
        "samerica",
    ]
    .iter()
    .enumerate()
    {
        x.open(region);
        let share = items / 6 + usize::from(i < items % 6);
        for _ in 0..share {
            item(&mut x, &mut r);
        }
        x.close();
    }
    x.close();

    x.open("categories");
    for _ in 0..categories {
        x.open("category");
        x.leaf("name", &words(&mut r, 2));
        description(&mut x, &mut r, 0.55);
        x.close();
    }
    x.close();

    x.open("people");
    for _ in 0..people {
        x.open("person");
        x.leaf("name", &person(&mut r));
        x.leaf(
            "emailaddress",
            &format!("p{}@example.com", between(&mut r, 1, 99999)),
        );
        if chance(&mut r, 0.6) {
            x.open("address");
            x.leaf("street", &words(&mut r, 2));
            x.leaf("city", &words(&mut r, 1));
            x.leaf("country", &words(&mut r, 1));
            x.close();
        }
        if chance(&mut r, 0.5) {
            x.open("profile");
            for _ in 0..between(&mut r, 0, 3) {
                x.leaf("interest", &words(&mut r, 1));
            }
            if chance(&mut r, 0.4) {
                x.leaf("education", "Graduate School");
            }
            x.close();
        }
        x.close();
    }
    x.close();

    x.open("open_auctions");
    for _ in 0..open {
        x.open("open_auction");
        x.leaf("initial", &format!("{}.00", between(&mut r, 1, 200)));
        for _ in 0..between(&mut r, 0, 4) {
            x.open("bidder");
            x.leaf("date", "01/01/2005");
            x.leaf("increase", &format!("{}.50", between(&mut r, 1, 20)));
            x.close();
        }
        x.leaf("current", &format!("{}.00", between(&mut r, 10, 400)));
        if chance(&mut r, 0.75) {
            x.empty("seller");
        }
        annotation(&mut x, &mut r);
        x.leaf("quantity", &format!("{}", between(&mut r, 1, 5)));
        x.leaf("type", "Regular");
        x.open("interval");
        x.leaf("start", "01/01/2005");
        x.leaf("end", "02/01/2005");
        x.close();
        x.close();
    }
    x.close();

    x.open("closed_auctions");
    for _ in 0..closed {
        x.open("closed_auction");
        x.empty("seller");
        x.empty("buyer");
        x.empty("itemref");
        x.leaf("price", &format!("{}.00", between(&mut r, 5, 500)));
        x.leaf("date", "03/01/2005");
        x.leaf("quantity", &format!("{}", between(&mut r, 1, 5)));
        x.leaf("type", "Featured");
        annotation(&mut x, &mut r);
        x.close();
    }
    x.close();

    x.close(); // site
    x.finish()
}

/// `description` with either plain `text` or a recursive `parlist`.
fn description(x: &mut Xml, r: &mut ChaCha8Rng, parlist_p: f64) {
    x.open("description");
    if chance(r, parlist_p) {
        let depth = between(r, 1, 3);
        parlist(x, r, depth);
    } else {
        text(x, r);
    }
    x.close();
}

fn parlist(x: &mut Xml, r: &mut ChaCha8Rng, depth: usize) {
    x.open("parlist");
    for _ in 0..between(r, 1, 3) {
        x.open("listitem");
        if depth > 1 && chance(r, 0.3) {
            parlist(x, r, depth - 1);
        } else {
            text(x, r);
        }
        x.close();
    }
    x.close();
}

/// `text` with optional inline `bold`, `keyword`, and `emph` (which itself
/// may contain `keyword` or `bold` — the Section 6 queries need both
/// `text/emph/keyword` and `text[bold]/emph/bold`).
fn text(x: &mut Xml, r: &mut ChaCha8Rng) {
    x.open("text");
    x.text(&words_range(r, 3, 10));
    if chance(r, 0.2) {
        x.leaf("bold", &words(r, 1));
    }
    if chance(r, 0.15) {
        x.leaf("keyword", &words(r, 1));
    }
    if chance(r, 0.2) {
        x.open("emph");
        if chance(r, 0.45) {
            x.leaf("keyword", &words(r, 1));
        }
        if chance(r, 0.35) {
            x.leaf("bold", &words(r, 1));
        }
        x.close();
    }
    x.close();
}

fn annotation(x: &mut Xml, r: &mut ChaCha8Rng) {
    x.open("annotation");
    x.leaf("author", &person(r));
    description(x, r, 0.35);
    x.close();
}

fn item(x: &mut Xml, r: &mut ChaCha8Rng) {
    x.open("item");
    x.leaf("location", &words(r, 1));
    if chance(r, 0.8) {
        x.leaf("quantity", &format!("{}", between(r, 1, 9)));
    }
    if chance(r, 0.9) {
        x.leaf("name", &words(r, 2));
    }
    if chance(r, 0.75) {
        x.leaf("payment", "Creditcard");
    }
    description(x, r, 0.4);
    if chance(r, 0.7) {
        x.leaf("shipping", "Will ship internationally");
    }
    for _ in 0..between(r, 0, 2) {
        x.empty("incategory");
    }
    if chance(r, 0.6) {
        x.open("mailbox");
        for _ in 0..between(r, 1, 3) {
            x.open("mail");
            x.leaf("from", &person(r));
            if chance(r, 0.8) {
                x.leaf("to", &person(r));
            }
            x.leaf("date", "04/01/2005");
            text(x, r);
            x.close();
        }
        x.close();
    }
    x.close();
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_exec::eval_path;
    use fix_xpath::parse_path;

    #[test]
    fn deterministic_structure_rich_and_deep() {
        let a = xmark(GenConfig::scaled(0.05));
        assert_eq!(a, xmark(GenConfig::scaled(0.05)));
        let mut lt = fix_xml::LabelTable::new();
        let d = fix_xml::parse_document(&a, &mut lt).unwrap();
        assert!(d.max_depth() >= 7, "depth {}", d.max_depth());
        assert!(lt.len() >= 40, "label variety {}", lt.len());
    }

    #[test]
    fn all_paper_queries_are_expressible_and_nonempty() {
        let xml = xmark(GenConfig::scaled(0.6));
        let mut lt = fix_xml::LabelTable::new();
        let d = fix_xml::parse_document(&xml, &mut lt).unwrap();
        for q in [
            "//category/description[parlist]/parlist/listitem/text",
            "//closed_auction/annotation/description/text",
            "//open_auction[seller]/annotation/description/text",
            "//item/mailbox/mail/text/emph/keyword",
            "//description/parlist/listitem",
            "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
            "//item[payment][quantity][shipping][mailbox/mail/text]/description/parlist",
        ] {
            let n = eval_path(&d, &lt, &parse_path(q).unwrap()).len();
            assert!(n > 0, "query {q} is empty");
        }
    }
}
