//! Edge-label encoding (Section 3.2).
//!
//! The matrix translation must remember vertex labels; the paper does this
//! by assigning a *distinct positive integer weight* to every distinct
//! `(source-label, target-label)` pair, after which vertex labels can be
//! dropped. The dictionary is built while indexing and shared with query
//! translation; a query edge absent from the dictionary proves the edge
//! never occurs in the database, so the query has no results.

use std::collections::HashMap;

use fix_xml::LabelId;

/// The shared `(parent label, child label) → weight` dictionary.
#[derive(Debug, Default, Clone)]
pub struct EdgeEncoder {
    weights: HashMap<(LabelId, LabelId), f64>,
}

impl EdgeEncoder {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an edge label pair, assigning the next integer weight.
    /// Weights start at 1 (0 must stay "no edge").
    pub fn intern(&mut self, from: LabelId, to: LabelId) -> f64 {
        let next = self.weights.len() as f64 + 1.0;
        *self.weights.entry((from, to)).or_insert(next)
    }

    /// Looks an edge pair up without interning (query side).
    pub fn lookup(&self, from: LabelId, to: LabelId) -> Option<f64> {
        self.weights.get(&(from, to)).copied()
    }

    /// Number of distinct edge labels seen.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Iterates the dictionary (persistence support).
    pub fn iter(&self) -> impl Iterator<Item = ((LabelId, LabelId), f64)> + '_ {
        self.weights.iter().map(|(&k, &v)| (k, v))
    }

    /// Inserts a pre-assigned weight (persistence support).
    ///
    /// # Panics
    /// Panics if the pair is already mapped to a different weight.
    pub fn restore(&mut self, from: LabelId, to: LabelId, w: f64) {
        let prev = self.weights.insert((from, to), w);
        assert!(prev.is_none() || prev == Some(w), "conflicting edge weight");
    }

    /// True if no edge has been encoded.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_pairs_get_distinct_weights() {
        let mut e = EdgeEncoder::new();
        let (a, b, c) = (LabelId(0), LabelId(1), LabelId(2));
        let w1 = e.intern(a, b);
        let w2 = e.intern(a, c);
        let w3 = e.intern(b, c);
        assert_eq!(w1, 1.0);
        assert_eq!(w2, 2.0);
        assert_eq!(w3, 3.0);
        // Direction matters.
        let w4 = e.intern(c, b);
        assert_ne!(w3, w4);
    }

    #[test]
    fn intern_is_stable() {
        let mut e = EdgeEncoder::new();
        let (a, b) = (LabelId(0), LabelId(1));
        assert_eq!(e.intern(a, b), e.intern(a, b));
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn lookup_does_not_create() {
        let mut e = EdgeEncoder::new();
        let (a, b) = (LabelId(0), LabelId(1));
        assert_eq!(e.lookup(a, b), None);
        e.intern(a, b);
        assert_eq!(e.lookup(a, b), Some(1.0));
        assert_eq!(e.lookup(b, a), None);
    }
}
