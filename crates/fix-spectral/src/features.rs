//! The feature key `(λ_max, λ_min, root label)` (Section 3.4) and its
//! containment-based pruning test.

use fix_bisim::{BisimGraph, VertexId};
use fix_xml::LabelId;

use crate::eig::{spectrum_of_skew, EigOptions};
use crate::encoder::EdgeEncoder;
use crate::matrix::SkewMatrix;

/// Which spectrum supplies the feature key.
///
/// The paper keys on the eigenvalues of the Hermitian `iM` for the
/// skew-symmetric `M` ([`FeatureMode::SkewSpectral`]). Theorem 3 proves
/// range containment for **induced** subpatterns, but Definition 4's match
/// is a plain subgraph homomorphism — and on recursive data (Treebank-like
/// labels) the gap is real: the skew key can prune away true matches.
/// [`FeatureMode::SymmetricNorm`] keys on the spectrum of `|M|` instead;
/// its λ_max is the Perron root of a non-negative matrix and is monotone
/// under *any* injective subgraph embedding, which restores the paper's
/// no-false-negative guarantee (the remaining non-injective corner is
/// handled by the query processor's duplicate-label guard). See
/// DESIGN.md §2 and the `ablation` bench for the measured difference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FeatureMode {
    /// Sound default: spectrum of the symmetric magnitude matrix `|M|`.
    #[default]
    SymmetricNorm,
    /// Paper-faithful: spectrum of `iM` (Section 3.3).
    SkewSpectral,
}

/// The spectral feature key of one pattern.
///
/// Extraction never produces NaN components (eigenvalues of real
/// matrices; the oversized fallback uses ±∞), so `Features` implements
/// `Eq` and `Hash` and can key caches and memo tables directly. Hashing
/// goes through the IEEE bit patterns with negative zero normalized, which
/// keeps `hash` consistent with the float `==` of `PartialEq`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Features {
    /// Largest eigenvalue of `iM`.
    pub lmax: f64,
    /// Smallest eigenvalue of `iM` (equals `-lmax` for exact arithmetic).
    pub lmin: f64,
    /// Second-largest *distinct* eigenvalue magnitude — the optional
    /// extended feature explored in the ablation benches. `0.0` when the
    /// pattern has fewer than two distinct magnitudes.
    pub sigma2: f64,
    /// The pattern's root label.
    pub root: LabelId,
    /// 64-bit Bloom fingerprint of the pattern's edge-label set — the
    /// optional extra feature FIX's Section 3.4 invites ("other features
    /// may qualify as well"). A query can only match an entry whose
    /// fingerprint is a bitwise superset of its own; this is sound for
    /// *any* match (homomorphisms preserve labeled edges), including the
    /// non-injective corner where spectral containment is not.
    pub bloom: u64,
}

impl Eq for Features {}

impl std::hash::Hash for Features {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // `v + 0.0` maps -0.0 to +0.0 so values that compare equal under
        // the derived `PartialEq` hash identically.
        let bits = |v: f64| (v + 0.0).to_bits();
        bits(self.lmax).hash(state);
        bits(self.lmin).hash(state);
        bits(self.sigma2).hash(state);
        self.root.hash(state);
        self.bloom.hash(state);
    }
}

/// Bloom bits of one encoded edge weight (two hash functions).
pub fn edge_bloom_bits(weight: f64) -> u64 {
    let c = weight as u64;
    let b1 = c.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 58;
    let b2 = c.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) >> 58;
    (1u64 << b1) | (1u64 << b2)
}

impl Features {
    /// The artificial `[0, ∞]` range the paper assigns to subpatterns too
    /// large for eigenvalue extraction (Section 6.1): such entries are
    /// always returned as candidates, trading pruning power for bounded
    /// indexing cost.
    pub fn unbounded(root: LabelId) -> Self {
        Features {
            lmax: f64::INFINITY,
            lmin: f64::NEG_INFINITY,
            sigma2: f64::INFINITY,
            root,
            bloom: u64::MAX,
        }
    }

    /// True if this entry was stored with the unbounded fallback range.
    pub fn is_unbounded(&self) -> bool {
        self.lmax.is_infinite()
    }

    /// Range-containment pruning test (Theorem 3): can a pattern with
    /// features `query` be a subpattern of a pattern with features `self`?
    ///
    /// The indexed range is widened by a relative epsilon so numerical
    /// roundoff can never cause a false negative — the paper's own
    /// suggestion for dealing with inexact eigenvalues.
    pub fn contains(&self, query: &Features) -> bool {
        if self.root != query.root {
            return false;
        }
        let eps = |v: f64| 1e-9 * (1.0 + v.abs());
        query.lmax <= self.lmax + eps(self.lmax) && query.lmin >= self.lmin - eps(self.lmin)
    }

    /// Extended containment including the σ₂ feature. **Sound only for
    /// induced-subgraph matches** (Cauchy interlacing); used by the
    /// ablation study, not by the default index.
    pub fn contains_extended(&self, query: &Features) -> bool {
        let eps = 1e-9 * (1.0 + self.sigma2.abs());
        self.contains(query) && query.sigma2 <= self.sigma2 + eps
    }

    /// Edge-fingerprint test: every edge of the query pattern must appear
    /// (modulo Bloom collisions) in the entry pattern.
    pub fn bloom_covers(&self, query: &Features) -> bool {
        query.bloom & !self.bloom == 0
    }
}

/// A sparse pattern as `(vertex count, undirected weighted edges)`.
type SparseEdges = (usize, Vec<(u32, u32, f64)>);

/// Turns pattern graphs into [`Features`], applying the oversized-pattern
/// fallback.
#[derive(Debug, Clone)]
pub struct FeatureExtractor {
    /// Eigensolver options.
    pub eig: EigOptions,
    /// Patterns with more edges than this get the `[0, ∞]` fallback
    /// (paper: 3000).
    pub max_edges: usize,
    /// Which spectrum to key on.
    pub mode: FeatureMode,
}

impl Default for FeatureExtractor {
    fn default() -> Self {
        Self {
            eig: EigOptions::default(),
            max_edges: 3000,
            mode: FeatureMode::default(),
        }
    }
}

impl FeatureExtractor {
    /// Extracts features of `pattern` rooted at `root`, interning unseen
    /// edge labels (index-build side). Returns the features and whether the
    /// fallback was applied.
    ///
    /// In `SymmetricNorm` mode the stored λ_max is the *certified upper
    /// bound* of the sparse Perron solve; [`FeatureExtractor::extract_query`]
    /// uses the lower bound — the asymmetry keeps containment sound under
    /// bounded iteration counts.
    pub fn extract_interning(
        &self,
        pattern: &BisimGraph,
        root: VertexId,
        enc: &mut EdgeEncoder,
    ) -> (Features, bool) {
        let root_label = pattern.label(root);
        let (n, edges) =
            Self::sparse_reachable(pattern, root, |from, to| Some(enc.intern(from, to)))
                .expect("interning translation cannot fail");
        if edges.len() > self.max_edges {
            return (Features::unbounded(root_label), true);
        }
        let bloom = edges
            .iter()
            .fold(0u64, |b, &(_, _, w)| b | edge_bloom_bits(w));
        match self.mode {
            FeatureMode::SymmetricNorm => {
                let b = crate::eig::perron_bounds_sparse(n, &edges, &self.eig);
                (
                    Features {
                        lmax: b.upper,
                        lmin: -b.upper,
                        sigma2: b.sigma2,
                        root: root_label,
                        bloom,
                    },
                    false,
                )
            }
            FeatureMode::SkewSpectral => {
                let m = SkewMatrix::from_pattern_interning(pattern, root, enc);
                (self.skew_features(&m, root_label, bloom), false)
            }
        }
    }

    /// Edge-discovery sweep for the two-phase parallel build: walks the
    /// pattern exactly as [`extract_interning`](Self::extract_interning)
    /// would, interning every edge label pair in the same order, but skips
    /// the (expensive) eigenvalue work. Returns the pattern's edge count.
    ///
    /// Running this sequentially over all patterns and then
    /// [`extract_frozen`](Self::extract_frozen) in parallel yields
    /// bit-identical features to a sequential `extract_interning` pass,
    /// because encoded weights depend only on intern order.
    pub fn discover_edges(
        &self,
        pattern: &BisimGraph,
        root: VertexId,
        enc: &mut EdgeEncoder,
    ) -> usize {
        let (_, edges) =
            Self::sparse_reachable(pattern, root, |from, to| Some(enc.intern(from, to)))
                .expect("interning translation cannot fail");
        edges.len()
    }

    /// Extracts features against a *frozen* encoder: every edge of the
    /// pattern must already be interned (by a prior
    /// [`discover_edges`](Self::discover_edges) sweep). Takes `&EdgeEncoder`,
    /// so any number of threads can extract concurrently; the result is
    /// bit-identical to what [`extract_interning`](Self::extract_interning)
    /// would produce.
    ///
    /// # Panics
    /// Panics if the pattern contains an edge the encoder has not seen.
    pub fn extract_frozen(
        &self,
        pattern: &BisimGraph,
        root: VertexId,
        enc: &EdgeEncoder,
    ) -> (Features, bool) {
        let root_label = pattern.label(root);
        let (n, edges) = Self::sparse_reachable(pattern, root, |from, to| enc.lookup(from, to))
            .expect("extract_frozen: edge missing from encoder (discovery sweep incomplete)");
        if edges.len() > self.max_edges {
            return (Features::unbounded(root_label), true);
        }
        let bloom = edges
            .iter()
            .fold(0u64, |b, &(_, _, w)| b | edge_bloom_bits(w));
        match self.mode {
            FeatureMode::SymmetricNorm => {
                let b = crate::eig::perron_bounds_sparse(n, &edges, &self.eig);
                (
                    Features {
                        lmax: b.upper,
                        lmin: -b.upper,
                        sigma2: b.sigma2,
                        root: root_label,
                        bloom,
                    },
                    false,
                )
            }
            FeatureMode::SkewSpectral => {
                let m = SkewMatrix::from_pattern(pattern, root, enc).expect(
                    "extract_frozen: edge missing from encoder (discovery sweep incomplete)",
                );
                (self.skew_features(&m, root_label, bloom), false)
            }
        }
    }

    /// Extracts features of a query pattern; `None` if the query mentions
    /// an edge label combination that never occurs in the database (the
    /// query provably has no results).
    pub fn extract_query(
        &self,
        pattern: &BisimGraph,
        root: VertexId,
        enc: &EdgeEncoder,
    ) -> Option<Features> {
        let root_label = pattern.label(root);
        match self.mode {
            FeatureMode::SymmetricNorm => {
                let (n, edges) =
                    Self::sparse_reachable(pattern, root, |from, to| enc.lookup(from, to))?;
                let bloom = edges
                    .iter()
                    .fold(0u64, |b, &(_, _, w)| b | edge_bloom_bits(w));
                let b = crate::eig::perron_bounds_sparse(n, &edges, &self.eig);
                Some(Features {
                    lmax: b.lower,
                    lmin: -b.lower,
                    sigma2: b.sigma2,
                    root: root_label,
                    bloom,
                })
            }
            FeatureMode::SkewSpectral => {
                let (_, edges) =
                    Self::sparse_reachable(pattern, root, |from, to| enc.lookup(from, to))?;
                let bloom = edges
                    .iter()
                    .fold(0u64, |b, &(_, _, w)| b | edge_bloom_bits(w));
                let m = SkewMatrix::from_pattern(pattern, root, enc)?;
                Some(self.skew_features(&m, root_label, bloom))
            }
        }
    }

    /// Collects the sub-DAG reachable from `root` as a sparse undirected
    /// edge list with dense vertex numbering.
    fn sparse_reachable(
        pattern: &BisimGraph,
        root: VertexId,
        mut weight: impl FnMut(LabelId, LabelId) -> Option<f64>,
    ) -> Option<SparseEdges> {
        let mut dim_of = std::collections::HashMap::new();
        let mut order = Vec::new();
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            if dim_of.contains_key(&v) {
                continue;
            }
            dim_of.insert(v, order.len() as u32);
            order.push(v);
            for &c in pattern.children(v) {
                if !dim_of.contains_key(&c) {
                    stack.push(c);
                }
            }
        }
        let mut edges = Vec::new();
        for &v in &order {
            for &c in pattern.children(v) {
                let w = weight(pattern.label(v), pattern.label(c))?;
                edges.push((dim_of[&v], dim_of[&c], w));
            }
        }
        Some((order.len(), edges))
    }

    fn skew_features(&self, m: &SkewMatrix, root: LabelId, bloom: u64) -> Features {
        let spectrum = spectrum_of_skew(m, &self.eig);
        let lmax = spectrum.first().copied().unwrap_or(0.0);
        let lmin = spectrum.last().copied().unwrap_or(0.0);
        let norm = lmax.max(1.0);
        let sigma2 = spectrum
            .iter()
            .copied()
            .find(|&s| s > 0.0 && s < lmax - 1e-9 * norm)
            .unwrap_or(0.0);
        Features {
            lmax,
            lmin,
            sigma2,
            root,
            bloom,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_bisim::{build_document_graph, subpattern};
    use fix_xml::{parse_document, LabelTable};

    fn features_of(xml: &str, lt: &mut LabelTable, enc: &mut EdgeEncoder) -> Features {
        let d = parse_document(xml, lt).unwrap();
        let (g, info) = build_document_graph(&d);
        FeatureExtractor::default()
            .extract_interning(&g, info.root, enc)
            .0
    }

    #[test]
    fn lmin_is_negated_lmax() {
        let mut lt = LabelTable::new();
        let mut enc = EdgeEncoder::new();
        let f = features_of("<a><b><c/></b><d/></a>", &mut lt, &mut enc);
        assert_eq!(f.lmin, -f.lmax);
        assert!(f.lmax > 0.0);
    }

    #[test]
    fn subpattern_features_are_contained() {
        // A concrete instance of Theorem-3-style containment. (In general
        // a depth truncation is a *quotient*, not an induced subpattern —
        // see DESIGN.md §2; here no vertices merge at the cut, so the
        // truncation genuinely is an induced subpattern.)
        let mut lt = LabelTable::new();
        let mut enc = EdgeEncoder::new();
        let d = parse_document("<a><a><b/><c/></a><b/><c><d/></c></a>", &mut lt).unwrap();
        let (g, info) = build_document_graph(&d);
        let fx = FeatureExtractor::default();
        let (whole, _) = fx.extract_interning(&g, info.root, &mut enc);
        // Depth-2 truncation is an induced subpattern of the full pattern.
        let (sub, sub_info) = subpattern(&g, info.root, 2);
        let (subf, _) = fx.extract_interning(&sub, sub_info.root, &mut enc);
        assert!(whole.contains(&subf), "{whole:?} ⊉ {subf:?}");
    }

    #[test]
    fn containment_requires_matching_root() {
        let f1 = Features {
            lmax: 5.0,
            lmin: -5.0,
            sigma2: 1.0,
            root: LabelId(0),
            bloom: 0,
        };
        let mut f2 = f1;
        f2.root = LabelId(1);
        assert!(!f1.contains(&f2));
        assert!(f1.contains(&f1));
    }

    #[test]
    fn wider_range_contains_narrower() {
        let big = Features {
            lmax: 10.0,
            lmin: -10.0,
            sigma2: 3.0,
            root: LabelId(0),
            bloom: 0,
        };
        let small = Features {
            lmax: 2.0,
            lmin: -2.0,
            sigma2: 1.0,
            root: LabelId(0),
            bloom: 0,
        };
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains_extended(&small));
        assert!(!small.contains_extended(&big));
    }

    #[test]
    fn epsilon_tolerates_roundoff() {
        let f = Features {
            lmax: 3.0,
            lmin: -3.0,
            sigma2: 0.0,
            root: LabelId(0),
            bloom: 0,
        };
        let jitter = Features {
            lmax: 3.0 + 1e-12,
            lmin: -3.0 - 1e-12,
            sigma2: 0.0,
            root: LabelId(0),
            bloom: 0,
        };
        assert!(f.contains(&jitter));
    }

    #[test]
    fn unbounded_contains_everything_with_same_root() {
        let u = Features::unbounded(LabelId(7));
        assert!(u.is_unbounded());
        let q = Features {
            lmax: 1e9,
            lmin: -1e9,
            sigma2: 100.0,
            root: LabelId(7),
            bloom: 0,
        };
        assert!(u.contains(&q));
        assert!(u.contains_extended(&q));
    }

    #[test]
    fn oversized_pattern_falls_back() {
        let mut lt = LabelTable::new();
        let mut enc = EdgeEncoder::new();
        let d = parse_document("<a><b/><c/></a>", &mut lt).unwrap();
        let (g, info) = build_document_graph(&d);
        let fx = FeatureExtractor {
            max_edges: 1,
            ..Default::default()
        };
        let (f, fell_back) = fx.extract_interning(&g, info.root, &mut enc);
        assert!(fell_back);
        assert!(f.is_unbounded());
        // Edges were still interned for later queries.
        assert_eq!(enc.len(), 2);
    }

    #[test]
    fn features_hash_consistently_with_equality() {
        use std::collections::HashSet;
        let f = Features {
            lmax: 2.0,
            lmin: -2.0,
            sigma2: 0.0,
            root: LabelId(3),
            bloom: 5,
        };
        // A zero λ_max stores lmin = -0.0; the probe side computes +0.0.
        let stored = Features {
            lmax: 0.0,
            lmin: -0.0,
            sigma2: 0.0,
            root: LabelId(1),
            bloom: 0,
        };
        let probed = Features {
            lmin: 0.0,
            ..stored
        };
        assert_eq!(stored, probed);
        let mut set = HashSet::new();
        assert!(set.insert(f));
        assert!(!set.insert(f), "identical features dedup");
        assert!(set.insert(stored));
        assert!(!set.insert(probed), "-0.0 and +0.0 hash to the same key");
        assert!(
            set.insert(Features::unbounded(LabelId(1))),
            "±∞ hashes fine"
        );
    }

    #[test]
    fn extractor_state_is_shareable_across_threads() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FeatureExtractor>();
        assert_send_sync::<EdgeEncoder>();
        assert_send_sync::<Features>();
    }

    #[test]
    fn frozen_extraction_is_bit_identical_to_interning() {
        let docs = [
            "<a><b><c/></b><d/></a>",
            "<a><a><b/><c/></a><b/><c><d/></c></a>",
            "<r><x><y><z/></y></x><x><y/></x></r>",
        ];
        for mode in [FeatureMode::SymmetricNorm, FeatureMode::SkewSpectral] {
            let fx = FeatureExtractor {
                mode,
                ..Default::default()
            };
            let mut lt = LabelTable::new();
            let mut enc_seq = EdgeEncoder::new();
            let mut enc_frozen = EdgeEncoder::new();
            let mut patterns = Vec::new();
            for xml in docs {
                let d = parse_document(xml, &mut lt).unwrap();
                let (g, info) = build_document_graph(&d);
                patterns.push((g, info.root));
            }
            // Two-phase: discovery sweep, then frozen extraction.
            for (g, root) in &patterns {
                fx.discover_edges(g, *root, &mut enc_frozen);
            }
            for (g, root) in &patterns {
                let (seq, fb_seq) = fx.extract_interning(g, *root, &mut enc_seq);
                let (frz, fb_frz) = fx.extract_frozen(g, *root, &enc_frozen);
                assert_eq!(fb_seq, fb_frz);
                assert_eq!(seq.lmax.to_bits(), frz.lmax.to_bits(), "{mode:?}");
                assert_eq!(seq.lmin.to_bits(), frz.lmin.to_bits(), "{mode:?}");
                assert_eq!(seq.sigma2.to_bits(), frz.sigma2.to_bits(), "{mode:?}");
                assert_eq!(seq.bloom, frz.bloom);
                assert_eq!(seq.root, frz.root);
            }
            // Both encoders saw the same edges in the same order.
            assert_eq!(enc_seq.len(), enc_frozen.len());
        }
    }

    #[test]
    fn frozen_extraction_applies_oversize_fallback() {
        let mut lt = LabelTable::new();
        let mut enc = EdgeEncoder::new();
        let d = parse_document("<a><b/><c/></a>", &mut lt).unwrap();
        let (g, info) = build_document_graph(&d);
        let fx = FeatureExtractor {
            max_edges: 1,
            ..Default::default()
        };
        assert_eq!(fx.discover_edges(&g, info.root, &mut enc), 2);
        let (f, fell_back) = fx.extract_frozen(&g, info.root, &enc);
        assert!(fell_back);
        assert!(f.is_unbounded());
    }

    #[test]
    fn isomorphic_patterns_have_equal_features() {
        let mut lt = LabelTable::new();
        let mut enc = EdgeEncoder::new();
        let f1 = features_of("<a><b/><c/></a>", &mut lt, &mut enc);
        let f2 = features_of("<a><c/><b/></a>", &mut lt, &mut enc);
        assert!((f1.lmax - f2.lmax).abs() < 1e-9);
        assert_eq!(f1.root, f2.root);
    }

    #[test]
    fn different_structures_usually_differ() {
        let mut lt = LabelTable::new();
        let mut enc = EdgeEncoder::new();
        let f1 = features_of("<a><b/></a>", &mut lt, &mut enc);
        let f2 = features_of("<a><b/><c/></a>", &mut lt, &mut enc);
        assert!(f2.lmax > f1.lmax);
    }
}
