//! Anti-symmetric matrix translation of a twig pattern (Section 3.2).
//!
//! Vertices of the pattern graph are numbered arbitrarily (eigenvalues are
//! invariant under permutation); an edge `(i → j)` with encoded weight `w`
//! sets `M[i,j] = w` and `M[j,i] = −w`. The sign pattern is what preserves
//! edge *direction* in the spectrum: a zero-diagonal triangular matrix
//! would be nilpotent (all eigenvalues 0), whereas a non-zero
//! anti-symmetric matrix always has a non-zero eigenvalue.

use fix_bisim::{BisimGraph, VertexId};
use fix_xml::LabelId;

use crate::encoder::EdgeEncoder;

/// A dense real skew-symmetric matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct SkewMatrix {
    n: usize,
    /// Row-major entries; `a[i*n + j] = -a[j*n + i]`.
    a: Vec<f64>,
}

impl SkewMatrix {
    /// The zero matrix of dimension `n`.
    pub fn zero(n: usize) -> Self {
        Self {
            n,
            a: vec![0.0; n * n],
        }
    }

    /// Matrix dimension (number of pattern vertices).
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry accessor.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Sets the `(i → j)` edge weight `w > 0` (and `M[j,i] = -w`).
    ///
    /// # Panics
    /// Panics on the diagonal or non-positive weights.
    pub fn set_edge(&mut self, i: usize, j: usize, w: f64) {
        assert!(i != j, "self-loops cannot appear in a DAG pattern");
        assert!(w > 0.0, "edge weights are positive by construction");
        self.a[i * self.n + j] = w;
        self.a[j * self.n + i] = -w;
    }

    /// Number of (directed) edges, i.e. positive entries.
    pub fn edge_count(&self) -> usize {
        self.a.iter().filter(|&&x| x > 0.0).count()
    }

    /// Computes `A = MᵀM = −M²` — symmetric PSD, eigenvalues `σ_j²`.
    pub fn gram(&self) -> Vec<f64> {
        let n = self.n;
        let mut g = vec![0.0f64; n * n];
        // g[i][j] = Σ_k M[k][i] * M[k][j] ; exploit symmetry (compute upper
        // triangle, mirror).
        for i in 0..n {
            for j in i..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += self.a[k * n + i] * self.a[k * n + j];
                }
                g[i * n + j] = s;
                g[j * n + i] = s;
            }
        }
        g
    }

    /// Translates the pattern rooted at `root` into a matrix, **interning**
    /// unseen edge labels (index-build side). Only the sub-DAG reachable
    /// from `root` participates — pattern graphs may share an arena with
    /// other patterns (see `SubpatternForest`).
    pub fn from_pattern_interning(
        pattern: &BisimGraph,
        root: VertexId,
        enc: &mut EdgeEncoder,
    ) -> Self {
        Self::build(pattern, root, |from, to| Some(enc.intern(from, to)))
            .expect("interning translation cannot fail")
    }

    /// Translates the pattern rooted at `root` using **lookup only**
    /// (query side). Returns `None` if some edge label pair never occurs in
    /// the database — the query then has zero results.
    pub fn from_pattern(pattern: &BisimGraph, root: VertexId, enc: &EdgeEncoder) -> Option<Self> {
        Self::build(pattern, root, |from, to| enc.lookup(from, to))
    }

    fn build(
        pattern: &BisimGraph,
        root: VertexId,
        mut weight: impl FnMut(LabelId, LabelId) -> Option<f64>,
    ) -> Option<Self> {
        // Collect the vertices reachable from `root` and give them dense
        // matrix dimensions (the assignment is arbitrary — eigenvalues are
        // permutation-invariant).
        let mut dim_of = std::collections::HashMap::new();
        let mut order = Vec::new();
        let mut stack = vec![root];
        while let Some(v) = stack.pop() {
            if dim_of.contains_key(&v) {
                continue;
            }
            dim_of.insert(v, order.len());
            order.push(v);
            for &c in pattern.children(v) {
                if !dim_of.contains_key(&c) {
                    stack.push(c);
                }
            }
        }
        let mut m = SkewMatrix::zero(order.len());
        for &v in &order {
            for &c in pattern.children(v) {
                let w = weight(pattern.label(v), pattern.label(c))?;
                m.set_edge(dim_of[&v], dim_of[&c], w);
            }
        }
        Some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_bisim::build_document_graph;
    use fix_xml::{parse_document, LabelTable};

    fn pattern(xml: &str) -> (BisimGraph, VertexId) {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        let (g, info) = build_document_graph(&d);
        (g, info.root)
    }

    #[test]
    fn antisymmetry_holds() {
        let (g, root) = pattern("<a><b/><c/></a>");
        let mut enc = EdgeEncoder::new();
        let m = SkewMatrix::from_pattern_interning(&g, root, &mut enc);
        assert_eq!(m.dim(), 3);
        for i in 0..3 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..3 {
                assert_eq!(m.get(i, j), -m.get(j, i));
            }
        }
        assert_eq!(m.edge_count(), 2);
        assert_eq!(enc.len(), 2);
    }

    #[test]
    fn same_edge_labels_share_weights() {
        // Two a->b edges in different graphs must get the same weight.
        let g1 = pattern("<a><b/></a>");
        let g2 = pattern("<r><a><b/></a></r>");
        // Use a shared label table so labels align.
        let mut lt = LabelTable::new();
        let d1 = parse_document("<a><b/></a>", &mut lt).unwrap();
        let d2 = parse_document("<r><a><b/></a></r>", &mut lt).unwrap();
        let (p1, i1) = build_document_graph(&d1);
        let (p2, i2) = build_document_graph(&d2);
        let mut enc = EdgeEncoder::new();
        let m1 = SkewMatrix::from_pattern_interning(&p1, i1.root, &mut enc);
        let _m2 = SkewMatrix::from_pattern_interning(&p2, i2.root, &mut enc);
        // a->b weight assigned once.
        assert_eq!(enc.len(), 2); // (a,b) and (r,a)
        assert!(m1.edge_count() == 1);
        let _ = (g1, g2);
    }

    #[test]
    fn lookup_mode_fails_on_unknown_edges() {
        let (g, root) = pattern("<a><b/></a>");
        let enc = EdgeEncoder::new();
        assert!(SkewMatrix::from_pattern(&g, root, &enc).is_none());
    }

    #[test]
    fn gram_is_symmetric_psd_diagonal() {
        let (g, root) = pattern("<a><b/><c/></a>");
        let mut enc = EdgeEncoder::new();
        let m = SkewMatrix::from_pattern_interning(&g, root, &mut enc);
        let a = m.gram();
        let n = m.dim();
        for i in 0..n {
            assert!(a[i * n + i] >= 0.0);
            for j in 0..n {
                assert_eq!(a[i * n + j], a[j * n + i]);
            }
        }
    }
}
