//! Spectral features of twig patterns (Section 3 of the paper).
//!
//! The pipeline is: twig pattern (a labeled DAG) → anti-symmetric matrix
//! (edge labels encoded as distinct integer weights, direction as sign;
//! Section 3.2) → eigenvalues of the Hermitian matrix `iM` (Section 3.3) →
//! the feature key `(λ_max, λ_min, root label)` (Section 3.4).
//!
//! ### Implementation notes
//!
//! For a *real* skew-symmetric `M`, the spectrum of `iM` is `{±σ_j} ∪ {0}`
//! where the `σ_j` are the singular values of `M`. We therefore compute the
//! eigenvalues of the symmetric positive-semidefinite matrix `A = MᵀM =
//! −M²` (they are `σ_j²`) with a cyclic Jacobi eigensolver written for this
//! crate, and take square roots. This is numerically gentler than a complex
//! Hermitian solve and makes the `λ_min = −λ_max` symmetry exact.
//!
//! The paper's Theorem 3 (eigenvalue-range containment of induced
//! subpatterns) is what makes `(λ_min, λ_max)` a sound pruning key; the
//! [`features::Features::contains`] test implements it with a relative
//! epsilon so floating-point roundoff can never introduce false negatives.

pub mod eig;
pub mod encoder;
pub mod features;
pub mod matrix;

pub use eig::{
    jacobi_eigenvalues, magnitude_top_pair, perron_bounds_sparse, spectrum_of_magnitude,
    spectrum_of_skew, EigOptions, PerronBounds,
};
pub use encoder::EdgeEncoder;
pub use features::{edge_bloom_bits, FeatureExtractor, FeatureMode, Features};
pub use matrix::SkewMatrix;
