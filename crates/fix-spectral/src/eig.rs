//! Dense symmetric eigensolver (cyclic Jacobi) and the skew-symmetric
//! spectrum derivation.
//!
//! The paper computes eigenvalues of the Hermitian matrix `iM` with the
//! Numerical-Recipes toolbox. We instead diagonalize the real symmetric
//! matrix `A = MᵀM = −M²`, whose eigenvalues are the squared singular
//! values `σ_j²` of `M`; the spectrum of `iM` is exactly `{±σ_j}` (plus
//! zeros). Jacobi rotations are unconditionally stable and every eigenvalue
//! of a PSD matrix comes out non-negative up to roundoff, which keeps the
//! feature math simple and branch-free.

/// Solver knobs.
#[derive(Debug, Clone, Copy)]
pub struct EigOptions {
    /// Maximum number of full sweeps before giving up (the result is then
    /// the best available approximation; Jacobi converges quadratically so
    /// this is effectively unreachable for sane inputs).
    pub max_sweeps: usize,
    /// Convergence threshold on the off-diagonal Frobenius norm, relative
    /// to the matrix norm.
    pub tol: f64,
}

impl Default for EigOptions {
    fn default() -> Self {
        Self {
            max_sweeps: 64,
            tol: 1e-14,
        }
    }
}

/// Eigenvalues of the dense symmetric matrix `a` (row-major, `n × n`),
/// sorted in **descending** order.
///
/// # Panics
/// Panics if `a.len() != n * n`.
pub fn jacobi_eigenvalues(a: &[f64], n: usize, opts: &EigOptions) -> Vec<f64> {
    assert_eq!(a.len(), n * n, "matrix shape mismatch");
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![a[0]];
    }
    let mut m = a.to_vec();
    let norm: f64 = m.iter().map(|x| x * x).sum::<f64>().sqrt().max(1.0);
    let eps = opts.tol * norm;

    for _sweep in 0..opts.max_sweeps {
        // Off-diagonal magnitude.
        let mut off = 0.0f64;
        for p in 0..n {
            for q in (p + 1)..n {
                off += 2.0 * m[p * n + q] * m[p * n + q];
            }
        }
        if off.sqrt() <= eps {
            break;
        }
        for p in 0..(n - 1) {
            for q in (p + 1)..n {
                let apq = m[p * n + q];
                if apq.abs() <= eps / (n as f64) {
                    continue;
                }
                let app = m[p * n + p];
                let aqq = m[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                // Smaller-angle root for stability.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Update the p/q rows and columns.
                m[p * n + p] = app - t * apq;
                m[q * n + q] = aqq + t * apq;
                m[p * n + q] = 0.0;
                m[q * n + p] = 0.0;
                for k in 0..n {
                    if k == p || k == q {
                        continue;
                    }
                    let akp = m[k * n + p];
                    let akq = m[k * n + q];
                    let new_kp = c * akp - s * akq;
                    let new_kq = s * akp + c * akq;
                    m[k * n + p] = new_kp;
                    m[p * n + k] = new_kp;
                    m[k * n + q] = new_kq;
                    m[q * n + k] = new_kq;
                }
            }
        }
    }
    let mut eigs: Vec<f64> = (0..n).map(|i| m[i * n + i]).collect();
    eigs.sort_by(|x, y| y.partial_cmp(x).expect("eigenvalues are finite"));
    eigs
}

/// Full spectrum of the Hermitian matrix `iM` for a skew-symmetric `M`,
/// sorted descending: `[σ₁, σ₂, …, 0, …, −σ₂, −σ₁]`.
pub fn spectrum_of_skew(m: &crate::matrix::SkewMatrix, opts: &EigOptions) -> Vec<f64> {
    let n = m.dim();
    if n == 0 {
        return Vec::new();
    }
    let gram = m.gram();
    // Eigenvalues of A = MᵀM, descending; each non-zero σ² has even
    // multiplicity (±iσ pair up in M's complex spectrum).
    let sq = jacobi_eigenvalues(&gram, n, opts);
    let sigmas: Vec<f64> = sq.iter().map(|&x| x.max(0.0).sqrt()).collect();
    // Collapse the duplicated σ²'s into ±σ pairs. Duplicates are adjacent
    // after sorting; keep the larger of each pair (roundoff-safe).
    // Zero detection happens in σ² space where the solver's residual
    // lives; sqrt would amplify an O(ε) residual to O(√ε) and misclassify
    // genuine zeros. A relative 1e-7 on σ (≈ 1e-14 on σ²) is far below any
    // spacing the integer edge weights can produce.
    let norm = sigmas.first().copied().unwrap_or(0.0).max(1.0);
    let mut pos = Vec::with_capacity(n / 2);
    let mut zeros = 0usize;
    let mut i = 0usize;
    while i < n {
        if sigmas[i] <= 1e-7 * norm || i + 1 >= n {
            zeros += 1;
            i += 1;
        } else {
            pos.push(sigmas[i]);
            i += 2; // skip the duplicate
        }
    }
    let mut spectrum = Vec::with_capacity(n);
    spectrum.extend(pos.iter().copied());
    spectrum.extend(std::iter::repeat_n(0.0, zeros));
    spectrum.extend(pos.iter().rev().map(|&s| -s));
    debug_assert_eq!(spectrum.len(), n);
    spectrum
}

/// The two largest eigenvalue magnitudes of the symmetric magnitude matrix
/// `|M|`, via power iteration with one deflation step.
///
/// For a non-negative symmetric matrix the spectral radius *is* the largest
/// eigenvalue (Perron–Frobenius), so power iteration converges to exactly
/// the feature the symmetric-norm key needs, in `O(n²)` per step instead of
/// Jacobi's `O(n³)` total — the index-build fast path. Falls back to the
/// full Jacobi solve if convergence stalls (e.g. λ₁ ≈ −λ_n ties on
/// bipartite patterns).
pub fn magnitude_top_pair(m: &crate::matrix::SkewMatrix, opts: &EigOptions) -> (f64, f64) {
    let n = m.dim();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mut a = vec![0.0f64; n * n];
    let mut max_row_sum = 0.0f64;
    for i in 0..n {
        let mut rs = 0.0;
        for j in 0..n {
            let v = m.get(i, j).abs();
            a[i * n + j] = v;
            rs += v;
        }
        max_row_sum = max_row_sum.max(rs);
    }
    if max_row_sum == 0.0 {
        return (0.0, 0.0);
    }
    // Shift: the underlying undirected pattern graph is usually bipartite
    // (trees are), so `A` has the eigenvalue pair ±λ₁ and plain power
    // iteration would oscillate. On `A + σI` with σ = R/2 ≥ λ₁/2 the
    // Perron eigenvalue λ₁ + σ is strictly dominant.
    let sigma = max_row_sum / 2.0;
    for i in 0..n {
        a[i * n + i] += sigma;
    }

    let matvec = |mat: &[f64], x: &[f64], y: &mut [f64]| {
        for i in 0..n {
            let row = &mat[i * n..(i + 1) * n];
            y[i] = row.iter().zip(x).map(|(r, v)| r * v).sum();
        }
    };
    // Returns (dominant eigenvalue of `mat`, its eigenvector), or None on
    // stall (near-degenerate spectrum).
    let power = |mat: &[f64]| -> Option<(f64, Vec<f64>)> {
        // Deterministic, strictly positive, non-uniform start: never
        // orthogonal to the (non-negative) Perron vector.
        let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 + 1.0).recip()).collect();
        let mut y = vec![0.0f64; n];
        let mut lambda = f64::NAN;
        for _ in 0..400 {
            matvec(mat, &x, &mut y);
            let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm == 0.0 {
                return Some((0.0, x));
            }
            for v in &mut y {
                *v /= norm;
            }
            matvec(mat, &y, &mut x);
            let rayleigh: f64 = x.iter().zip(&y).map(|(p, q)| p * q).sum();
            if (rayleigh - lambda).abs() <= 1e-12 * (1.0 + rayleigh.abs()) {
                return Some((rayleigh, y));
            }
            lambda = rayleigh;
            std::mem::swap(&mut x, &mut y);
        }
        None
    };

    let jacobi_pair = |a: &[f64]| {
        let eigs = jacobi_eigenvalues(a, n, opts);
        let l1 = (eigs.first().copied().unwrap_or(0.0) - sigma).max(0.0);
        let l2 = eigs
            .iter()
            .map(|e| (e - sigma).abs())
            .filter(|&e| e < l1 - 1e-9 * (1.0 + l1))
            .fold(0.0, f64::max);
        (l1, l2)
    };

    match power(&a) {
        Some((shifted_l1, v1)) => {
            let l1 = (shifted_l1 - sigma).max(0.0);
            // Deflate the Perron pair; the deflated dominant eigenvalue is
            // max(λ₂ + σ, |λ_n + σ|). Only a value above σ corresponds to a
            // genuine positive second eigenvalue; otherwise σ₂ is 0 (or
            // comes from the −λ₁ mirror, which the key must not count).
            let mut b = a.clone();
            for i in 0..n {
                for j in 0..n {
                    b[i * n + j] -= shifted_l1 * v1[i] * v1[j];
                }
            }
            match power(&b) {
                Some((shifted_l2, _)) => {
                    let l2 = (shifted_l2 - sigma).max(0.0);
                    (l1, l2.min(l1))
                }
                None => jacobi_pair(&a),
            }
        }
        None => jacobi_pair(&a),
    }
}

/// Certified bounds on the Perron root of a sparse non-negative symmetric
/// matrix (given as an undirected weighted edge list).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerronBounds {
    /// Rayleigh-quotient lower bound on λ_max.
    pub lower: f64,
    /// Collatz–Wielandt upper bound on λ_max.
    pub upper: f64,
    /// Deflated second-eigenvalue estimate (ablation feature; best-effort,
    /// no certification).
    pub sigma2: f64,
}

/// Sparse power iteration with certified two-sided bounds.
///
/// `edges` lists the undirected weighted edges `(i, j, w)` of `|M|` with
/// `i ≠ j`, `w > 0`. The iteration runs on the shifted matrix `A + σI`
/// (σ = half the maximum weighted degree) so the bipartite ±λ₁ pair cannot
/// make it oscillate; every iterate `x > 0` yields the Collatz–Wielandt
/// upper bound `max_i (Ax)_i / x_i` and the Rayleigh lower bound, so the
/// result is *sound by construction* even if convergence is cut short:
/// index entries store the upper bound and query probes use the lower
/// bound, which can only add false positives, never false negatives.
pub fn perron_bounds_sparse(
    n: usize,
    edges: &[(u32, u32, f64)],
    opts: &EigOptions,
) -> PerronBounds {
    let _ = opts;
    if n == 0 || edges.is_empty() {
        return PerronBounds {
            lower: 0.0,
            upper: 0.0,
            sigma2: 0.0,
        };
    }
    let mut degree = vec![0.0f64; n];
    for &(i, j, w) in edges {
        degree[i as usize] += w;
        degree[j as usize] += w;
    }
    let sigma = degree.iter().copied().fold(0.0f64, f64::max) / 2.0;

    let matvec = |x: &[f64], y: &mut [f64]| {
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi = sigma * xi;
        }
        for &(i, j, w) in edges {
            y[i as usize] += w * x[j as usize];
            y[j as usize] += w * x[i as usize];
        }
    };

    // Strictly positive deterministic start.
    let mut x: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 + 1.0).recip()).collect();
    let mut y = vec![0.0f64; n];
    let mut lower = 0.0f64;
    let mut upper = f64::INFINITY;
    let mut v1: Vec<f64> = x.clone();
    for _ in 0..256 {
        matvec(&x, &mut y);
        // Collatz–Wielandt: λ_max(A+σI) ≤ max (Ax)_i / x_i for x > 0.
        let cw = y.iter().zip(&x).map(|(a, b)| a / b).fold(0.0f64, f64::max);
        upper = upper.min(cw);
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        for v in &mut y {
            *v /= norm;
        }
        // Rayleigh: λ_max ≥ yᵀ A y for the normalized iterate.
        matvec(&y, &mut x);
        let rayleigh: f64 = x.iter().zip(&y).map(|(p, q)| p * q).sum();
        lower = lower.max(rayleigh);
        v1.copy_from_slice(&y);
        std::mem::swap(&mut x, &mut y);
        if upper - lower <= 1e-10 * (1.0 + upper.abs()) {
            break;
        }
    }
    let lower = (lower - sigma).max(0.0);
    let upper = (upper - sigma).max(lower);

    // σ₂: one deflation pass, Rayleigh only (ablation feature).
    let l1_shifted = lower + sigma;
    let matvec_defl = |x: &[f64], y: &mut [f64]| {
        matvec(x, y);
        let proj: f64 = v1.iter().zip(x).map(|(a, b)| a * b).sum();
        for (yi, vi) in y.iter_mut().zip(&v1) {
            *yi -= l1_shifted * proj * vi;
        }
    };
    let mut x: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -0.5 } + (i as f64 + 2.0).recip())
        .collect();
    let mut y = vec![0.0f64; n];
    let mut sigma2 = 0.0f64;
    for _ in 0..96 {
        matvec_defl(&x, &mut y);
        let norm = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm <= 1e-300 {
            break;
        }
        for v in &mut y {
            *v /= norm;
        }
        matvec_defl(&y, &mut x);
        let rayleigh: f64 = x.iter().zip(&y).map(|(p, q)| p * q).sum();
        sigma2 = rayleigh;
        std::mem::swap(&mut x, &mut y);
    }
    let sigma2 = (sigma2 - sigma).clamp(0.0, upper);
    PerronBounds {
        lower,
        upper,
        sigma2,
    }
}

/// Spectrum of the *symmetric magnitude* matrix `|M|` (the pattern's
/// underlying undirected weighted graph), sorted descending.
///
/// Its largest eigenvalue is the Perron root of a non-negative matrix and
/// is therefore monotone under **any** subgraph embedding, induced or not
/// — the soundness property the skew-symmetric spectrum only has for
/// induced subpatterns (see DESIGN.md §2 and `FeatureMode`).
pub fn spectrum_of_magnitude(m: &crate::matrix::SkewMatrix, opts: &EigOptions) -> Vec<f64> {
    let n = m.dim();
    if n == 0 {
        return Vec::new();
    }
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = m.get(i, j).abs();
        }
    }
    jacobi_eigenvalues(&a, n, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::SkewMatrix;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()))
    }

    #[test]
    fn two_by_two_analytic() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let eigs = jacobi_eigenvalues(&[2.0, 1.0, 1.0, 2.0], 2, &EigOptions::default());
        assert!(close(eigs[0], 3.0), "{eigs:?}");
        assert!(close(eigs[1], 1.0), "{eigs:?}");
    }

    #[test]
    fn diagonal_matrix_is_identity_case() {
        let a = [5.0, 0.0, 0.0, 0.0, -2.0, 0.0, 0.0, 0.0, 7.0];
        let eigs = jacobi_eigenvalues(&a, 3, &EigOptions::default());
        assert!(close(eigs[0], 7.0));
        assert!(close(eigs[1], 5.0));
        assert!(close(eigs[2], -2.0));
    }

    #[test]
    fn trace_and_frobenius_are_preserved() {
        // Deterministic pseudo-random symmetric matrix.
        let n = 8;
        let mut a = vec![0.0f64; n * n];
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed % 1000) as f64 / 100.0 - 5.0
        };
        for i in 0..n {
            for j in i..n {
                let v = next();
                a[i * n + j] = v;
                a[j * n + i] = v;
            }
        }
        let eigs = jacobi_eigenvalues(&a, n, &EigOptions::default());
        let trace: f64 = (0..n).map(|i| a[i * n + i]).sum();
        let frob2: f64 = a.iter().map(|x| x * x).sum();
        let sum: f64 = eigs.iter().sum();
        let sq: f64 = eigs.iter().map(|x| x * x).sum();
        assert!(
            (trace - sum).abs() < 1e-8 * (1.0 + trace.abs()),
            "trace {trace} vs {sum}"
        );
        assert!((frob2 - sq).abs() < 1e-8 * (1.0 + frob2), "{frob2} vs {sq}");
    }

    #[test]
    fn single_edge_skew_spectrum() {
        // M = [[0, w], [-w, 0]] → spectrum of iM = {w, -w}.
        let mut m = SkewMatrix::zero(2);
        m.set_edge(0, 1, 3.5);
        let s = spectrum_of_skew(&m, &EigOptions::default());
        assert_eq!(s.len(), 2);
        assert!(close(s[0], 3.5), "{s:?}");
        assert!(close(s[1], -3.5), "{s:?}");
    }

    #[test]
    fn star_pattern_spectrum() {
        // Root with two children, weights w1 w2: σmax = sqrt(w1² + w2²),
        // and one zero eigenvalue (n = 3 is odd).
        let mut m = SkewMatrix::zero(3);
        m.set_edge(0, 1, 1.0);
        m.set_edge(0, 2, 2.0);
        let s = spectrum_of_skew(&m, &EigOptions::default());
        assert_eq!(s.len(), 3);
        assert!(close(s[0], 5.0f64.sqrt()), "{s:?}");
        assert!(close(s[1], 0.0), "{s:?}");
        assert!(close(s[2], -(5.0f64.sqrt())), "{s:?}");
    }

    #[test]
    fn chain_pattern_spectrum() {
        // Path 0->1->2 with weights a, b: σ = sqrt(a²+b²) once, zero once.
        let mut m = SkewMatrix::zero(3);
        m.set_edge(0, 1, 1.0);
        m.set_edge(1, 2, 1.0);
        let s = spectrum_of_skew(&m, &EigOptions::default());
        assert!(close(s[0], 2.0f64.sqrt()), "{s:?}");
    }

    #[test]
    fn spectrum_is_symmetric_about_zero() {
        let mut m = SkewMatrix::zero(5);
        m.set_edge(0, 1, 1.0);
        m.set_edge(0, 2, 2.0);
        m.set_edge(1, 3, 3.0);
        m.set_edge(2, 4, 4.0);
        let s = spectrum_of_skew(&m, &EigOptions::default());
        for (i, &v) in s.iter().enumerate() {
            let mirror = s[s.len() - 1 - i];
            assert!(close(v, -mirror), "{s:?}");
        }
    }

    #[test]
    fn zero_matrix_spectrum_is_zero() {
        let m = SkewMatrix::zero(4);
        let s = spectrum_of_skew(&m, &EigOptions::default());
        assert!(s.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn empty_and_singleton() {
        assert!(jacobi_eigenvalues(&[], 0, &EigOptions::default()).is_empty());
        let one = jacobi_eigenvalues(&[4.0], 1, &EigOptions::default());
        assert_eq!(one, vec![4.0]);
        let m = SkewMatrix::zero(1);
        assert_eq!(spectrum_of_skew(&m, &EigOptions::default()), vec![0.0]);
    }
}

#[cfg(test)]
mod power_tests {
    use super::*;
    use crate::matrix::SkewMatrix;

    /// Deterministic random pattern matrices; the power-iteration fast
    /// path must agree with the full Jacobi solve.
    #[test]
    fn magnitude_top_pair_matches_jacobi() {
        let mut seed = 0xABCDEF12345u64;
        let mut next = move |m: u64| {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed % m
        };
        for trial in 0..60 {
            let n = 2 + (next(12) as usize);
            let mut m = SkewMatrix::zero(n);
            // Random DAG edges i < j with integer weights.
            for i in 0..n {
                for j in (i + 1)..n {
                    if next(100) < 40 {
                        m.set_edge(i, j, (1 + next(9)) as f64);
                    }
                }
            }
            let (l1, l2) = magnitude_top_pair(&m, &EigOptions::default());
            let eigs = jacobi_eigenvalues(&spectrum_helper(&m), n, &EigOptions::default());
            let j1 = eigs.first().copied().unwrap_or(0.0).max(0.0);
            assert!(
                (l1 - j1).abs() <= 1e-6 * (1.0 + j1),
                "trial {trial}: λ1 power {l1} vs jacobi {j1}"
            );
            // σ₂ must never exceed λ1 and must be ≤ the true second
            // magnitude (it may undershoot when a negative eigenvalue
            // dominates the deflated matrix — documented behaviour).
            let true_l2 = eigs
                .iter()
                .map(|e| e.abs())
                .filter(|&e| e < j1 - 1e-7 * (1.0 + j1))
                .fold(0.0, f64::max);
            assert!(l2 <= l1 + 1e-9, "trial {trial}");
            assert!(
                l2 <= true_l2 + 1e-6 * (1.0 + true_l2),
                "trial {trial}: σ2 {l2} above true {true_l2}"
            );
        }
    }

    fn spectrum_helper(m: &SkewMatrix) -> Vec<f64> {
        let n = m.dim();
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                a[i * n + j] = m.get(i, j).abs();
            }
        }
        a
    }
}
