//! Shared experiment harness for the Section 6 reproduction.
//!
//! Each table/figure of the paper has a binary in `src/bin/`:
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | data-set characteristics, index construction time, index sizes |
//! | `table2` | sel/pp/fpr of the 12 representative queries |
//! | `fig5` | average sel/pp/fpr over 1000 random queries per data set |
//! | `fig6` | runtime: NoK vs FIX-unclustered vs F&B vs FIX-clustered |
//! | `fig7` | DBLP value queries: metrics + runtime vs F&B |
//! | `ablation` | feature mode, extended σ₂, depth limit k, value β sweeps |
//!
//! All binaries take an optional `--scale <f64>` (default 1.0) and print
//! the paper's reported numbers next to the measured ones where the paper
//! gives them. Corpora are deterministic, so runs are reproducible.

use std::time::{Duration, Instant};

use fix_core::{Collection, DocId, FixIndex, FixOptions, Metrics, QueryError, QueryOutcome};
use fix_datagen::GenConfig;
use fix_storage::{IoStats, PAGE_SIZE};

/// The four data sets of Section 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dataset {
    /// XBench TCMD analogue — collection of small documents.
    Tcmd,
    /// DBLP analogue — shallow, regular, single large document.
    Dblp,
    /// XMark analogue — structure-rich single large document.
    Xmark,
    /// Treebank analogue — deep recursive single large document.
    Treebank,
}

impl Dataset {
    /// All four, in the paper's Table 1 order.
    pub const ALL: [Dataset; 4] = [
        Dataset::Tcmd,
        Dataset::Dblp,
        Dataset::Xmark,
        Dataset::Treebank,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Tcmd => "XBench",
            Dataset::Dblp => "DBLP",
            Dataset::Xmark => "XMark",
            Dataset::Treebank => "Treebank",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Dataset> {
        match s.to_ascii_lowercase().as_str() {
            "tcmd" | "xbench" => Some(Dataset::Tcmd),
            "dblp" => Some(Dataset::Dblp),
            "xmark" => Some(Dataset::Xmark),
            "treebank" | "trbnk" => Some(Dataset::Treebank),
            _ => None,
        }
    }

    /// Loads the data set at `scale` into a collection.
    pub fn load(self, scale: f64) -> Collection {
        let cfg = GenConfig::scaled(scale);
        let mut coll = Collection::new();
        match self {
            Dataset::Tcmd => {
                for d in fix_datagen::tcmd(cfg) {
                    coll.add_xml(&d).expect("generated XML parses");
                }
            }
            Dataset::Dblp => {
                coll.add_xml(&fix_datagen::dblp(cfg)).expect("parses");
            }
            Dataset::Xmark => {
                coll.add_xml(&fix_datagen::xmark(cfg)).expect("parses");
            }
            Dataset::Treebank => {
                coll.add_xml(&fix_datagen::treebank(cfg)).expect("parses");
            }
        }
        coll
    }

    /// The paper's index configuration for this data set: no depth limit
    /// for the collection, depth limit 6 for the large documents
    /// (Section 6.1).
    pub fn default_options(self) -> FixOptions {
        match self {
            Dataset::Tcmd => FixOptions::collection(),
            _ => FixOptions::large_document(6),
        }
    }
}

/// Parses `--scale <f64>` (default 1.0) and returns remaining positional
/// args.
pub fn parse_cli() -> (f64, Vec<String>) {
    let mut scale = 1.0f64;
    let mut rest = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--scale" {
            scale = args
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--scale needs a number");
        } else {
            rest.push(a);
        }
    }
    (scale, rest)
}

/// A 2006-era disk model for translating measured page I/O into the time
/// regime the paper ran in (its data did not fit the 1 GB RAM of the test
/// machine; ours is deliberately laptop-scale and memory-resident, so
/// wall-clock alone under-reports the I/O asymmetry the paper measured —
/// see EXPERIMENTS.md).
#[derive(Debug, Clone, Copy)]
pub struct DiskModel {
    /// Cost of a random page read (seek + rotational latency), ms.
    pub random_ms: f64,
    /// Cost of a sequential page transfer, ms.
    pub seq_ms: f64,
}

impl Default for DiskModel {
    fn default() -> Self {
        // ~8 ms seek, ~60 MB/s sequential (8 KiB page ≈ 0.13 ms).
        Self {
            random_ms: 8.0,
            seq_ms: 0.13,
        }
    }
}

impl DiskModel {
    /// Models the time for an observed I/O pattern.
    pub fn time(&self, io: IoStats) -> Duration {
        let seq = io.misses.saturating_sub(io.random_reads);
        Duration::from_secs_f64(
            (io.random_reads as f64 * self.random_ms + seq as f64 * self.seq_ms) / 1e3,
        )
    }

    /// Models a pure sequential scan of `bytes`.
    pub fn scan(&self, bytes: u64) -> Duration {
        let pages = bytes.div_ceil(PAGE_SIZE as u64);
        Duration::from_secs_f64((self.random_ms + pages as f64 * self.seq_ms) / 1e3)
    }
}

/// Runs a query and reports `(outcome, wall-clock)`.
pub fn timed_query(
    idx: &FixIndex,
    coll: &Collection,
    query: &str,
) -> Result<(QueryOutcome, Duration), QueryError> {
    let t = Instant::now();
    let out = idx.query(coll, query)?;
    Ok((out, t.elapsed()))
}

/// Ground-truth metric computation for one query (used by the metric
/// tables): `(sel, pp, fpr)` as percentages.
pub fn metric_percentages(m: &Metrics) -> (f64, f64, f64) {
    (100.0 * m.sel(), 100.0 * m.pp(), 100.0 * m.fpr())
}

/// Formats a `Duration` compactly in ms.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// The whole-collection navigational baseline: evaluates `query` with the
/// NoK-style operator over every document, charging a full storage scan.
pub fn nok_baseline(coll: &Collection, query: &str) -> (usize, Duration) {
    let path = fix_xpath::parse_path(query).expect("parseable query");
    let t = Instant::now();
    let mut n = 0;
    for (id, d) in coll.iter() {
        coll.touch_document(DocId(id.0));
        n += fix_exec::eval_path(d, &coll.labels, &path).len();
    }
    (n, t.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_load_and_have_expected_shape() {
        let tcmd = Dataset::Tcmd.load(0.02);
        assert!(tcmd.len() > 1, "TCMD is a collection");
        let dblp = Dataset::Dblp.load(0.02);
        assert_eq!(dblp.len(), 1, "DBLP is a single document");
        assert_eq!(Dataset::parse("treebank"), Some(Dataset::Treebank));
        assert_eq!(Dataset::parse("nope"), None);
    }

    #[test]
    fn disk_model_orders_random_above_sequential() {
        let m = DiskModel::default();
        let random = IoStats {
            misses: 100,
            random_reads: 100,
            ..Default::default()
        };
        let seq = IoStats {
            misses: 100,
            random_reads: 1,
            ..Default::default()
        };
        assert!(m.time(random) > m.time(seq) * 10);
    }

    #[test]
    fn nok_baseline_counts_results() {
        let mut coll = Dataset::Tcmd.load(0.02);
        coll.enable_paged_storage(64);
        let (n, _) = nok_baseline(&coll, "/article/prolog/authors/author");
        assert!(n > 0);
    }
}
