//! **Workload runner** — latency distribution of the indexed query path
//! under a stream of random twig queries (the system-benchmark view the
//! paper's per-query tables do not show): p50/p90/p99/max for the prune
//! phase alone and for prune+refine, per data set.
//!
//! Run: `cargo run --release -p fix-bench --bin workload [-- --scale 1 --queries 500]`

use std::time::Instant;

use fix_bench::{parse_cli, Dataset};
use fix_core::FixIndex;
use fix_datagen::{random_twigs, QueryGenConfig};

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let (scale, rest) = parse_cli();
    let mut queries = 500usize;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "--queries" {
            queries = it
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--queries <n>");
        }
    }
    println!("Workload latency (scale {scale}, {queries} random twigs per data set; µs)\n");
    println!(
        "{:<9} {:>7} | {:>8} {:>8} {:>8} {:>9} | {:>8} {:>8} {:>8} {:>9}",
        "data set",
        "used",
        "pr p50",
        "pr p90",
        "pr p99",
        "pr max",
        "q p50",
        "q p90",
        "q p99",
        "q max"
    );
    for ds in Dataset::ALL {
        let mut coll = ds.load(scale);
        let idx = FixIndex::build(&mut coll, ds.default_options());
        let docs: Vec<&fix_xml::Document> = coll.iter().map(|(_, d)| d).collect();
        let qs = random_twigs(
            &docs,
            &coll.labels,
            QueryGenConfig {
                count: queries,
                max_depth: 5,
                ..Default::default()
            },
        );
        let mut prune = Vec::new();
        let mut full = Vec::new();
        for q in &qs {
            let t = Instant::now();
            let Ok(c) = idx.candidates(&coll, q) else {
                continue;
            };
            prune.push(t.elapsed().as_secs_f64() * 1e6);
            let t = Instant::now();
            let _ = idx.refine(&coll, q, c);
            full.push(prune.last().unwrap() + t.elapsed().as_secs_f64() * 1e6);
        }
        prune.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        full.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        println!(
            "{:<9} {:>7} | {:>8.1} {:>8.1} {:>8.1} {:>9.1} | {:>8.1} {:>8.1} {:>8.1} {:>9.1}",
            ds.name(),
            full.len(),
            percentile(&prune, 0.5),
            percentile(&prune, 0.9),
            percentile(&prune, 0.99),
            prune.last().copied().unwrap_or(0.0),
            percentile(&full, 0.5),
            percentile(&full, 0.9),
            percentile(&full, 0.99),
            full.last().copied().unwrap_or(0.0),
        );
    }
}
