//! **Table 2** — implementation-independent metrics (selectivity, pruning
//! power, false-positive ratio) for the paper's 12 representative queries.
//!
//! Run: `cargo run --release -p fix-bench --bin table2 [-- --scale 1.0]`

use fix_bench::{metric_percentages, parse_cli, Dataset};
use fix_core::{ground_truth, FixIndex};
use fix_xpath::parse_path;

/// `(dataset, paper row name, query, paper sel %, paper pp %, paper fpr %)`.
const ROWS: [(Dataset, &str, &str, f64, f64, f64); 12] = [
    (
        Dataset::Tcmd,
        "TCMD_hi",
        "/article/epilog[acknoledgements]/references/a_id",
        79.31,
        26.12,
        71.99,
    ),
    (
        Dataset::Tcmd,
        "TCMD_md",
        "/article/prolog[keywords]/authors/author/contact[phone]",
        49.23,
        5.62,
        46.21,
    ),
    (
        Dataset::Tcmd,
        "TCMD_lo",
        "/article[epilog]/prolog/authors/author",
        16.85,
        0.35,
        16.29,
    ),
    (
        Dataset::Dblp,
        "DBLP_hi",
        "//proceedings[booktitle]/title[sup][i]",
        99.97,
        99.79,
        84.91,
    ),
    (
        Dataset::Dblp,
        "DBLP_md",
        "//article[number]/author",
        72.59,
        70.85,
        5.91,
    ),
    (
        Dataset::Dblp,
        "DBLP_lo",
        "//inproceedings[url]/title",
        47.36,
        47.35,
        0.002,
    ),
    (
        Dataset::Xmark,
        "XMark_hi",
        "//category/description[parlist]/parlist/listitem/text",
        99.96,
        99.87,
        75.13,
    ),
    (
        Dataset::Xmark,
        "XMark_md",
        "//closed_auction/annotation/description/text",
        99.10,
        98.71,
        30.14,
    ),
    (
        Dataset::Xmark,
        "XMark_lo",
        "//open_auction[seller]/annotation/description/text",
        98.89,
        98.43,
        30.01,
    ),
    (
        Dataset::Treebank,
        "TrBnk_hi",
        "//EMPTY/S/NP[PP]/NP",
        99.97,
        95.37,
        99.45,
    ),
    (
        Dataset::Treebank,
        "TrBnk_md",
        "//S[VP]/NP/NP/PP/NP",
        99.81,
        85.97,
        98.67,
    ),
    (
        Dataset::Treebank,
        "TrBnk_lo",
        "//EMPTY/S[VP]/NP",
        97.48,
        95.36,
        45.79,
    ),
];

fn main() {
    let (scale, _) = parse_cli();
    println!("Table 2 reproduction (scale {scale}) — measured | paper\n");
    println!(
        "{:<9} {:<58} {:>7} {:>7} {:>7}  | {:>7} {:>7} {:>7}",
        "query", "path", "sel%", "pp%", "fpr%", "sel%", "pp%", "fpr%"
    );
    let mut current: Option<(Dataset, fix_core::Collection, FixIndex)> = None;
    for (ds, name, query, psel, ppp, pfpr) in ROWS {
        if current.as_ref().map(|(d, _, _)| *d) != Some(ds) {
            let mut coll = ds.load(scale);
            let idx = FixIndex::build(&mut coll, ds.default_options());
            current = Some((ds, coll, idx));
        }
        let (_, coll, idx) = current.as_ref().expect("dataset loaded");
        let out = idx.query(coll, query).expect("covered query");
        // Cross-check: no false negatives against first-principles ground
        // truth (the experiment is invalid otherwise).
        let path = parse_path(query).expect("parseable");
        let truth = ground_truth(coll, &path, idx.options().depth_limit);
        assert_eq!(out.metrics.producing, truth, "false negative on {name}");
        let (sel, pp, fpr) = metric_percentages(&out.metrics);
        println!(
            "{:<9} {:<58} {:>6.2} {:>6.2} {:>6.2}  | {:>6.2} {:>6.2} {:>6.2}",
            name, query, sel, pp, fpr, psel, ppp, pfpr
        );
    }
    println!(
        "\nShape checks: sel ordering hi>md>lo per data set; XMark/Treebank pp\n\
         tracks sel closely; TCMD pp lags sel (structure-poor collection)."
    );
}
