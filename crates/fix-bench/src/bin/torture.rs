//! `torture` — process-level crash-torture harness for the FIX engine.
//!
//! ```text
//! torture [--iters N] [--seed S] [--ops N] [--dir PATH] [--keep]
//! ```
//!
//! Each iteration spawns *this same binary* in a hidden `--child` mode
//! running a deterministic write workload (adds, removes, compactions,
//! checkpoints) against a path-bound database with `sync` durability,
//! then kills it with SIGKILL at a random point mid-flight — no
//! warning, no cleanup, exactly like a power cut. The parent then
//! reopens the database (exercising WAL crash recovery on whatever
//! half-written state the kill left behind) and checks it against a
//! differential oracle:
//!
//! * every operation the child *acknowledged* (fsynced to an ack log
//!   after the engine returned `Ok`) must be present — `sync`
//!   durability promised it survived;
//! * beyond the acknowledged prefix the database may contain any
//!   *prefix* of the remaining operations (committed to the WAL but
//!   killed before the ack landed) — but never a partial batch, a
//!   wrong answer, or a panic.
//!
//! The oracle replays the same seeded operation sequence into an
//! in-memory database and compares query results at every admissible
//! prefix; the iteration passes if any admissible state matches
//! exactly. Exit status is nonzero on the first mismatch, with the
//! surviving directory kept for inspection.

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use fix_core::{DocId, Durability, FixDatabase, FixOptions, WriteBatch};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One step of the deterministic workload. Regenerated identically by
/// the child (to run it) and the parent (to replay it into the oracle).
#[derive(Debug, Clone, PartialEq)]
enum Op {
    /// Add one small document (content derived from the op index).
    Add(String),
    /// Remove a live document picked deterministically from the live set.
    Remove(DocId),
    /// Fold the delta run into the base tree (logically a no-op).
    Compact,
    /// Full checkpoint (atomic rewrite; logically a no-op).
    Save,
}

/// The fixed query set both sides are compared on. Together they cover
/// every document the workload can produce.
const PROBES: [&str; 3] = ["//rec/name", "//rec/v", "//rec[v]/name"];

fn doc_xml(i: usize) -> String {
    format!("<rec><name>n{i}</name><v>{}</v></rec>", i % 7)
}

/// Generates the full op sequence for one iteration. Removal targets
/// depend only on the seeded RNG and the op history, so child and
/// oracle stay in lockstep without sharing state.
fn gen_ops(seed: u64, max_ops: usize) -> Vec<Op> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut live: Vec<u32> = vec![0]; // the init document
    let mut next_id: u32 = 1;
    let mut ops = Vec::with_capacity(max_ops);
    for i in 0..max_ops {
        let roll = rng.gen_range(0..10u32);
        let op = match roll {
            0..=6 => {
                live.push(next_id);
                next_id += 1;
                Op::Add(doc_xml(i))
            }
            7 if live.len() > 1 => {
                let slot = rng.gen_range(0..live.len());
                Op::Remove(DocId(live.swap_remove(slot)))
            }
            7 => Op::Compact,
            8 => Op::Compact,
            _ => Op::Save,
        };
        ops.push(op);
    }
    ops
}

fn workload_options() -> FixOptions {
    // Sync durability is the contract under test (ack ⇒ durable); a
    // small seal size and an eager compact ratio force WAL seals and
    // delta folds to actually happen inside the kill window.
    FixOptions::builder()
        .durability(Durability::Sync)
        .wal_seal_bytes(4 << 10)
        .compact_ratio(0.5)
        .build()
}

// ---------------------------------------------------------------- child

/// The child workload: create the database, then run the op sequence,
/// fsync-acknowledging each op index after the engine commits it. The
/// parent SIGKILLs this process at a random point.
fn child(dir: &Path, seed: u64, max_ops: usize) -> Result<(), Box<dyn std::error::Error>> {
    let db_path = dir.join("t.fix");
    let ack_path = dir.join("acked.log");
    let mut ack = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&ack_path)?;

    let mut db = FixDatabase::open(&db_path)?;
    db.add_xml(&doc_xml(usize::MAX & 0xFFFF))?; // init doc, id 0
    db.build(workload_options())?;
    db.save()?;
    ack.write_all(b"init\n")?;
    ack.sync_all()?;

    for (i, op) in gen_ops(seed, max_ops).into_iter().enumerate() {
        match op {
            Op::Add(xml) => {
                let mut b = WriteBatch::new();
                b.add_xml(xml);
                db.write(b)?;
            }
            Op::Remove(id) => {
                let mut b = WriteBatch::new();
                b.remove_document(id);
                db.write(b)?;
            }
            Op::Compact => {
                db.compact()?;
            }
            Op::Save => db.save()?,
        }
        ack.write_all(format!("{i}\n").as_bytes())?;
        ack.sync_all()?;
    }
    Ok(())
}

// --------------------------------------------------------------- oracle

/// A sorted, comparable digest of the database's answers to the fixed
/// probe queries plus its live-document census.
fn digest(db: &FixDatabase) -> Result<Vec<Vec<(u32, u32)>>, fix_core::FixError> {
    let mut out = Vec::with_capacity(PROBES.len());
    for q in PROBES {
        let outcome = db.query(q)?;
        let mut hits: Vec<(u32, u32)> = outcome.results.iter().map(|(d, n)| (d.0, n.0)).collect();
        hits.sort_unstable();
        out.push(hits);
    }
    Ok(out)
}

/// Replays the acked prefix (and every admissible extension) into an
/// in-memory oracle, comparing against the reopened database at each
/// admissible state. Returns the matching prefix length, or an error
/// describing the divergence.
fn verify(reopened: &FixDatabase, ops: &[Op], last_acked: i64) -> Result<usize, String> {
    let actual = digest(reopened).map_err(|e| format!("reopened database failed probes: {e}"))?;

    let mut oracle = FixDatabase::in_memory();
    oracle
        .add_xml(&doc_xml(usize::MAX & 0xFFFF))
        .map_err(|e| format!("oracle init: {e}"))?;
    oracle
        .build(workload_options())
        .map_err(|e| format!("oracle build: {e}"))?;

    let mut applied: i64 = -1;
    loop {
        // States with index < last_acked are inadmissible (an acked op
        // would be missing); states in last_acked..=ops.len()-1 are all
        // admissible (unacked tail ops may or may not have committed).
        if applied >= last_acked {
            let oracle_digest = digest(&oracle).map_err(|e| format!("oracle probes: {e}"))?;
            if oracle_digest == actual {
                return Ok((applied + 1) as usize);
            }
        }
        let next = (applied + 1) as usize;
        if next >= ops.len() {
            return Err(format!(
                "no admissible state matches (acked through op {last_acked}, {} ops total)",
                ops.len()
            ));
        }
        match &ops[next] {
            Op::Add(xml) => {
                let mut b = WriteBatch::new();
                b.add_xml(xml.clone());
                oracle.write(b).map_err(|e| format!("oracle add: {e}"))?;
            }
            Op::Remove(id) => {
                let mut b = WriteBatch::new();
                b.remove_document(*id);
                oracle.write(b).map_err(|e| format!("oracle remove: {e}"))?;
            }
            // Logically no-ops: the digest compares answers, not layout.
            Op::Compact => {
                oracle
                    .compact()
                    .map_err(|e| format!("oracle compact: {e}"))?;
            }
            Op::Save => {}
        }
        applied += 1;
    }
}

// --------------------------------------------------------------- parent

fn run_iteration(
    base: &Path,
    iter: usize,
    seed: u64,
    max_ops: usize,
    rng: &mut ChaCha8Rng,
) -> Result<String, String> {
    let dir = base.join(format!("iter-{iter}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;

    let iter_seed = seed ^ (iter as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--child")
        .arg(&dir)
        .arg(iter_seed.to_string())
        .arg(max_ops.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::inherit());
    let mut kid = cmd.spawn().map_err(|e| format!("spawn child: {e}"))?;

    // Kill at a random point inside the workload. With sync fsyncs the
    // child needs hundreds of milliseconds for the full sequence, so
    // this window lands mid-write most of the time, and occasionally
    // lets the child finish cleanly — both are valid crash points.
    let delay_ms = rng.gen_range(5..600u64);
    std::thread::sleep(Duration::from_millis(delay_ms));
    let _ = kid.kill(); // SIGKILL on unix
    let status = kid.wait().map_err(|e| format!("wait child: {e}"))?;

    let db_path = dir.join("t.fix");
    let ack_path = dir.join("acked.log");
    let acked = std::fs::read_to_string(&ack_path).unwrap_or_default();
    let mut saw_init = false;
    let mut last_acked: i64 = -1;
    for line in acked.lines() {
        if line == "init" {
            saw_init = true;
        } else if let Ok(i) = line.parse::<i64>() {
            last_acked = last_acked.max(i);
        }
    }
    if !saw_init {
        // Killed before the first checkpoint: nothing was promised yet.
        // The only contract is that reopening whatever exists must not
        // panic or report corruption.
        if db_path.exists() {
            FixDatabase::open(&db_path).map_err(|e| format!("pre-init reopen failed: {e}"))?;
        }
        let _ = std::fs::remove_dir_all(&dir);
        return Ok(format!(
            "killed at {delay_ms}ms before init checkpoint (status {status}); reopen ok"
        ));
    }

    let reopened =
        FixDatabase::open(&db_path).map_err(|e| format!("reopen after kill failed: {e}"))?;
    let ops = gen_ops(iter_seed, max_ops);
    match verify(&reopened, &ops, last_acked) {
        Ok(matched) => {
            let _ = std::fs::remove_dir_all(&dir);
            Ok(format!(
                "killed at {delay_ms}ms, acked {} ops, state matches prefix {matched}",
                last_acked + 1
            ))
        }
        Err(e) => Err(format!("{e} (evidence kept in {})", dir.display())),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--child") {
        let (dir, seed, ops) = match (args.get(1), args.get(2), args.get(3)) {
            (Some(d), Some(s), Some(o)) => match (s.parse(), o.parse()) {
                (Ok(s), Ok(o)) => (PathBuf::from(d), s, o),
                _ => return ExitCode::FAILURE,
            },
            _ => return ExitCode::FAILURE,
        };
        return match child(&dir, seed, ops) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("torture child: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut iters = 50usize;
    let mut seed = 0xF1Du64;
    let mut max_ops = 2000usize;
    let mut base: Option<PathBuf> = None;
    let mut keep = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let next_num = |it: &mut std::slice::Iter<String>, what: &str| {
            it.next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| format!("{what} needs a number"))
        };
        match a.as_str() {
            "--iters" => match next_num(&mut it, "--iters") {
                Ok(n) => iters = n as usize,
                Err(e) => return usage(&e),
            },
            "--seed" => match next_num(&mut it, "--seed") {
                Ok(n) => seed = n,
                Err(e) => return usage(&e),
            },
            "--ops" => match next_num(&mut it, "--ops") {
                Ok(n) => max_ops = n as usize,
                Err(e) => return usage(&e),
            },
            "--dir" => match it.next() {
                Some(d) => base = Some(PathBuf::from(d)),
                None => return usage("--dir needs a path"),
            },
            "--keep" => keep = true,
            other => return usage(&format!("unexpected argument `{other}`")),
        }
    }
    let base = base.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("fix-torture-{}", std::process::id()))
    });
    if let Err(e) = std::fs::create_dir_all(&base) {
        eprintln!("torture: mkdir {}: {e}", base.display());
        return ExitCode::FAILURE;
    }
    println!(
        "torture: {iters} iterations, {max_ops} ops/child, seed {seed:#x}, dir {}",
        base.display()
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut failures = 0usize;
    for i in 0..iters {
        match run_iteration(&base, i, seed, max_ops, &mut rng) {
            Ok(msg) => println!("  iter {i:>3}: ok — {msg}"),
            Err(msg) => {
                failures += 1;
                eprintln!("  iter {i:>3}: FAIL — {msg}");
            }
        }
    }
    if !keep && failures == 0 {
        let _ = std::fs::remove_dir_all(&base);
    }
    if failures == 0 {
        println!("torture: all {iters} iterations consistent after SIGKILL");
        ExitCode::SUCCESS
    } else {
        eprintln!("torture: {failures}/{iters} iterations FAILED");
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "torture: {msg}\nusage: torture [--iters N] [--seed S] [--ops N] [--dir PATH] [--keep]"
    );
    ExitCode::FAILURE
}
