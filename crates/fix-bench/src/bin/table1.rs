//! **Table 1** — characteristics of the experimental data sets, index
//! construction times (ICT), and sizes of the unclustered (UIdx) and
//! clustered (CIdx) indexes.
//!
//! The paper's absolute numbers come from corpora hundreds of MB large on
//! a 2006 Pentium 4; ours are deterministic laptop-scale analogues, so the
//! claim under test is the *shape*: Treebank has by far the largest ICT
//! relative to its size (structural richness), CIdx is an order of
//! magnitude larger than UIdx everywhere, and DBLP/XBench build fastest.
//!
//! Run: `cargo run --release -p fix-bench --bin table1 [-- --scale 1.0]`

use fix_bench::{parse_cli, Dataset};
use fix_core::FixIndex;

/// Paper-reported rows (size, elements, ICT sec, UIdx, CIdx) for context.
const PAPER: [(&str, &str, &str, &str, &str, &str); 4] = [
    ("XBench", "27.9 MB", "115306", "17.8", "0.2 MB", "6.1 MB"),
    ("DBLP", "169 MB", "4022548", "32.5", "2 MB", "77.9 MB"),
    ("XMark", "116 MB", "1666315", "86", "5.6 MB", "143.3 MB"),
    ("Treebank", "86 MB", "2437666", "375", "37.3 MB", "310.6 MB"),
];

fn main() {
    let (scale, _) = parse_cli();
    println!("Table 1 reproduction (scale {scale}) — measured | paper\n");
    println!(
        "{:<9} {:>9} {:>9} {:>9} {:>10} {:>10} {:>8} {:>11}  | {:>8} {:>9} {:>7} {:>8} {:>9}",
        "data set",
        "size KiB",
        "elements",
        "docs",
        "ICT ms",
        "UIdx KiB",
        "CIdx/U",
        "CIdx KiB",
        "size",
        "elements",
        "ICT s",
        "UIdx",
        "CIdx",
    );
    for (ds, paper) in Dataset::ALL.iter().zip(PAPER) {
        let mut coll = ds.load(scale);
        let stats = coll.stats();
        let u = FixIndex::build(&mut coll, ds.default_options());
        let c = FixIndex::build(&mut coll, ds.default_options().clustered());
        let ub = u.stats().index_bytes();
        let cb = c.stats().index_bytes();
        println!(
            "{:<9} {:>9} {:>9} {:>9} {:>10} {:>10} {:>7.1}x {:>11}  | {:>8} {:>9} {:>7} {:>8} {:>9}",
            ds.name(),
            stats.bytes / 1024,
            stats.elements,
            coll.len(),
            u.stats().build_time.as_millis(),
            ub / 1024,
            cb as f64 / ub.max(1) as f64,
            cb / 1024,
            paper.1,
            paper.2,
            paper.3,
            paper.4,
            paper.5,
        );
        println!(
            "{:<9} {:>9} entries={} distinct patterns={} bisim |V|={} |E|={} fallbacks={}",
            "",
            "",
            u.stats().entries,
            u.stats().distinct_patterns,
            u.stats().bisim_vertices,
            u.stats().bisim_edges,
            u.stats().fallbacks,
        );
    }
    println!("\nShape checks: ICT(Treebank) should dominate; CIdx/UIdx ≈ 10-30x (paper: 8-40x).");
}
