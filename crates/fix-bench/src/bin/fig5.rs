//! **Figure 5** — average selectivity, pruning power, and false-positive
//! ratio of 1000 random twig queries per data set.
//!
//! The paper's qualitative claim: average pp is very close to average sel
//! for XMark and Treebank (structure-rich), but lags it by ≈32% for TCMD
//! and ≈14% for DBLP (structure-poor). Queries with selectivity exactly 0
//! or 1 are discarded, as in the paper (footnote 4).
//!
//! Run: `cargo run --release -p fix-bench --bin fig5 [-- --scale 1.0 --queries 1000]`

use fix_bench::{parse_cli, Dataset};
use fix_core::FixIndex;
use fix_datagen::{random_twigs, QueryGenConfig};

fn main() {
    let (scale, rest) = parse_cli();
    let mut queries = 1000usize;
    let mut it = rest.iter();
    while let Some(a) = it.next() {
        if a == "--queries" {
            queries = it
                .next()
                .and_then(|s| s.parse().ok())
                .expect("--queries <n>");
        }
    }
    println!("Figure 5 reproduction (scale {scale}, {queries} random queries per data set)\n");
    println!(
        "{:<9} {:>7} {:>9} {:>9} {:>9} {:>11}   paper: sel−pp gap",
        "data set", "used", "avg sel%", "avg pp%", "avg fpr%", "sel−pp gap"
    );
    for ds in Dataset::ALL {
        let mut coll = ds.load(scale);
        let idx = FixIndex::build(&mut coll, ds.default_options());
        let docs: Vec<&fix_xml::Document> = coll.iter().map(|(_, d)| d).collect();
        let qs = random_twigs(
            &docs,
            &coll.labels,
            QueryGenConfig {
                count: queries,
                max_depth: 5,
                ..Default::default()
            },
        );
        let (mut sel, mut pp, mut fpr, mut used) = (0.0, 0.0, 0.0, 0usize);
        for q in &qs {
            let out = match idx.query_path(&coll, q) {
                Ok(o) => o,
                Err(_) => continue, // deeper than the cover — skipped
            };
            let s = out.metrics.sel();
            // The paper discards selectivity-0 and selectivity-1 queries.
            if s <= 0.0 || s >= 1.0 {
                continue;
            }
            sel += s;
            pp += out.metrics.pp();
            fpr += out.metrics.fpr();
            used += 1;
        }
        let n = used.max(1) as f64;
        let gap = match ds {
            Dataset::Tcmd => "≈32%",
            Dataset::Dblp => "≈14%",
            _ => "small",
        };
        println!(
            "{:<9} {:>7} {:>8.1} {:>8.1} {:>8.1} {:>10.1}   {}",
            ds.name(),
            used,
            100.0 * sel / n,
            100.0 * pp / n,
            100.0 * fpr / n,
            100.0 * (sel - pp) / n,
            gap,
        );
    }
}
