//! **Figure 7** — the integrated value index on DBLP (Section 4.6):
//!
//! * (a) implementation-independent metrics of the two value queries,
//!   structural index vs value index (the paper reports near-identical
//!   sel/pp and fpr ≈ 1.7% for the high-selectivity query);
//! * (b) runtime against the F&B baseline (the paper reports > 2× for the
//!   FIX value index, because F&B must refine value predicates per node).
//!
//! Also sweeps β to expose the size-vs-pruning tradeoff the paper leaves
//! as future work.
//!
//! Run: `cargo run --release -p fix-bench --bin fig7 [-- --scale 2]`

use std::time::Instant;

use fix_bench::{metric_percentages, ms, parse_cli, Dataset};
use fix_bisim::FbIndex;
use fix_core::{FixIndex, FixOptions};
use fix_exec::eval_fb;
use fix_xpath::{parse_path, TwigQuery};

const QUERIES: [(&str, &str); 2] = [
    (
        "DBLP_vl_hi",
        r#"//proceedings[publisher="Springer"][title]"#,
    ),
    (
        "DBLP_vl_lo",
        r#"//inproceedings[year="1998"][title]/author"#,
    ),
];

fn main() {
    let (scale, _) = parse_cli();
    println!("Figure 7 reproduction (scale {scale})\n");

    // (a) metrics: structural vs integrated value index.
    println!("(a) implementation-independent metrics");
    println!(
        "{:<11} {:<46} {:>7} {:>7} {:>7} {:>7}",
        "query", "path", "index", "sel%", "pp%", "fpr%"
    );
    let mut structural_coll = Dataset::Dblp.load(scale);
    let structural = FixIndex::build(&mut structural_coll, FixOptions::large_document(6));
    let mut value_coll = Dataset::Dblp.load(scale);
    let valued = FixIndex::build(
        &mut value_coll,
        FixOptions::large_document(6)
            .with_values(64)
            .with_edge_bloom(),
    );
    for (name, q) in QUERIES {
        for (tag, idx, coll) in [
            ("struct", &structural, &structural_coll),
            ("value", &valued, &value_coll),
        ] {
            let out = idx.query(coll, q).expect("covered");
            let (sel, pp, fpr) = metric_percentages(&out.metrics);
            println!(
                "{:<11} {:<46} {:>7} {:>6.2} {:>6.2} {:>6.2}",
                name, q, tag, sel, pp, fpr
            );
        }
    }

    // (b) runtime: F&B (structural covering index + per-node value
    // refinement) vs clustered FIX with values.
    println!("\n(b) runtime (ms, best of 3)");
    let mut clustered_coll = Dataset::Dblp.load(scale);
    let clustered = FixIndex::build(
        &mut clustered_coll,
        FixOptions::large_document(6)
            .clustered()
            .with_values(64)
            .with_edge_bloom(),
    );
    let fb: Vec<FbIndex> = clustered_coll
        .iter()
        .map(|(_, d)| FbIndex::build(d))
        .collect();
    println!(
        "{:<11} {:>10} {:>14} {:>9}",
        "query", "F&B", "FIX clustered", "speedup"
    );
    for (name, q) in QUERIES {
        let path = parse_path(q).expect("parseable");
        let mut fb_best = f64::MAX;
        let mut fb_n = 0;
        for _ in 0..3 {
            let t = Instant::now();
            fb_n = clustered_coll
                .iter()
                .zip(&fb)
                .map(|((_, d), idx)| {
                    let tq = TwigQuery::from_path(&path, &clustered_coll.labels).expect("twig");
                    eval_fb(d, idx, &tq).len()
                })
                .sum();
            fb_best = fb_best.min(t.elapsed().as_secs_f64());
        }
        let mut fix_best = f64::MAX;
        let mut fix_n = 0;
        for _ in 0..3 {
            let t = Instant::now();
            fix_n = clustered
                .query(&clustered_coll, q)
                .expect("covered")
                .results
                .len();
            fix_best = fix_best.min(t.elapsed().as_secs_f64());
        }
        assert_eq!(fb_n, fix_n, "{name}: result mismatch");
        println!(
            "{:<11} {:>10} {:>14} {:>8.1}x",
            name,
            ms(std::time::Duration::from_secs_f64(fb_best)),
            ms(std::time::Duration::from_secs_f64(fix_best)),
            fb_best / fix_best,
        );
    }

    // β sweep: index size vs pruning (Section 4.6's open tuning question).
    println!(
        "\nβ sweep (value-hash range vs size and pruning, query = {})",
        QUERIES[0].1
    );
    println!(
        "{:<8} {:>12} {:>12} {:>10} {:>7}",
        "β", "UIdx KiB", "patterns", "cands", "fpr%"
    );
    for beta in [2u32, 8, 32, 128, 512] {
        let mut coll = Dataset::Dblp.load(scale);
        let idx = FixIndex::build(
            &mut coll,
            FixOptions::large_document(6)
                .with_values(beta)
                .with_edge_bloom(),
        );
        let out = idx.query(&coll, QUERIES[0].1).expect("covered");
        println!(
            "{:<8} {:>12} {:>12} {:>10} {:>6.2}",
            beta,
            idx.stats().index_bytes() / 1024,
            idx.stats().distinct_patterns,
            out.metrics.candidates,
            100.0 * out.metrics.fpr(),
        );
    }
}
