//! **Figure 6** — runtime comparison on XMark, Treebank, and DBLP:
//! NoK (no index) vs unclustered FIX, and the disk-based F&B index vs
//! clustered FIX, over {high, low} selectivity × {simple, branching} path
//! queries.
//!
//! Two time columns per method:
//! * `cpu` — measured wall-clock on this machine (all data memory-resident);
//! * `+disk` — cpu plus a 2006-disk model (8 ms random read, 0.13 ms
//!   sequential page) applied to the I/O each method performs:
//!   NoK streams the whole corpus; unclustered FIX descends the B-tree,
//!   scans one leaf range, then fetches each candidate's pattern instance
//!   with a *random* read (measured cold against the paged primary
//!   storage); clustered FIX reads its copies *sequentially*; the F&B
//!   evaluation touches its whole graph, free when it fits the 4 MiB cache
//!   (the paper's DBLP observation), a sequential scan otherwise.
//!
//! Expected shape (paper): FIX beats NoK on selective queries by up to an
//! order of magnitude (the "900%" headline); FIX-clustered beats F&B on
//! XMark/Treebank; F&B wins on DBLP (tiny fully-cached covering index over
//! regular shallow data).
//!
//! Run: `cargo run --release -p fix-bench --bin fig6 [-- xmark|treebank|dblp] [--scale 2]`

use std::time::{Duration, Instant};

use fix_bench::{ms, parse_cli, Dataset, DiskModel};
use fix_bisim::FbIndex;
use fix_core::FixIndex;
use fix_exec::{eval_fb, eval_path};
use fix_storage::PAGE_SIZE;
use fix_xpath::{parse_path, TwigQuery};

const QUERIES: [(Dataset, &[(&str, &str)]); 3] = [
    (
        Dataset::Xmark,
        &[
            ("XMark_hi_sp", "//item/mailbox/mail/text/emph/keyword"),
            ("XMark_lo_sp", "//description/parlist/listitem"),
            (
                "XMark_hi_bp",
                "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
            ),
            (
                "XMark_lo_bp",
                "//item[payment][quantity][shipping][mailbox/mail/text]/description/parlist",
            ),
        ],
    ),
    (
        Dataset::Treebank,
        &[
            ("Trbnk_hi_sp", "//EMPTY/S/NP/NP/PP"),
            ("Trbnk_lo_sp", "//EMPTY/S/VP"),
            ("Trbnk_hi_bp", "//EMPTY/S/NP[PP]/NP"),
            ("Trbnk_lo_bp", "//EMPTY/S[VP]/NP"),
        ],
    ),
    (
        Dataset::Dblp,
        &[
            ("DBLP_hi_sp", "//inproceedings/title/i"),
            ("DBLP_lo_sp", "//dblp/inproceedings/author"),
            ("DBLP_hi_bp", "//inproceedings[url]/title[sub][i]"),
            ("DBLP_lo_bp", "//article[number]/author"),
        ],
    ),
];

/// F&B graphs larger than this are charged a sequential scan per query.
const FB_CACHE_BYTES: u64 = 4 << 20;
/// Entries per B-tree leaf page (32-byte keys + 8-byte values).
const LEAF_FANOUT: u64 = (PAGE_SIZE as u64) / 40;

fn best_of<F: FnMut() -> usize>(mut f: F) -> (usize, Duration) {
    let mut best = Duration::MAX;
    let mut n = 0;
    for _ in 0..3 {
        let t = Instant::now();
        n = f();
        best = best.min(t.elapsed());
    }
    (n, best)
}

/// B-tree probe: `height` random descents plus a sequential leaf scan over
/// the candidate range.
fn btree_disk(model: &DiskModel, height: u64, candidates: u64) -> Duration {
    Duration::from_secs_f64(
        (height as f64 * model.random_ms + candidates.div_ceil(LEAF_FANOUT) as f64 * model.seq_ms)
            / 1e3,
    )
}

fn run_dataset(ds: Dataset, scale: f64, model: &DiskModel) {
    let mut coll = ds.load(scale);
    let stats = coll.stats();
    println!(
        "\n=== {} (scale {scale}: {} elements, ~{} KiB) ===",
        ds.name(),
        stats.elements,
        stats.bytes / 1024
    );
    let u = FixIndex::build(&mut coll, ds.default_options());
    let c = FixIndex::build(&mut coll, ds.default_options().clustered());
    let fb: Vec<FbIndex> = coll.iter().map(|(_, d)| FbIndex::build(d)).collect();
    let fb_bytes: u64 = fb.iter().map(|i| i.size_bytes() as u64).sum();
    println!(
        "UIdx {} KiB, CIdx {} KiB, F&B graph {} KiB ({} classes)",
        u.stats().index_bytes() / 1024,
        c.stats().index_bytes() / 1024,
        fb_bytes / 1024,
        fb.iter().map(FbIndex::len).sum::<usize>(),
    );
    let avg_copy = c.stats().clustered_bytes as f64 / c.entry_count().max(1) as f64;
    let btree_height = 3u64; // measured trees are height 2-3 at these scales

    println!(
        "{:<12} {:>7} {:>7} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9}",
        "query",
        "results",
        "cands",
        "NoK cpu",
        "+disk",
        "FIXu cpu",
        "+disk",
        "F&B cpu",
        "+disk",
        "FIXc cpu",
        "+disk"
    );

    for &(name, query) in QUERIES
        .iter()
        .find(|(d, _)| *d == ds)
        .map(|(_, q)| *q)
        .unwrap()
    {
        let path = parse_path(query).expect("parseable");

        // NoK: full navigational scan of the whole collection.
        let (nok_n, nok_cpu) = best_of(|| {
            coll.iter()
                .map(|(_, d)| eval_path(d, &coll.labels, &path).len())
                .sum()
        });
        let nok_disk = nok_cpu + model.scan(stats.bytes as u64);

        // FIX unclustered: measure candidate fetches against cold paged
        // primary storage (fresh pool ⇒ misses = distinct pages, with the
        // genuine random/sequential classification).
        let (u_n, u_cpu) = best_of(|| u.query(&coll, query).expect("covered").results.len());
        coll.enable_paged_storage(8192);
        let out = u.query(&coll, query).expect("covered");
        let cands = out.metrics.candidates;
        let u_disk = u_cpu + model.time(coll.io_stats()) + btree_disk(model, btree_height, cands);

        // F&B: covering evaluation on the index graph.
        let (fb_n, fb_cpu) = best_of(|| {
            coll.iter()
                .zip(&fb)
                .map(|((_, d), idx)| {
                    let q = TwigQuery::from_path(&path, &coll.labels).expect("twig");
                    eval_fb(d, idx, &q).len()
                })
                .sum()
        });
        let fb_disk = if fb_bytes > FB_CACHE_BYTES {
            fb_cpu + model.scan(fb_bytes)
        } else {
            fb_cpu
        };

        // FIX clustered: copies are read in key order — sequential.
        let (c_n, c_cpu) = best_of(|| c.query(&coll, query).expect("covered").results.len());
        let copy_pages = ((cands as f64 * avg_copy) / PAGE_SIZE as f64).ceil();
        let c_disk = c_cpu
            + btree_disk(model, btree_height, cands)
            + Duration::from_secs_f64(copy_pages * model.seq_ms / 1e3);

        assert_eq!(nok_n, u_n, "{name}: NoK vs FIXu result mismatch");
        assert_eq!(nok_n, fb_n, "{name}: NoK vs F&B result mismatch");
        assert_eq!(nok_n, c_n, "{name}: NoK vs FIXc result mismatch");
        println!(
            "{:<12} {:>7} {:>7} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9} | {:>8} {:>9}",
            name,
            nok_n,
            cands,
            ms(nok_cpu),
            ms(nok_disk),
            ms(u_cpu),
            ms(u_disk),
            ms(fb_cpu),
            ms(fb_disk),
            ms(c_cpu),
            ms(c_disk),
        );
    }
}

fn main() {
    let (scale, rest) = parse_cli();
    let model = DiskModel::default();
    let only: Option<Dataset> = rest.first().and_then(|s| Dataset::parse(s));
    println!("Figure 6 reproduction — all times in ms (cpu = best of 3)");
    for ds in [Dataset::Xmark, Dataset::Treebank, Dataset::Dblp] {
        if only.map(|o| o == ds).unwrap_or(true) {
            run_dataset(ds, scale, &model);
        }
    }
}
