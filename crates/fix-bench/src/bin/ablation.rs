//! **Ablation study** — design choices DESIGN.md calls out, measured:
//!
//! 1. *Feature mode*: the paper's skew-spectral key vs the sound
//!    symmetric-norm default — including the false-negative count the skew
//!    key incurs on recursive data (the Theorem 3 induced-vs-homomorphic
//!    gap; a reproduction finding).
//! 2. *Edge-fingerprint feature*: candidates with and without the 64-bit
//!    edge Bloom filter (Section 3.4's "other features" invitation).
//! 3. *Extended σ₂ feature*: pruning gain of a second eigenvalue.
//! 4. *Depth limit k*: construction cost vs covering power.
//! 5. *Subpattern enumeration*: the paper's literal `GEN-SUBPATTERN`
//!    unfolding vs the memoized truncation (why the paper's Treebank ICT
//!    was 375 s).
//!
//! Run: `cargo run --release -p fix-bench --bin ablation [-- --scale 0.5]`

use std::time::Instant;

use std::sync::OnceLock;

use fix_bench::{parse_cli, Dataset};

/// Shared plain (non-extended) Treebank index for the probe comparison.
static FIX_PLAIN: OnceLock<(fix_core::Collection, FixIndex)> = OnceLock::new();
use fix_core::{ground_truth, FixIndex, FixOptions};
use fix_datagen::{random_twigs, QueryGenConfig};
use fix_xpath::parse_path;

fn main() {
    let (scale, _) = parse_cli();
    println!("Ablation study (scale {scale})\n");
    feature_mode(scale);
    edge_bloom(scale);
    extended_sigma2(scale);
    depth_limit(scale);
    literal_gen_subpattern(scale);
    rtree_probe(scale);
    operators(scale);
    feature_collisions(scale);
}

/// 1. Skew-spectral (paper) vs symmetric-norm (sound default) on the
///    recursive Treebank analogue: candidates, and — the finding — false
///    negatives of the paper's key.
fn feature_mode(scale: f64) {
    println!("1. feature mode on Treebank ({} random queries)", 200);
    println!(
        "{:<16} {:>12} {:>12} {:>16}",
        "mode", "avg cands", "queries", "false negatives"
    );
    for (name, paper_mode) in [("SymmetricNorm", false), ("SkewSpectral", true)] {
        let mut coll = Dataset::Treebank.load(scale);
        let opts = if paper_mode {
            FixOptions::large_document(6).paper_mode()
        } else {
            FixOptions::large_document(6)
        };
        let idx = FixIndex::build(&mut coll, opts);
        let docs: Vec<&fix_xml::Document> = coll.iter().map(|(_, d)| d).collect();
        let queries = random_twigs(
            &docs,
            &coll.labels,
            QueryGenConfig {
                count: 200,
                max_depth: 5,
                ..Default::default()
            },
        );
        let mut cands = 0u64;
        let mut used = 0u64;
        let mut false_negs = 0u64;
        for q in &queries {
            let out = match idx.query_path(&coll, q) {
                Ok(o) => o,
                Err(_) => continue,
            };
            used += 1;
            cands += out.metrics.candidates;
            let truth = ground_truth(&coll, q, 6);
            // producing < truth ⟺ the pruning lost a true anchor.
            false_negs += truth - out.metrics.producing.min(truth);
        }
        println!(
            "{:<16} {:>12.1} {:>12} {:>16}",
            name,
            cands as f64 / used.max(1) as f64,
            used,
            false_negs
        );
    }
    println!("   (the skew key's false negatives are the Theorem 3 induced-vs-homomorphic gap)\n");
}

/// 2. Edge Bloom fingerprint on XMark's branching queries.
fn edge_bloom(scale: f64) {
    println!("2. edge-fingerprint feature on XMark");
    println!(
        "{:<58} {:>12} {:>12}",
        "query", "cands plain", "cands +bloom"
    );
    let queries = [
        "//item/mailbox/mail/text/emph/keyword",
        "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
        "//category/description[parlist]/parlist/listitem/text",
        "//open_auction[seller]/annotation/description/text",
    ];
    let mut c1 = Dataset::Xmark.load(scale);
    let plain = FixIndex::build(&mut c1, FixOptions::large_document(6));
    let mut c2 = Dataset::Xmark.load(scale);
    let bloom = FixIndex::build(&mut c2, FixOptions::large_document(6).with_edge_bloom());
    for q in queries {
        let a = plain.query(&c1, q).expect("covered");
        let b = bloom.query(&c2, q).expect("covered");
        assert_eq!(a.results.len(), b.results.len(), "bloom changed results");
        println!(
            "{:<58} {:>12} {:>12}",
            q, a.metrics.candidates, b.metrics.candidates
        );
    }
    println!();
}

/// 3. Extended σ₂ feature (soundness caveat documented; measured here).
fn extended_sigma2(scale: f64) {
    println!("3. extended σ₂ feature on XMark (candidates; lost results flagged)");
    println!(
        "{:<58} {:>12} {:>12} {:>6}",
        "query", "cands base", "cands +σ₂", "lost"
    );
    let queries = [
        "//item/mailbox/mail/text/emph/keyword",
        "//closed_auction/annotation/description/text",
        "//description/parlist/listitem",
    ];
    let mut c1 = Dataset::Xmark.load(scale);
    let base = FixIndex::build(&mut c1, FixOptions::large_document(6));
    let mut opts = FixOptions::large_document(6);
    opts.extended_features = true;
    let mut c2 = Dataset::Xmark.load(scale);
    let ext = FixIndex::build(&mut c2, opts);
    for q in queries {
        let a = base.query(&c1, q).expect("covered");
        let b = ext.query(&c2, q).expect("covered");
        let lost = a.results.len().saturating_sub(b.results.len());
        println!(
            "{:<58} {:>12} {:>12} {:>6}",
            q, a.metrics.candidates, b.metrics.candidates, lost
        );
    }
    println!();
}

/// 4. Depth-limit sweep on XMark: ICT, index size, and whether the paper's
///    deepest query is covered.
fn depth_limit(scale: f64) {
    println!("4. depth limit k on XMark");
    println!(
        "{:<4} {:>10} {:>12} {:>12} {:>10} {:>24}",
        "k", "ICT ms", "UIdx KiB", "patterns", "cands", "covers depth-6 query?"
    );
    let deep_query = "//item[name]/mailbox/mail[to]/text[bold]/emph/bold";
    for k in [2usize, 3, 4, 6, 8] {
        let mut coll = Dataset::Xmark.load(scale);
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(k));
        let (covers, cands) = match idx.query(&coll, deep_query) {
            Ok(out) => ("yes", out.metrics.candidates.to_string()),
            Err(_) => ("no (falls back)", "-".into()),
        };
        println!(
            "{:<4} {:>10} {:>12} {:>12} {:>10} {:>24}",
            k,
            idx.stats().build_time.as_millis(),
            idx.stats().index_bytes() / 1024,
            idx.stats().distinct_patterns,
            cands,
            covers,
        );
    }
    println!();
}

/// 6. R-tree vs B-tree probe structures (the paper's closing future-work
///    item): entries examined per containment probe.
fn rtree_probe(scale: f64) {
    use fix_core::SpatialIndex;
    println!("\n6. probe structure on Treebank with extended (λ_max, σ₂) keys");
    println!("   (with the default 1-D key the B-tree is already optimal; the R-tree");
    println!("    pays off only once the key has a second independent dimension)");
    println!(
        "{:<38} {:>10} {:>14} {:>14}",
        "query", "cands", "B-tree scanned", "R-tree tested"
    );
    let mut coll = Dataset::Treebank.load(scale);
    let mut opts = FixOptions::large_document(6);
    opts.extended_features = true;
    let idx = FixIndex::build(&mut coll, opts);
    let spatial = SpatialIndex::build(&idx, 16);
    for q in ["//NP/PP/NP/NN", "//VP/S/NP", "//S/VP/NP/PP", "//PP/NP/NP"] {
        let path = parse_path(q).expect("parseable");
        let cands = idx.candidates(&coll, &path).expect("covered");
        // The B-tree probe scans the whole λ_max suffix of the partition
        // and post-filters on σ₂; count the suffix length by disabling the
        // σ₂ filter.
        let scanned = {
            let mut plain = FixOptions::large_document(6);
            plain.extended_features = false;
            // Same entries, so the suffix length equals the plain
            // candidate count.
            let mut c2 = Dataset::Treebank.load(scale);
            let plain_idx = FIX_PLAIN.get_or_init(|| {
                let i = FixIndex::build(&mut c2, plain);
                (c2, i)
            });
            plain_idx
                .1
                .candidates(&plain_idx.0, &path)
                .expect("covered")
                .len()
        };
        let (rt_cands, stats) = idx
            .candidates_spatial(&coll, &spatial, &path)
            .expect("covered");
        assert_eq!(cands.len(), rt_cands.len(), "probe structures disagree");
        println!(
            "{:<38} {:>10} {:>14} {:>14}",
            q,
            cands.len(),
            scanned,
            stats.points_tested
        );
    }
    println!();
}

/// 7. Refinement/baseline operator comparison on XMark: the same queries
///    through the navigational evaluator, the structural-join plan, and
///    the TwigStack holistic filter (descendant semantics for the latter).
fn operators(scale: f64) {
    use fix_exec::{eval_path, eval_structural, eval_twig, twigstack_filter};
    use fix_xml::RegionIndex;
    use fix_xpath::TwigQuery;
    println!("7. twig operators on XMark (ms, best of 3; TwigStack = filter phase)");
    println!(
        "{:<58} {:>9} {:>9} {:>9} {:>11}",
        "query", "NoK", "DP", "StructJoin", "TwigStack"
    );
    let coll = Dataset::Xmark.load(scale);
    let (_, doc) = coll.iter().next().expect("single document");
    let regions = RegionIndex::build(doc);
    for q in [
        "//item/mailbox/mail/text/emph/keyword",
        "//open_auction[seller]/annotation/description/text",
        "//description/parlist/listitem",
        "//item[payment][quantity][shipping][mailbox/mail/text]/description/parlist",
    ] {
        let path = parse_path(q).expect("parseable");
        let twig = TwigQuery::from_path(&path, &coll.labels).expect("twig");
        let time = |f: &mut dyn FnMut() -> usize| {
            let mut best = f64::MAX;
            for _ in 0..3 {
                let t = Instant::now();
                let _n = f();
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
            }
            best
        };
        let nok = time(&mut || eval_path(doc, &coll.labels, &path).len());
        let dp = time(&mut || eval_twig(doc, &twig).len());
        let sj = time(&mut || eval_structural(doc, &regions, &twig).len());
        let ts = time(&mut || twigstack_filter(doc, &regions, &twig).1.pushed);
        println!(
            "{:<58} {:>9.3} {:>9.3} {:>10.3} {:>11.3}",
            q, nok, dp, sj, ts
        );
    }
}

/// 8. Feature collisions — Section 3.2 claims "the probability of two
///    anti-symmetric matrices being isospectral but non-isomorphic is
///    expected to be very small". Measured: distinct patterns whose
///    feature keys collide (root label and λ_max within 1e-9 relative).
fn feature_collisions(scale: f64) {
    println!("\n8. feature collisions (distinct patterns sharing a feature key)");
    println!(
        "{:<10} {:>12} {:>14} {:>12} {:>10}",
        "data set", "patterns", "distinct keys", "collisions", "rate"
    );
    for ds in Dataset::ALL {
        let mut coll = ds.load(scale);
        let idx = FixIndex::build(&mut coll, ds.default_options());
        // One representative entry per pattern: identical patterns share
        // the exact same feature bits, so dedup on (root, λ_max bits).
        let mut keys = std::collections::HashSet::new();
        let mut features = std::collections::HashSet::new();
        for (k, _) in idx.entries() {
            // Quantize λ_max to 1e-9 relative so roundoff twins count as
            // one key.
            let quant = (k.lmax / (1e-9 * (1.0 + k.lmax.abs()))).round() as i64;
            keys.insert((k.root, quant, k.lmin.to_bits(), k.sigma2.to_bits()));
            features.insert((k.root, quant));
        }
        let patterns = idx.stats().distinct_patterns;
        let distinct_keys = features.len() as u64;
        let collisions = patterns.saturating_sub(distinct_keys);
        println!(
            "{:<10} {:>12} {:>14} {:>12} {:>9.1}%",
            ds.name(),
            patterns,
            distinct_keys,
            collisions,
            100.0 * collisions as f64 / patterns.max(1) as f64
        );
        let _ = keys;
    }
    println!("   (collisions only cost extra candidates, never results — the paper's\n    \"very small\" expectation is roughly right for label-rich data)");
}

/// 5. Literal GEN-SUBPATTERN (paper) vs memoized truncation, on a reduced
///    Treebank (the literal unfolding is exponential — which is the
///    point).
fn literal_gen_subpattern(scale: f64) {
    let reduced = (scale * 0.25).max(0.05);
    println!("5. subpattern enumeration on Treebank (reduced scale {reduced:.2})");
    for (name, literal) in [
        ("memoized truncation", false),
        ("literal GEN-SUBPATTERN", true),
    ] {
        let mut coll = Dataset::Treebank.load(reduced);
        let mut opts = FixOptions::large_document(6);
        opts.literal_gen_subpattern = literal;
        let t = Instant::now();
        let idx = FixIndex::build(&mut coll, opts);
        println!(
            "   {:<24} ICT {:>10?}  ({} entries, {} distinct patterns)",
            name,
            t.elapsed(),
            idx.entry_count(),
            idx.stats().distinct_patterns
        );
        // Both variants must produce identical query results.
        let q = parse_path("//EMPTY/S/NP[PP]/NP").expect("parseable");
        let out = idx.query_path(&coll, &q).expect("covered");
        let truth = ground_truth(&coll, &q, 6);
        assert_eq!(out.metrics.producing, truth);
    }
}
