//! Construction-pipeline scaling: build each data set at 1..=N threads and
//! report wall-clock speedup over the sequential build, verifying on every
//! run that the parallel index is byte-identical to the sequential one.
//!
//! Plain `main` (harness = false) so the sweep controls its own timing.
//!
//!   cargo bench -p fix-bench --bench build_scaling              # full sweep
//!   cargo bench -p fix-bench --bench build_scaling -- --test    # CI smoke
//!   cargo bench -p fix-bench --bench build_scaling -- --scale 0.5 --max-threads 8

use std::time::{Duration, Instant};

use fix_bench::{ms, Dataset};
use fix_core::{Collection, FixIndex, FixOptions};

fn keys_of(idx: &FixIndex) -> Vec<(Vec<u8>, u64)> {
    idx.entries()
        .map(|(k, v)| (k.encode().to_vec(), v))
        .collect()
}

fn build_once(ds: Dataset, scale: f64, opts: &FixOptions) -> (Duration, FixIndex) {
    // Corpora are deterministic, so a reload per rep is an exact replay;
    // only the build itself is timed.
    let mut coll: Collection = ds.load(scale);
    let t0 = Instant::now();
    let idx = FixIndex::build(&mut coll, opts.clone());
    (t0.elapsed(), idx)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--test");
    let mut scale = if smoke { 0.05 } else { 1.0 };
    let mut max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(if smoke { 2 } else { 4 });
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--max-threads" => {
                max_threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(max_threads)
            }
            _ => {}
        }
    }
    let reps = if smoke { 1 } else { 3 };

    println!(
        "build_scaling: scale {scale}, threads 1..={max_threads}, best of {reps} ({}):",
        if smoke { "smoke" } else { "full" },
    );
    for ds in Dataset::ALL {
        let opts = ds.default_options();
        let (base_time, base_idx) = (0..reps)
            .map(|_| build_once(ds, scale, &opts))
            .min_by_key(|(d, _)| *d)
            .expect("reps >= 1");
        let base_keys = keys_of(&base_idx);
        println!(
            "  {:<9} {:>7} entries  t=1 {:>9}",
            ds.name(),
            base_keys.len(),
            ms(base_time),
        );

        let mut t = 2;
        while t <= max_threads {
            let (time, idx) = (0..reps)
                .map(|_| build_once(ds, scale, &opts.clone().with_threads(t)))
                .min_by_key(|(d, _)| *d)
                .expect("reps >= 1");
            assert_eq!(
                base_keys,
                keys_of(&idx),
                "{} at {t} threads is not byte-identical to the sequential build",
                ds.name(),
            );
            println!(
                "  {:<27}t={t} {:>9}  speedup {:.2}x  (byte-identical)",
                "", // align under the dataset row
                ms(time),
                base_time.as_secs_f64() / time.as_secs_f64().max(1e-9),
            );
            t *= 2;
        }
    }
    println!("build_scaling: all thread counts byte-identical to sequential");
}
