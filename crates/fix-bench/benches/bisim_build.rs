//! Bisimulation-graph construction throughput (Algorithm 1's
//! `CONSTRUCT-ENTRIES` is a single-pass `O(n + m)` stream) and the
//! depth-truncation forest, on the structure-rich XMark analogue.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use fix_bisim::{BisimBuilder, BisimGraph, SubpatternForest};
use fix_datagen::{xmark, GenConfig};
use fix_xml::{parse_document, LabelTable, TreeEventSource};

fn bench_bisim(c: &mut Criterion) {
    let xml = xmark(GenConfig::scaled(0.5));
    let mut labels = LabelTable::new();
    let doc = parse_document(&xml, &mut labels).unwrap();
    let elements = doc
        .descendants_or_self(doc.root())
        .filter(|&n| doc.label(n).is_some())
        .count() as u64;

    let mut group = c.benchmark_group("bisim");
    group.throughput(Throughput::Elements(elements));
    group.bench_function("construct_entries", |b| {
        b.iter(|| {
            let mut g = BisimGraph::new();
            BisimBuilder::new(&mut g)
                .record_all_elements()
                .run(&mut TreeEventSource::whole(&doc))
        });
    });

    // Pre-build the graph once; bench the depth-6 truncation of every
    // element's vertex (the GEN-SUBPATTERN replacement).
    let mut g = BisimGraph::new();
    let info = BisimBuilder::new(&mut g)
        .record_all_elements()
        .run(&mut TreeEventSource::whole(&doc));
    group.bench_function("subpattern_forest_depth6", |b| {
        b.iter(|| {
            let mut forest = SubpatternForest::new();
            let mut distinct = 0usize;
            let mut seen = std::collections::HashSet::new();
            for &(v, _) in &info.closed {
                if seen.insert(forest.truncate(&g, v, 6)) {
                    distinct += 1;
                }
            }
            distinct
        });
    });
    group.finish();
}

criterion_group!(benches, bench_bisim);
criterion_main!(benches);
