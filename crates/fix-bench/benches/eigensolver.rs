//! Eigensolver microbenches — the paper's Section 3.3 cost claim:
//! "sub-millisecond for a dense 10×10 and sub-second for a dense 300×300
//! matrix on a Pentium 4 3 GHz". Measures the dense Jacobi solve at those
//! sizes plus the sparse Perron fast path the index build actually uses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fix_spectral::{jacobi_eigenvalues, perron_bounds_sparse, EigOptions};

fn dense_matrix(n: usize) -> Vec<f64> {
    // Deterministic dense symmetric matrix.
    let mut a = vec![0.0f64; n * n];
    let mut seed = 0x5EED_0101u64;
    let mut next = move || {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        (seed % 2000) as f64 / 100.0 - 10.0
    };
    for i in 0..n {
        for j in i..n {
            let v = next();
            a[i * n + j] = v;
            a[j * n + i] = v;
        }
    }
    a
}

fn sparse_tree_edges(n: usize) -> Vec<(u32, u32, f64)> {
    // A deterministic tree-ish sparse pattern with ~1.3 edges per vertex.
    let mut edges = Vec::new();
    for i in 1..n as u32 {
        edges.push((i / 2, i, (i % 13 + 1) as f64));
        if i % 3 == 0 && i / 3 < i {
            edges.push((i / 3, i, (i % 7 + 1) as f64));
        }
    }
    edges
}

fn bench_eigensolver(c: &mut Criterion) {
    let opts = EigOptions::default();
    let mut group = c.benchmark_group("jacobi_dense");
    group.sample_size(10);
    for n in [10usize, 50, 150, 300] {
        let a = dense_matrix(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| jacobi_eigenvalues(&a, n, &opts));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("perron_sparse");
    group.sample_size(20);
    for n in [10usize, 100, 1000, 5000] {
        let edges = sparse_tree_edges(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| perron_bounds_sparse(n, &edges, &opts));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_eigensolver);
criterion_main!(benches);
