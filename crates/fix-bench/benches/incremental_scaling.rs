//! Incremental-maintenance scaling: merged-scan overhead as the delta run
//! grows, and compaction throughput folding it back into the base tree.
//!
//! The workload is the XBench TCMD collection (the data set built for
//! document-granular churn): an index is built over the base corpus, a
//! second deterministic batch is inserted through the delta path in
//! stages, and at each stage the Table 2 queries are timed against the
//! merged base+delta scan. Every stage's answers are verified against a
//! from-scratch rebuild of the same logical collection, and the final
//! compaction is timed and re-verified — so the numbers and the
//! equivalence invariant travel together.
//!
//! Plain `main` (harness = false) so the sweep controls its own timing.
//!
//!   cargo bench -p fix-bench --bench incremental_scaling             # full sweep
//!   cargo bench -p fix-bench --bench incremental_scaling -- --test   # CI smoke
//!   cargo bench -p fix-bench --bench incremental_scaling -- --json   # machine-readable
//!   cargo bench -p fix-bench --bench incremental_scaling -- --scale 0.5

use std::time::{Duration, Instant};

use fix_core::{FixDatabase, FixOptions, QueryOutcome};
use fix_datagen::{tcmd, GenConfig};

/// The TCMD representative queries (Table 2), the serving workload.
const QUERIES: &[&str] = &[
    "/article/epilog[acknoledgements]/references/a_id",
    "/article/prolog[keywords]/authors/author/contact[phone]",
    "/article[epilog]/prolog/authors/author",
    "//authors/author",
];

/// One timed pass over the whole workload, best of `reps`.
fn timed(reps: usize, rounds: usize, db: &FixDatabase) -> Duration {
    (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            for _ in 0..rounds {
                for q in QUERIES {
                    drop(db.query(q).expect("workload query runs"));
                }
            }
            t0.elapsed()
        })
        .min()
        .expect("reps >= 1")
}

/// Ground truth at the current collection state: a from-scratch rebuild.
fn rebuild_reference(db: &FixDatabase, opts: &FixOptions) -> Vec<QueryOutcome> {
    let mut fresh = FixDatabase::in_memory();
    for (_, d) in db.collection().iter() {
        fresh
            .add_xml(&fix_xml::to_xml_string(d, &db.collection().labels))
            .expect("round-tripped document parses");
    }
    fresh.build(opts.clone()).expect("reference rebuild");
    QUERIES
        .iter()
        .map(|q| fresh.query(q).expect("reference query runs"))
        .collect()
}

fn verify(db: &FixDatabase, reference: &[QueryOutcome], label: &str) {
    for (q, want) in QUERIES.iter().zip(reference) {
        let got = db.query(q).expect("maintained query runs");
        assert_eq!(
            got.results, want.results,
            "{label}: maintained index diverged from rebuild on {q}"
        );
    }
}

struct StageRow {
    delta_entries: u64,
    delta_bytes: u64,
    query_ns: u128,
    overhead: f64,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--test");
    let json = args.iter().any(|a| a == "--json");
    let mut scale = if smoke { 0.1 } else { 1.0 };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(scale);
        }
    }
    let (reps, rounds) = if smoke { (1, 2) } else { (3, 10) };

    // Base corpus and a disjoint deterministic batch to feed the delta.
    let base_docs = tcmd(GenConfig::scaled(scale));
    let extra_docs = tcmd(GenConfig {
        seed: 0xDE17A,
        scale,
    });

    let mut opts = FixOptions::collection();
    opts.compact_ratio = 0.0; // explicit compaction only: the sweep owns the trigger
    let mut db = FixDatabase::in_memory();
    for d in &base_docs {
        db.add_xml(d).expect("generated XML parses");
    }
    db.build(opts.clone()).expect("base index builds");
    let base_entries = db.index().expect("built").entry_count();

    if !json {
        println!(
            "incremental_scaling: scale {scale}, {} base docs ({base_entries} entries), \
             {} insert candidates, best of {reps} x {rounds} rounds ({}):",
            base_docs.len(),
            extra_docs.len(),
            if smoke { "smoke" } else { "full" },
        );
    }

    // Stage 0: the pristine base index.
    let base_time = timed(reps, rounds, &db);
    let mut stages: Vec<StageRow> = vec![StageRow {
        delta_entries: 0,
        delta_bytes: 0,
        query_ns: base_time.as_nanos(),
        overhead: 1.0,
    }];

    // Grow the delta in quarters of the insert batch, timing each stage.
    let mut inserted = 0usize;
    for quarter in 1..=4usize {
        let until = extra_docs.len() * quarter / 4;
        for d in &extra_docs[inserted..until] {
            db.add_xml(d).expect("delta insert");
        }
        inserted = until;
        let stats = db.index().expect("built").delta_stats();
        let time = timed(reps, rounds, &db);
        stages.push(StageRow {
            delta_entries: stats.entries,
            delta_bytes: stats.bytes,
            query_ns: time.as_nanos(),
            overhead: time.as_secs_f64() / base_time.as_secs_f64().max(1e-12),
        });
    }
    // The merged scan must agree with a rebuild before compaction…
    let reference = rebuild_reference(&db, &opts);
    verify(&db, &reference, "pre-compaction");

    // …and compaction folds the delta at measurable throughput.
    let delta_before = db.index().expect("built").delta_len();
    let t0 = Instant::now();
    db.compact().expect("compaction");
    let compact_time = t0.elapsed();
    let total_entries = db.index().expect("built").entry_count();
    assert_eq!(db.index().expect("built").delta_len(), 0);
    verify(&db, &reference, "post-compaction");
    let post_time = timed(reps, rounds, &db);
    let throughput = total_entries as f64 / compact_time.as_secs_f64().max(1e-12);

    if json {
        let rows: Vec<String> = stages
            .iter()
            .map(|s| {
                format!(
                    r#"{{"delta_entries":{},"delta_bytes":{},"query_ns":{},"overhead":{:.4}}}"#,
                    s.delta_entries, s.delta_bytes, s.query_ns, s.overhead
                )
            })
            .collect();
        println!(
            r#"{{"base_entries":{base_entries},"stages":[{}],"compaction":{{"folded_entries":{delta_before},"total_entries":{total_entries},"wall_ns":{},"entries_per_s":{:.0}}},"post_compaction_query_ns":{},"verified":true}}"#,
            rows.join(","),
            compact_time.as_nanos(),
            throughput,
            post_time.as_nanos(),
        );
    } else {
        for s in &stages {
            println!(
                "  delta {:>6} entries {:>9} B  workload {:>9.3?}  overhead {:.2}x",
                s.delta_entries,
                s.delta_bytes,
                Duration::from_nanos(s.query_ns as u64),
                s.overhead
            );
        }
        println!(
            "  compaction: folded {delta_before} delta entries -> {total_entries} total \
             in {compact_time:.3?} ({throughput:.0} entries/s)"
        );
        println!(
            "  post-compaction workload {post_time:>9.3?} ({:.2}x of base)",
            post_time.as_secs_f64() / base_time.as_secs_f64().max(1e-12)
        );
        println!("incremental_scaling: every stage verified against a from-scratch rebuild");
    }
}
