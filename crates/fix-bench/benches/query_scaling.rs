//! Query-serving scaling: a repeated-query workload through a
//! [`QuerySession`] at 1..=N refinement threads, reporting the warm-cache
//! wall-clock speedup over the sequential `FixDatabase::query` path and the
//! plan-cache hit rate, and verifying on every configuration that the
//! served outcomes are byte-identical to the sequential ones.
//!
//! Plain `main` (harness = false) so the sweep controls its own timing.
//!
//!   cargo bench -p fix-bench --bench query_scaling              # full sweep
//!   cargo bench -p fix-bench --bench query_scaling -- --test    # CI smoke
//!   cargo bench -p fix-bench --bench query_scaling -- --scale 0.5 --max-threads 8

use std::time::{Duration, Instant};

use fix_bench::{ms, Dataset};
use fix_core::{FixDatabase, QueryOutcome, QuerySession};

/// The Table 2 representative queries, grouped per data set — the serving
/// workload repeats each group round after round, the way a query-serving
/// process sees the same handful of application queries over and over.
const WORKLOADS: [(Dataset, &[&str]); 4] = [
    (
        Dataset::Tcmd,
        &[
            "/article/epilog[acknoledgements]/references/a_id",
            "/article/prolog[keywords]/authors/author/contact[phone]",
            "/article[epilog]/prolog/authors/author",
        ],
    ),
    (
        Dataset::Dblp,
        &[
            "//proceedings[booktitle]/title[sup][i]",
            "//article[number]/author",
            "//inproceedings[url]/title",
        ],
    ),
    (
        Dataset::Xmark,
        &[
            "//category/description[parlist]/parlist/listitem/text",
            "//closed_auction/annotation/description/text",
            "//open_auction[seller]/annotation/description/text",
        ],
    ),
    (
        Dataset::Treebank,
        &[
            "//EMPTY/S/NP[PP]/NP",
            "//S[VP]/NP/NP/PP/NP",
            "//EMPTY/S[VP]/NP",
        ],
    ),
];

/// One timed pass: `rounds` repetitions of the whole query group.
fn timed_rounds(rounds: usize, queries: &[&str], mut run: impl FnMut(&str)) -> Duration {
    let t0 = Instant::now();
    for _ in 0..rounds {
        for q in queries {
            run(q);
        }
    }
    t0.elapsed()
}

/// Verifies every query's served outcome against the sequential reference.
fn verify(session: &QuerySession, queries: &[&str], reference: &[QueryOutcome], label: &str) {
    for (q, want) in queries.iter().zip(reference) {
        let got = session.query(q).expect("reference query serves");
        assert_eq!(&got, want, "{label}: served outcome diverged on {q}");
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--test");
    let mut scale = if smoke { 0.05 } else { 1.0 };
    let mut max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .max(if smoke { 2 } else { 4 });
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(scale),
            "--max-threads" => {
                max_threads = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(max_threads)
            }
            _ => {}
        }
    }
    let reps = if smoke { 1 } else { 3 };
    let rounds = if smoke { 2 } else { 10 };
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!(
        "query_scaling: scale {scale}, {rounds} rounds/pass, threads 1..={max_threads}, {cores} host core(s), best of {reps} ({}):",
        if smoke { "smoke" } else { "full" },
    );
    if max_threads > cores {
        println!(
            "  note: thread counts past {cores} oversubscribe this host — they verify \
             determinism but time-slice one core, so expect no speedup from them here"
        );
    }
    for (ds, queries) in WORKLOADS {
        let mut db = FixDatabase::from_parts(ds.load(scale), None);
        db.build(ds.default_options()).expect("index builds");

        // Sequential reference: outcomes once, then the same repeated
        // workload through the uncached single-threaded path.
        let reference: Vec<QueryOutcome> = queries
            .iter()
            .map(|q| db.query(q).expect("reference query runs"))
            .collect();
        let base_time = (0..reps)
            .map(|_| timed_rounds(rounds, queries, |q| drop(db.query(q).unwrap())))
            .min()
            .expect("reps >= 1");
        println!(
            "  {:<9} {} queries  sequential {:>9}",
            ds.name(),
            queries.len(),
            ms(base_time),
        );

        let mut t = 1;
        while t <= max_threads {
            let session = db.session().expect("indexed database").with_threads(t);
            // Cold pass: populates the plan cache and checks byte-identity.
            verify(&session, queries, &reference, ds.name());
            let time = (0..reps)
                .map(|_| timed_rounds(rounds, queries, |q| drop(session.query(q).unwrap())))
                .min()
                .expect("reps >= 1");
            // Re-check after the timed warm passes: eviction or reuse must
            // not have changed a single byte.
            verify(&session, queries, &reference, ds.name());
            let stats = session.cache_stats();
            println!(
                "  {:<11}t={t:<2} {:>9}  speedup {:.2}x  cache {:.0}% hits ({}h/{}m)  (byte-identical)",
                "", // align under the dataset row
                ms(time),
                base_time.as_secs_f64() / time.as_secs_f64().max(1e-9),
                100.0 * stats.hit_rate(),
                stats.hits,
                stats.misses,
            );
            t *= 2;
        }
    }
    println!("query_scaling: all thread counts byte-identical to the sequential path");
}
