//! Write-path scaling: sustained mutation throughput through the
//! WAL-backed `FixDatabase::write` across durability modes, with the
//! delta tiers keeping read amplification bounded while the log grows.
//!
//! The workload is document-granular churn on the XBench TCMD analogue:
//! a base index is built and checkpointed to disk, then a deterministic
//! mutation stream (adds with periodic tombstones) is committed one
//! batch at a time under each durability policy. A small WAL seal
//! threshold forces frequent segment seals, so the delta freezes into
//! tiered runs throughout the run — the bench asserts the k-way scan's
//! source count stays within the size-tiering bound instead of growing
//! linearly with the number of seals. Each leg ends with a
//! kill-and-reopen: the database is dropped *without* a save and
//! reopened, and the replayed state must answer the serving queries
//! exactly like the live one did.
//!
//! The sweep ends with a **recorder overhead leg**: the same
//! async-durability mutation stream with the flight recorder at its
//! default capacity vs disabled (capacity 0), asserting the recorder
//! costs < 5% of sustained mutation throughput (best-of-N wall clock on
//! both sides, so scheduler noise doesn't masquerade as overhead).
//!
//! Plain `main` (harness = false) so the sweep controls its own timing.
//!
//!   cargo bench -p fix-bench --bench write_scaling             # full sweep
//!   cargo bench -p fix-bench --bench write_scaling -- --test   # CI smoke
//!   cargo bench -p fix-bench --bench write_scaling -- --json   # machine-readable
//!   cargo bench -p fix-bench --bench write_scaling -- --scale 0.5

use std::path::PathBuf;
use std::time::{Duration, Instant};

use fix_core::{Durability, FixDatabase, FixOptions, WriteBatch};
use fix_datagen::{tcmd, GenConfig};

/// Serving queries run against the final state of every leg.
const QUERIES: &[&str] = &["/article[epilog]/prolog/authors/author", "//authors/author"];

/// Tier fanout used by every leg (the default, spelled out because the
/// read-amplification bound below depends on it).
const FANOUT: usize = 4;

fn temp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("fix-write-scaling-{}-{name}", std::process::id()))
}

struct ModeRow {
    durability: &'static str,
    mutations: usize,
    wall: Duration,
    fsyncs: u64,
    sealed_segments: u64,
    levels: usize,
    frozen_runs: usize,
    read_amp: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--test");
    let json = args.iter().any(|a| a == "--json");
    let mut scale = if smoke { 0.05 } else { 0.5 };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--scale" {
            scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(scale);
        }
    }

    let base_docs = tcmd(GenConfig::scaled(scale));
    let extra_docs = tcmd(GenConfig {
        seed: 0xDE17A,
        scale,
    });

    let modes: &[(&'static str, Durability)] = &[
        ("sync", Durability::Sync),
        (
            "group",
            Durability::Group {
                max_wait: Duration::from_millis(2),
            },
        ),
        ("async", Durability::Async),
    ];

    if !json {
        println!(
            "write_scaling: scale {scale}, {} base docs, {} mutations per mode ({}):",
            base_docs.len(),
            extra_docs.len() + extra_docs.len() / 8,
            if smoke { "smoke" } else { "full" },
        );
    }

    let mut rows: Vec<ModeRow> = Vec::new();
    for (name, durability) in modes {
        let path = temp(&format!("{name}.fixdb"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();

        let mut db = FixDatabase::open(&path).expect("fresh database opens");
        for d in &base_docs {
            db.add_xml(d).expect("generated XML parses");
        }
        db.build(
            FixOptions::builder()
                .compact_ratio(0.0) // tiering, not compaction, bounds read amp here
                .wal_seal_bytes(if smoke { 512 } else { 4096 })
                .tier_fanout(FANOUT)
                .durability(*durability)
                .build(),
        )
        .expect("base index builds");
        db.save().expect("checkpoint");

        // The sustained mutation stream: one-op add batches, with a
        // tombstone batch committed after every 8th add.
        let mut mutations = 0usize;
        let t0 = Instant::now();
        for (i, d) in extra_docs.iter().enumerate() {
            let mut batch = WriteBatch::new();
            batch.add_xml(d.as_str());
            let ids = db.write(batch).expect("logged add commits");
            mutations += 1;
            if i % 8 == 7 {
                let mut batch = WriteBatch::new();
                batch.remove_document(ids[0]);
                db.write(batch).expect("logged remove commits");
                mutations += 1;
            }
        }
        let wall = t0.elapsed();

        let w = db.wal_stats().expect("the stream engaged the log");
        let d = db.index().expect("built").delta_stats();
        let levels = db.level_stats();
        let frozen_runs: usize = levels.iter().map(|l| l.runs).sum();
        // k-way scan sources: base tree + every frozen run + the
        // unsealed active run.
        let read_amp = 1 + frozen_runs + usize::from(d.tail_entries > 0);
        // Size-tiering bound: a level cascades into the next at FANOUT
        // runs, so each holds at most FANOUT-1 between merges and the
        // stack is logarithmic in the number of seals — NOT linear.
        let bound = (FANOUT - 1) * levels.len().max(1) + 2;
        assert!(
            read_amp <= bound,
            "{name}: read amplification {read_amp} exceeds the tiering bound {bound} \
             ({} seals produced {frozen_runs} live runs across {} levels)",
            w.seals,
            levels.len()
        );
        assert!(
            w.seals >= 1,
            "{name}: the seal threshold never tripped — the tier path went unexercised"
        );

        // Kill-and-reopen: no save since the checkpoint; the WAL alone
        // must reproduce the live answers.
        let live_len = db.len();
        let live_answers: Vec<_> = QUERIES
            .iter()
            .map(|q| db.query(q).expect("live query").results)
            .collect();
        drop(db);
        let db = FixDatabase::open(&path).expect("reopen replays the log");
        assert_eq!(db.len(), live_len, "{name}: replay lost documents");
        for (q, want) in QUERIES.iter().zip(&live_answers) {
            let got = db.query(q).expect("replayed query").results;
            assert_eq!(&got, want, "{name}: replay diverged on {q}");
        }

        rows.push(ModeRow {
            durability: name,
            mutations,
            wall,
            fsyncs: w.fsyncs,
            sealed_segments: w.seals,
            levels: levels.len(),
            frozen_runs,
            read_amp,
        });
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    let (on_per_s, off_per_s) = recorder_overhead(&base_docs, &extra_docs, smoke);
    let overhead_pct = 100.0 * (1.0 - on_per_s / off_per_s);

    if json {
        let mode_rows: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    r#"{{"durability":"{}","mutations":{},"wall_ns":{},"mutations_per_s":{:.0},"fsyncs":{},"sealed_segments":{},"levels":{},"frozen_runs":{},"read_amp":{}}}"#,
                    r.durability,
                    r.mutations,
                    r.wall.as_nanos(),
                    r.mutations as f64 / r.wall.as_secs_f64().max(1e-12),
                    r.fsyncs,
                    r.sealed_segments,
                    r.levels,
                    r.frozen_runs,
                    r.read_amp,
                )
            })
            .collect();
        println!(
            r#"{{"base_docs":{},"fanout":{FANOUT},"modes":[{}],"recorder":{{"on_mutations_per_s":{on_per_s:.0},"off_mutations_per_s":{off_per_s:.0},"overhead_pct":{overhead_pct:.2}}},"verified":true}}"#,
            base_docs.len(),
            mode_rows.join(","),
        );
    } else {
        for r in &rows {
            println!(
                "  {:<6} {:>6} mutations in {:>9.3?}  ({:>9.0}/s, {:>5} fsyncs)  \
                 {} seals -> {} runs / {} levels (read amp {})",
                r.durability,
                r.mutations,
                r.wall,
                r.mutations as f64 / r.wall.as_secs_f64().max(1e-12),
                r.fsyncs,
                r.sealed_segments,
                r.frozen_runs,
                r.levels,
                r.read_amp,
            );
        }
        println!(
            "  recorder on {on_per_s:>9.0}/s vs off {off_per_s:>9.0}/s ({overhead_pct:+.2}% overhead)"
        );
        println!("write_scaling: every mode replayed from the WAL to the exact live answers");
    }
}

/// The flight-recorder overhead leg: identical async-durability mutation
/// streams with the recorder at its default capacity (1024, slow-op log
/// armed at the default threshold) and fully disabled (capacity 0).
/// Alternates runs and keeps each side's best wall clock; retries with
/// more repetitions before declaring an overhead the bound rejects, so a
/// one-off scheduler stall doesn't fail the sweep.
fn recorder_overhead(base_docs: &[String], extra_docs: &[String], smoke: bool) -> (f64, f64) {
    let run = |capacity: usize, tag: &str| -> Duration {
        let path = temp(&format!("overhead-{tag}.fixdb"));
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        let mut db = FixDatabase::open(&path).expect("fresh database opens");
        for d in base_docs {
            db.add_xml(d).expect("generated XML parses");
        }
        db.build(
            FixOptions::builder()
                .compact_ratio(0.0)
                .wal_seal_bytes(if smoke { 512 } else { 4096 })
                .tier_fanout(FANOUT)
                .durability(Durability::Async)
                .event_capacity(capacity)
                .build(),
        )
        .expect("base index builds");
        db.save().expect("checkpoint");
        let t0 = Instant::now();
        for d in extra_docs {
            let mut batch = WriteBatch::new();
            batch.add_xml(d.as_str());
            db.write(batch).expect("logged add commits");
        }
        let wall = t0.elapsed();
        if capacity > 0 {
            assert!(
                db.events().iter().any(|e| e.name == "commit"),
                "the enabled recorder saw the stream"
            );
        } else {
            assert!(db.events().is_empty(), "capacity 0 recorded nothing");
        }
        drop(db);
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        std::fs::remove_file(&path).ok();
        wall
    };

    let mut best_on = Duration::MAX;
    let mut best_off = Duration::MAX;
    let mut round = 0usize;
    loop {
        for _ in 0..3 {
            best_on = best_on.min(run(1024, &format!("on{round}")));
            best_off = best_off.min(run(0, &format!("off{round}")));
            round += 1;
        }
        let on = extra_docs.len() as f64 / best_on.as_secs_f64().max(1e-12);
        let off = extra_docs.len() as f64 / best_off.as_secs_f64().max(1e-12);
        if on >= 0.95 * off {
            return (on, off);
        }
        assert!(
            round < 9,
            "flight recorder costs more than 5% of write throughput: \
             {on:.0}/s enabled vs {off:.0}/s disabled after {round} runs each"
        );
    }
}
