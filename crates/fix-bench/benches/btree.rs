//! B+-tree microbenches: insert throughput (sequential vs scrambled key
//! order — the unclustered index inserts in document order, the clustered
//! one bulk-loads in key order) and range-scan throughput.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use fix_btree::BTree;
use fix_storage::PageSpace;

const N: u64 = 20_000;

fn key(v: u64) -> [u8; 40] {
    let mut k = [0u8; 40];
    k[4..12].copy_from_slice(&v.to_be_bytes());
    k
}

fn scrambled() -> Vec<u64> {
    let mut v: Vec<u64> = (0..N).collect();
    let mut seed = 99u64;
    for i in (1..v.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        v.swap(i, (seed % (i as u64 + 1)) as usize);
    }
    v
}

fn bench_btree(c: &mut Criterion) {
    let mut group = c.benchmark_group("btree");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N));

    group.bench_function("insert_sequential", |b| {
        b.iter(|| {
            let mut t = BTree::new(PageSpace::in_memory(512), 40);
            for i in 0..N {
                t.insert(&key(i), i);
            }
            t.len()
        });
    });

    let scram = scrambled();
    group.bench_function("insert_scrambled", |b| {
        b.iter(|| {
            let mut t = BTree::new(PageSpace::in_memory(512), 40);
            for &i in &scram {
                t.insert(&key(i), i);
            }
            t.len()
        });
    });

    let mut t = BTree::new(PageSpace::in_memory(512), 40);
    for i in 0..N {
        t.insert(&key(i), i);
    }
    group.bench_function("range_scan_10pct", |b| {
        b.iter(|| {
            t.range(&key(N / 2), Some(&key(N / 2 + N / 10)))
                .map(|(_, v)| v)
                .sum::<u64>()
        });
    });
    group.bench_function("point_lookup", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 7919) % N;
            t.get(&key(i))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_btree);
criterion_main!(benches);
