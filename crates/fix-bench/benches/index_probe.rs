//! End-to-end index operation benches on the XMark analogue: the pruning
//! probe alone (Algorithm 2's index phase), the full prune + refine query,
//! and the navigational baseline for reference.

use criterion::{criterion_group, criterion_main, Criterion};

use fix_bench::Dataset;
use fix_core::FixIndex;
use fix_exec::eval_path;
use fix_xpath::parse_path;

fn bench_probe(c: &mut Criterion) {
    let mut coll = Dataset::Xmark.load(1.0);
    let idx = FixIndex::build(&mut coll, Dataset::Xmark.default_options());
    let queries = [
        ("hi_sp", "//item/mailbox/mail/text/emph/keyword"),
        ("lo_sp", "//description/parlist/listitem"),
        (
            "hi_bp",
            "//item[name]/mailbox/mail[to]/text[bold]/emph/bold",
        ),
    ];
    let mut group = c.benchmark_group("xmark_query");
    group.sample_size(30);
    for (name, q) in queries {
        let path = parse_path(q).unwrap();
        group.bench_function(format!("prune_{name}"), |b| {
            b.iter(|| idx.candidates(&coll, &path).unwrap().len());
        });
        group.bench_function(format!("prune_refine_{name}"), |b| {
            b.iter(|| idx.query_path(&coll, &path).unwrap().results.len());
        });
        group.bench_function(format!("nok_scan_{name}"), |b| {
            b.iter(|| {
                coll.iter()
                    .map(|(_, d)| eval_path(d, &coll.labels, &path).len())
                    .sum::<usize>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_probe);
criterion_main!(benches);
