//! Arena-allocated XML document trees.
//!
//! A [`Document`] stores its nodes in a flat `Vec` in *document order*
//! (preorder), using first-child / next-sibling links. Document order being
//! the physical order gives us two properties the paper's machinery relies
//! on: (1) a node id doubles as the "pointer into primary storage" used by
//! the unclustered index, and (2) a subtree occupies a contiguous id range,
//! so "copy the subtree" (clustered index) and "stream the subtree as
//! events" are both simple scans.

use crate::label::LabelId;

/// Identifier of a node within one [`Document`]; equals the node's preorder
/// rank, so `NodeId` order is document order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Raw index into the document's node arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What a node is: an element with an interned label, or a text node
/// pointing into the document's text arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An element node, e.g. `<author>`.
    Element(LabelId),
    /// A text node; the payload indexes [`Document::text`].
    Text(u32),
}

/// One tree node. Links are stored as `Option<NodeId>` encoded in u32::MAX
/// sentinels internally; the public accessors return `Option`.
#[derive(Debug, Clone, Copy)]
pub struct Node {
    pub(crate) kind: NodeKind,
    pub(crate) parent: u32,
    pub(crate) first_child: u32,
    pub(crate) next_sibling: u32,
    /// Preorder index one past the last descendant; the subtree of node `i`
    /// is exactly the id range `i..subtree_end`.
    pub(crate) subtree_end: u32,
}

const NIL: u32 = u32::MAX;

impl Node {
    /// The node's kind (element or text).
    #[inline]
    pub fn kind(&self) -> NodeKind {
        self.kind
    }
}

/// An immutable XML tree plus its text arena.
///
/// Labels are interned in an external [`LabelTable`](crate::label::LabelTable) shared across a
/// collection, so structural comparisons between documents (and against
/// queries) are integer comparisons.
#[derive(Debug, Clone)]
pub struct Document {
    nodes: Vec<Node>,
    texts: Vec<String>,
}

impl Document {
    /// The root element. Every well-formed document has exactly one.
    pub fn root(&self) -> NodeId {
        debug_assert!(!self.nodes.is_empty());
        NodeId(0)
    }

    /// Total number of nodes (elements + text nodes).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True only for a pathological empty arena (builders never produce one).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node's kind.
    #[inline]
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.nodes[n.index()].kind
    }

    /// The element label, or `None` for a text node.
    #[inline]
    pub fn label(&self, n: NodeId) -> Option<LabelId> {
        match self.nodes[n.index()].kind {
            NodeKind::Element(l) => Some(l),
            NodeKind::Text(_) => None,
        }
    }

    /// The text content, or `None` for an element node.
    pub fn text(&self, n: NodeId) -> Option<&str> {
        match self.nodes[n.index()].kind {
            NodeKind::Element(_) => None,
            NodeKind::Text(t) => Some(&self.texts[t as usize]),
        }
    }

    /// Parent link; `None` at the root.
    #[inline]
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let p = self.nodes[n.index()].parent;
        (p != NIL).then_some(NodeId(p))
    }

    /// First child in document order.
    #[inline]
    pub fn first_child(&self, n: NodeId) -> Option<NodeId> {
        let c = self.nodes[n.index()].first_child;
        (c != NIL).then_some(NodeId(c))
    }

    /// Next sibling in document order.
    #[inline]
    pub fn next_sibling(&self, n: NodeId) -> Option<NodeId> {
        let s = self.nodes[n.index()].next_sibling;
        (s != NIL).then_some(NodeId(s))
    }

    /// One past the preorder rank of the last descendant of `n`.
    #[inline]
    pub fn subtree_end(&self, n: NodeId) -> NodeId {
        NodeId(self.nodes[n.index()].subtree_end)
    }

    /// Number of nodes in the subtree rooted at `n` (including `n`).
    pub fn subtree_size(&self, n: NodeId) -> usize {
        (self.nodes[n.index()].subtree_end - n.0) as usize
    }

    /// True if `desc` lies in the subtree of `anc` (self counts).
    pub fn is_ancestor_or_self(&self, anc: NodeId, desc: NodeId) -> bool {
        anc <= desc && desc.0 < self.nodes[anc.index()].subtree_end
    }

    /// Iterates the children of `n` in document order.
    pub fn children(&self, n: NodeId) -> Children<'_> {
        Children {
            doc: self,
            next: self.first_child(n),
        }
    }

    /// Iterates the element children of `n` (skipping text nodes).
    pub fn element_children(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(n)
            .filter(|&c| matches!(self.kind(c), NodeKind::Element(_)))
    }

    /// Iterates the subtree of `n` in document (pre-)order, `n` first.
    pub fn descendants_or_self(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        (n.0..self.nodes[n.index()].subtree_end).map(NodeId)
    }

    /// Depth of `n` (root is depth 1, matching the paper's "depth of a
    /// document" used for the depth-limit cover test).
    pub fn depth(&self, n: NodeId) -> usize {
        let mut d = 1;
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// Maximum node depth in the whole document.
    pub fn max_depth(&self) -> usize {
        let mut max = 0;
        let mut depth = 0usize;
        // Single pass using the fact that preorder + subtree_end gives us
        // open/close structure without parent chasing.
        let mut stack: Vec<u32> = Vec::new();
        for (i, node) in self.nodes.iter().enumerate() {
            while let Some(&end) = stack.last() {
                if end <= i as u32 {
                    stack.pop();
                    depth -= 1;
                } else {
                    break;
                }
            }
            // Depth is measured over element nodes only; text nodes do not
            // contribute a level (they are leaves in the structural tree).
            if matches!(node.kind, NodeKind::Element(_)) {
                depth += 1;
                max = max.max(depth);
                stack.push(node.subtree_end);
            }
        }
        max
    }

    /// The concatenated text content of the subtree of `n`.
    pub fn text_content(&self, n: NodeId) -> String {
        let mut out = String::new();
        for d in self.descendants_or_self(n) {
            if let Some(t) = self.text(d) {
                out.push_str(t);
            }
        }
        out
    }

    /// Direct access to the text arena length (used by stats).
    pub fn text_count(&self) -> usize {
        self.texts.len()
    }
}

/// Iterator over the children of a node.
pub struct Children<'a> {
    doc: &'a Document,
    next: Option<NodeId>,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let cur = self.next?;
        self.next = self.doc.next_sibling(cur);
        Some(cur)
    }
}

/// Incremental builder producing a [`Document`] in one preorder pass.
///
/// Call [`DocumentBuilder::open`] / [`DocumentBuilder::text`] /
/// [`DocumentBuilder::close`] in well-nested order, then
/// [`DocumentBuilder::finish`]. The builder validates nesting and panics on
/// misuse (it is an internal construction API; the parser performs its own
/// user-facing error handling before driving the builder).
#[derive(Debug)]
pub struct DocumentBuilder {
    nodes: Vec<Node>,
    texts: Vec<String>,
    /// Stack of open element ids.
    open: Vec<u32>,
    /// Last finished child of the element at the same stack depth, used to
    /// wire `next_sibling` links.
    last_child: Vec<u32>,
    finished_root: bool,
}

impl Default for DocumentBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DocumentBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            texts: Vec::new(),
            open: Vec::new(),
            last_child: Vec::new(),
            finished_root: false,
        }
    }

    fn push_node(&mut self, kind: NodeKind) -> u32 {
        assert!(
            !self.finished_root,
            "document already has a completed root element"
        );
        let id = self.nodes.len() as u32;
        let parent = self.open.last().copied().unwrap_or(NIL);
        if parent == NIL {
            assert!(
                matches!(kind, NodeKind::Element(_)),
                "top-level content must be a single element"
            );
            assert!(self.nodes.is_empty(), "only one root element is allowed");
        }
        // Wire sibling link from the previous child at this level.
        if let Some(last) = self.last_child.last_mut() {
            if *last != NIL {
                self.nodes[*last as usize].next_sibling = id;
            }
            *last = id;
        }
        // first_child link on the parent.
        if parent != NIL && self.nodes[parent as usize].first_child == NIL {
            self.nodes[parent as usize].first_child = id;
        }
        self.nodes.push(Node {
            kind,
            parent,
            first_child: NIL,
            next_sibling: NIL,
            subtree_end: id + 1,
        });
        id
    }

    /// Opens a new element with label `label`.
    pub fn open(&mut self, label: LabelId) -> NodeId {
        let id = self.push_node(NodeKind::Element(label));
        self.open.push(id);
        self.last_child.push(NIL);
        NodeId(id)
    }

    /// Adds a text node under the currently open element.
    pub fn text(&mut self, content: &str) -> NodeId {
        assert!(
            !self.open.is_empty(),
            "text node requires an open parent element"
        );
        let tid = self.texts.len() as u32;
        self.texts.push(content.to_owned());
        NodeId(self.push_node(NodeKind::Text(tid)))
    }

    /// Closes the most recently opened element.
    pub fn close(&mut self) {
        let id = self.open.pop().expect("close without a matching open");
        self.last_child.pop();
        self.nodes[id as usize].subtree_end = self.nodes.len() as u32;
        if self.open.is_empty() {
            self.finished_root = true;
        }
    }

    /// Number of nodes created so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no node has been created yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Finalizes the document.
    ///
    /// # Panics
    /// Panics if no root element was built or an element is still open.
    pub fn finish(self) -> Document {
        assert!(self.open.is_empty(), "unclosed element at finish");
        assert!(self.finished_root, "document has no root element");
        Document {
            nodes: self.nodes,
            texts: self.texts,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelTable;

    fn sample() -> (Document, LabelTable) {
        // <bib><article><title/>t</article><book/></bib>  (t = text in article)
        let mut lt = LabelTable::new();
        let (bib, article, title, book) = (
            lt.intern("bib"),
            lt.intern("article"),
            lt.intern("title"),
            lt.intern("book"),
        );
        let mut b = DocumentBuilder::new();
        b.open(bib);
        b.open(article);
        b.open(title);
        b.close();
        b.text("t");
        b.close();
        b.open(book);
        b.close();
        b.close();
        (b.finish(), lt)
    }

    #[test]
    fn structure_links() {
        let (d, lt) = sample();
        let root = d.root();
        assert_eq!(d.label(root), lt.lookup("bib"));
        let kids: Vec<_> = d.children(root).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(d.label(kids[0]), lt.lookup("article"));
        assert_eq!(d.label(kids[1]), lt.lookup("book"));
        assert_eq!(d.parent(kids[0]), Some(root));
        assert_eq!(d.parent(root), None);
        let article_kids: Vec<_> = d.children(kids[0]).collect();
        assert_eq!(article_kids.len(), 2);
        assert_eq!(d.text(article_kids[1]), Some("t"));
    }

    #[test]
    fn subtree_ranges_are_contiguous() {
        let (d, _) = sample();
        let root = d.root();
        assert_eq!(d.subtree_size(root), d.len());
        let article = d.first_child(root).unwrap();
        assert_eq!(d.subtree_size(article), 3); // article, title, text
        let ids: Vec<_> = d.descendants_or_self(article).collect();
        assert_eq!(ids, vec![NodeId(1), NodeId(2), NodeId(3)]);
        assert!(d.is_ancestor_or_self(root, article));
        assert!(!d.is_ancestor_or_self(article, root));
    }

    #[test]
    fn depth_and_max_depth() {
        let (d, _) = sample();
        assert_eq!(d.depth(d.root()), 1);
        let article = d.first_child(d.root()).unwrap();
        let title = d.first_child(article).unwrap();
        assert_eq!(d.depth(title), 3);
        assert_eq!(d.max_depth(), 3);
    }

    #[test]
    fn element_children_skip_text() {
        let (d, _) = sample();
        let article = d.first_child(d.root()).unwrap();
        assert_eq!(d.element_children(article).count(), 1);
        assert_eq!(d.children(article).count(), 2);
    }

    #[test]
    fn text_content_concatenates() {
        let (d, _) = sample();
        assert_eq!(d.text_content(d.root()), "t");
    }

    #[test]
    #[should_panic(expected = "close without a matching open")]
    fn unbalanced_close_panics() {
        let mut b = DocumentBuilder::new();
        b.close();
    }

    #[test]
    #[should_panic(expected = "already has a completed root")]
    fn two_roots_panic() {
        let mut lt = LabelTable::new();
        let a = lt.intern("a");
        let mut b = DocumentBuilder::new();
        b.open(a);
        b.close();
        b.open(a);
    }
}
