//! A from-scratch XML pull parser.
//!
//! Handles the XML subset exercised by the paper's data sets: elements,
//! attributes, character data, CDATA sections, comments, processing
//! instructions, an optional XML declaration / DOCTYPE, and the predefined
//! plus numeric character references. Namespaces are treated lexically
//! (prefixed names are kept verbatim), matching how the original FIX
//! prototype treated labels.
//!
//! Attributes are exposed on [`RawEvent::StartElement`]; the document
//! builder materializes them as `@name` child elements holding a text node,
//! so attribute-based twigs can be indexed exactly like element twigs.

use std::fmt;

use crate::document::{Document, DocumentBuilder};
use crate::label::LabelTable;

/// A lexical parse event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawEvent {
    /// `<name attr="v" ...>` or `<name/>` (the latter is followed by a
    /// synthesized `EndElement`).
    StartElement {
        name: String,
        attributes: Vec<(String, String)>,
    },
    /// `</name>` (or the synthetic close of an empty-element tag).
    EndElement { name: String },
    /// Character data (entity references already decoded). Whitespace-only
    /// runs between tags are suppressed.
    Text(String),
}

/// A parse failure, with byte offset for diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input where the problem was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Default maximum element nesting depth accepted by both parsers.
///
/// Pathologically nested input (`<a><a><a>…`) otherwise grows the open-tag
/// stack — and every downstream consumer of the document tree — without
/// bound; 1024 is far beyond any real corpus (the paper's deepest data
/// set, Treebank, tops out in the dozens). Raise per parse with
/// [`Parser::with_max_depth`] or per index via
/// `FixOptions::max_parse_depth`; `usize::MAX` disables the check.
pub const DEFAULT_MAX_DEPTH: usize = 1024;

/// Streaming pull parser over a UTF-8 input string.
pub struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
    /// Stack of open element names, for well-formedness checking.
    open: Vec<String>,
    /// Synthesized end event for `<x/>`.
    pending_end: Option<String>,
    /// Set once the root element closes.
    root_closed: bool,
    seen_root: bool,
    /// Maximum accepted element nesting depth.
    max_depth: usize,
}

impl<'a> Parser<'a> {
    /// Creates a parser over `input`.
    pub fn new(input: &'a str) -> Self {
        Self {
            input: input.as_bytes(),
            pos: 0,
            open: Vec::new(),
            pending_end: None,
            root_closed: false,
            seen_root: false,
            max_depth: DEFAULT_MAX_DEPTH,
        }
    }

    /// Overrides the nesting-depth limit ([`DEFAULT_MAX_DEPTH`] by
    /// default; `usize::MAX` disables the check).
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.pos,
            message: message.into(),
        })
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.input[self.pos..].starts_with(s.as_bytes())
    }

    fn skip_until(&mut self, pat: &str) -> Result<(), ParseError> {
        match self.input[self.pos..]
            .windows(pat.len())
            .position(|w| w == pat.as_bytes())
        {
            Some(i) => {
                self.pos += i + pat.len();
                Ok(())
            }
            None => self.err(format!("unterminated construct (expected `{pat}`)")),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn read_name(&mut self) -> Result<String, ParseError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            let ok = c.is_ascii_alphanumeric()
                || matches!(c, b'_' | b'-' | b'.' | b':' | b'@')
                || c >= 0x80;
            if ok {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a name");
        }
        // Names must not start with a digit, '-' or '.'.
        let first = self.input[start];
        if first.is_ascii_digit() || first == b'-' || first == b'.' {
            return self.err("name starts with an illegal character");
        }
        Ok(String::from_utf8_lossy(&self.input[start..self.pos]).into_owned())
    }

    fn decode_entities(&self, raw: &str, base: usize) -> Result<String, ParseError> {
        decode_entities(raw, base)
    }
}

/// Decodes the predefined and numeric character references in `raw`
/// (shared by the slice parser and the streaming parser). `base` is the
/// byte offset reported on errors.
pub(crate) fn decode_entities(raw: &str, base: usize) -> Result<String, ParseError> {
    {
        if !raw.contains('&') {
            return Ok(raw.to_owned());
        }
        let mut out = String::with_capacity(raw.len());
        let mut rest = raw;
        while let Some(i) = rest.find('&') {
            out.push_str(&rest[..i]);
            rest = &rest[i..];
            let semi = rest.find(';').ok_or(ParseError {
                offset: base,
                message: "unterminated entity reference".into(),
            })?;
            let ent = &rest[1..semi];
            match ent {
                "amp" => out.push('&'),
                "lt" => out.push('<'),
                "gt" => out.push('>'),
                "quot" => out.push('"'),
                "apos" => out.push('\''),
                _ if ent.starts_with("#x") || ent.starts_with("#X") => {
                    let cp = u32::from_str_radix(&ent[2..], 16).map_err(|_| ParseError {
                        offset: base,
                        message: format!("bad hex character reference `&{ent};`"),
                    })?;
                    out.push(char::from_u32(cp).ok_or(ParseError {
                        offset: base,
                        message: format!("invalid code point in `&{ent};`"),
                    })?);
                }
                _ if ent.starts_with('#') => {
                    let cp: u32 = ent[1..].parse().map_err(|_| ParseError {
                        offset: base,
                        message: format!("bad decimal character reference `&{ent};`"),
                    })?;
                    out.push(char::from_u32(cp).ok_or(ParseError {
                        offset: base,
                        message: format!("invalid code point in `&{ent};`"),
                    })?);
                }
                _ => {
                    return Err(ParseError {
                        offset: base,
                        message: format!("unknown entity `&{ent};`"),
                    })
                }
            }
            rest = &rest[semi + 1..];
        }
        out.push_str(rest);
        Ok(out)
    }
}

impl<'a> Parser<'a> {
    fn read_attributes(&mut self) -> Result<Vec<(String, String)>, ParseError> {
        let mut attrs = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') | Some(b'/') | None => return Ok(attrs),
                _ => {}
            }
            let name = self.read_name()?;
            self.skip_ws();
            if self.peek() != Some(b'=') {
                return self.err(format!("expected `=` after attribute `{name}`"));
            }
            self.pos += 1;
            self.skip_ws();
            let quote = match self.peek() {
                Some(q @ (b'"' | b'\'')) => q,
                _ => return self.err("attribute value must be quoted"),
            };
            self.pos += 1;
            let vstart = self.pos;
            while let Some(c) = self.peek() {
                if c == quote {
                    break;
                }
                self.pos += 1;
            }
            if self.peek() != Some(quote) {
                return self.err("unterminated attribute value");
            }
            let raw = String::from_utf8_lossy(&self.input[vstart..self.pos]).into_owned();
            self.pos += 1;
            let value = self.decode_entities(&raw, vstart)?;
            attrs.push((name, value));
        }
    }

    /// Pulls the next event, `Ok(None)` at a well-formed end of input.
    pub fn next_raw(&mut self) -> Result<Option<RawEvent>, ParseError> {
        if let Some(name) = self.pending_end.take() {
            if self.open.pop().as_deref() != Some(name.as_str()) {
                return self.err("internal: empty-element bookkeeping");
            }
            if self.open.is_empty() {
                self.root_closed = true;
            }
            return Ok(Some(RawEvent::EndElement { name }));
        }
        loop {
            // End of input?
            if self.pos >= self.input.len() {
                if !self.open.is_empty() {
                    return self.err(format!(
                        "unexpected end of input; `<{}>` unclosed",
                        self.open.last().unwrap()
                    ));
                }
                if !self.seen_root {
                    return self.err("no root element");
                }
                return Ok(None);
            }
            if self.peek() == Some(b'<') {
                if self.starts_with("<!--") {
                    self.pos += 4;
                    self.skip_until("-->")?;
                    continue;
                }
                if self.starts_with("<![CDATA[") {
                    let start = self.pos + 9;
                    self.pos = start;
                    self.skip_until("]]>")?;
                    let text =
                        String::from_utf8_lossy(&self.input[start..self.pos - 3]).into_owned();
                    if self.open.is_empty() {
                        return self.err("character data outside the root element");
                    }
                    return Ok(Some(RawEvent::Text(text)));
                }
                if self.starts_with("<?") {
                    self.pos += 2;
                    self.skip_until("?>")?;
                    continue;
                }
                if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                    // Skip to the matching `>`, tolerating an internal subset.
                    self.pos += 9;
                    let mut depth = 1usize;
                    while depth > 0 {
                        match self.peek() {
                            Some(b'<') => depth += 1,
                            Some(b'>') => depth -= 1,
                            None => return self.err("unterminated DOCTYPE"),
                            _ => {}
                        }
                        self.pos += 1;
                    }
                    continue;
                }
                if self.starts_with("</") {
                    self.pos += 2;
                    let name = self.read_name()?;
                    self.skip_ws();
                    if self.peek() != Some(b'>') {
                        return self.err("expected `>` in end tag");
                    }
                    self.pos += 1;
                    match self.open.pop() {
                        Some(top) if top == name => {}
                        Some(top) => {
                            return self
                                .err(format!("mismatched end tag: `</{name}>` closes `<{top}>`"))
                        }
                        None => return self.err(format!("stray end tag `</{name}>`")),
                    }
                    if self.open.is_empty() {
                        self.root_closed = true;
                    }
                    return Ok(Some(RawEvent::EndElement { name }));
                }
                // Start tag.
                self.pos += 1;
                if self.root_closed {
                    return self.err("content after the root element");
                }
                let name = self.read_name()?;
                let attributes = self.read_attributes()?;
                let empty = self.peek() == Some(b'/');
                if empty {
                    self.pos += 1;
                }
                if self.peek() != Some(b'>') {
                    return self.err(format!("expected `>` to finish `<{name}>`"));
                }
                self.pos += 1;
                if self.open.len() >= self.max_depth {
                    return self.err(format!(
                        "element nesting exceeds the depth limit {}",
                        self.max_depth
                    ));
                }
                self.seen_root = true;
                self.open.push(name.clone());
                if empty {
                    self.pending_end = Some(name.clone());
                }
                return Ok(Some(RawEvent::StartElement { name, attributes }));
            }
            // Character data up to the next `<`.
            let start = self.pos;
            while self.pos < self.input.len() && self.peek() != Some(b'<') {
                self.pos += 1;
            }
            let raw = String::from_utf8_lossy(&self.input[start..self.pos]).into_owned();
            if raw.bytes().all(|b| b.is_ascii_whitespace()) {
                continue; // inter-tag whitespace
            }
            if self.open.is_empty() {
                return self.err("character data outside the root element");
            }
            let text = self.decode_entities(&raw, start)?;
            return Ok(Some(RawEvent::Text(text)));
        }
    }
}

/// Parses a complete document, interning labels into `labels`.
///
/// Attributes become child elements labeled `@name` containing one text
/// node, so the structural index sees them uniformly. Documents nested
/// deeper than [`DEFAULT_MAX_DEPTH`] are rejected; use
/// [`parse_document_limited`] to choose the limit.
pub fn parse_document(input: &str, labels: &mut LabelTable) -> Result<Document, ParseError> {
    parse_document_limited(input, labels, DEFAULT_MAX_DEPTH)
}

/// [`parse_document`] with an explicit nesting-depth limit
/// (`usize::MAX` disables the check).
pub fn parse_document_limited(
    input: &str,
    labels: &mut LabelTable,
    max_depth: usize,
) -> Result<Document, ParseError> {
    let mut p = Parser::new(input).with_max_depth(max_depth);
    let mut b = DocumentBuilder::new();
    while let Some(ev) = p.next_raw()? {
        match ev {
            RawEvent::StartElement { name, attributes } => {
                let l = labels.intern(&name);
                b.open(l);
                for (an, av) in attributes {
                    let al = labels.intern(&format!("@{an}"));
                    b.open(al);
                    b.text(&av);
                    b.close();
                }
            }
            RawEvent::EndElement { .. } => b.close(),
            RawEvent::Text(t) => {
                b.text(&t);
            }
        }
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(s: &str) -> Result<Vec<RawEvent>, ParseError> {
        let mut p = Parser::new(s);
        let mut out = Vec::new();
        while let Some(e) = p.next_raw()? {
            out.push(e);
        }
        Ok(out)
    }

    #[test]
    fn simple_document() {
        let evs = events("<a><b>hi</b><c/></a>").unwrap();
        assert_eq!(evs.len(), 7);
        assert!(matches!(&evs[0], RawEvent::StartElement { name, .. } if name == "a"));
        assert!(matches!(&evs[2], RawEvent::Text(t) if t == "hi"));
        assert!(matches!(&evs[4], RawEvent::StartElement { name, .. } if name == "c"));
        assert!(matches!(&evs[5], RawEvent::EndElement { name } if name == "c"));
    }

    #[test]
    fn attributes_and_entities() {
        let evs = events(r#"<a x="1 &amp; 2" y='&#65;'>t&lt;u</a>"#).unwrap();
        match &evs[0] {
            RawEvent::StartElement { attributes, .. } => {
                assert_eq!(attributes[0], ("x".into(), "1 & 2".into()));
                assert_eq!(attributes[1], ("y".into(), "A".into()));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(&evs[1], RawEvent::Text(t) if t == "t<u"));
    }

    #[test]
    fn comments_pis_doctype_cdata() {
        let s = "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]>\
                 <a><!-- note --><![CDATA[x < y]]></a>";
        let evs = events(s).unwrap();
        assert_eq!(evs.len(), 3);
        assert!(matches!(&evs[1], RawEvent::Text(t) if t == "x < y"));
    }

    #[test]
    fn whitespace_between_tags_is_dropped() {
        let evs = events("<a>\n  <b/>\n</a>").unwrap();
        assert_eq!(evs.len(), 4);
    }

    #[test]
    fn mismatched_tags_error() {
        assert!(events("<a><b></a></b>").is_err());
        assert!(events("<a>").is_err());
        assert!(events("</a>").is_err());
        assert!(events("<a/><b/>").is_err());
        assert!(events("hello").is_err());
    }

    #[test]
    fn bad_entities_error() {
        assert!(events("<a>&bogus;</a>").is_err());
        assert!(events("<a>&#xZZ;</a>").is_err());
        assert!(events("<a>&unterminated</a>").is_err());
    }

    #[test]
    fn parse_document_materializes_attributes() {
        let mut lt = LabelTable::new();
        let d = parse_document(r#"<item id="7"><name>x</name></item>"#, &mut lt).unwrap();
        let root = d.root();
        let kids: Vec<_> = d.children(root).collect();
        assert_eq!(kids.len(), 2);
        assert_eq!(d.label(kids[0]), lt.lookup("@id"));
        assert_eq!(d.text_content(kids[0]), "7");
        assert_eq!(d.label(kids[1]), lt.lookup("name"));
    }

    #[test]
    fn deep_nesting() {
        let mut s = String::new();
        for _ in 0..200 {
            s.push_str("<n>");
        }
        for _ in 0..200 {
            s.push_str("</n>");
        }
        let mut lt = LabelTable::new();
        let d = parse_document(&s, &mut lt).unwrap();
        assert_eq!(d.len(), 200);
        assert_eq!(d.max_depth(), 200);
    }

    #[test]
    fn nesting_beyond_the_depth_limit_is_rejected() {
        fn nested(n: usize) -> String {
            let mut s = String::new();
            for _ in 0..n {
                s.push_str("<n>");
            }
            for _ in 0..n {
                s.push_str("</n>");
            }
            s
        }
        let mut lt = LabelTable::new();
        // Exactly at the limit: fine. One deeper: a ParseError, not a
        // runaway stack.
        assert!(parse_document_limited(&nested(8), &mut lt, 8).is_ok());
        let err = parse_document_limited(&nested(9), &mut lt, 8).unwrap_err();
        assert!(err.message.contains("depth limit 8"), "{err}");
        // The default limit guards plain parse_document too.
        let deep = nested(DEFAULT_MAX_DEPTH + 1);
        assert!(parse_document(&deep, &mut lt).is_err());
        // usize::MAX disables the check.
        assert!(parse_document_limited(&deep, &mut lt, usize::MAX).is_ok());
    }
}
