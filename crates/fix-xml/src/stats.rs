//! Document and collection statistics (Table 1 of the paper reports data-set
//! size, element counts, and index sizes; this module computes the
//! data-side columns).

use crate::document::{Document, NodeId, NodeKind};
use crate::label::LabelTable;

/// Summary statistics of a document or collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DocStats {
    /// Number of element nodes.
    pub elements: usize,
    /// Number of text nodes.
    pub texts: usize,
    /// Maximum depth (root = 1).
    pub max_depth: usize,
    /// Serialized size estimate in bytes.
    pub bytes: usize,
}

impl DocStats {
    /// Computes statistics for one document.
    pub fn of(doc: &Document, labels: &LabelTable) -> Self {
        let mut s = DocStats {
            max_depth: doc.max_depth(),
            ..Default::default()
        };
        for n in doc.descendants_or_self(doc.root()) {
            match doc.kind(n) {
                NodeKind::Element(l) => {
                    s.elements += 1;
                    // `<tag>` + `</tag>`.
                    s.bytes += 2 * labels.resolve(l).len() + 5;
                }
                NodeKind::Text(_) => {
                    s.texts += 1;
                    s.bytes += doc.text(NodeId(n.0)).map(str::len).unwrap_or(0);
                }
            }
        }
        s
    }

    /// Accumulates another document's stats (collection totals).
    pub fn merge(&mut self, other: &DocStats) {
        self.elements += other.elements;
        self.texts += other.texts;
        self.max_depth = self.max_depth.max(other.max_depth);
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn counts() {
        let mut lt = LabelTable::new();
        let d = parse_document("<a><b>hi</b><c/></a>", &mut lt).unwrap();
        let s = DocStats::of(&d, &lt);
        assert_eq!(s.elements, 3);
        assert_eq!(s.texts, 1);
        assert_eq!(s.max_depth, 2);
        assert!(s.bytes >= "<a><b>hi</b><c/></a>".len() - 4);
    }

    #[test]
    fn merge_accumulates() {
        let mut lt = LabelTable::new();
        let d1 = parse_document("<a><b/></a>", &mut lt).unwrap();
        let d2 = parse_document("<a><b><c/></b></a>", &mut lt).unwrap();
        let mut s = DocStats::of(&d1, &lt);
        s.merge(&DocStats::of(&d2, &lt));
        assert_eq!(s.elements, 5);
        assert_eq!(s.max_depth, 3);
    }
}
