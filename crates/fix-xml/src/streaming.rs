//! Streaming parser over any `io::Read`: the incremental twin of
//! [`Parser`](crate::parser::Parser), holding only the bytes of the token
//! currently being lexed plus a small read-ahead — documents larger than
//! memory parse fine as long as individual tokens (one tag, one text run,
//! one comment) fit.
//!
//! The two parsers are differentially tested: for every corpus and every
//! chunking of the byte stream they must produce identical event
//! sequences and identical errors-or-success.

use std::io::Read;

use crate::document::{Document, DocumentBuilder};
use crate::label::LabelTable;
use crate::parser::{decode_entities, ParseError, RawEvent, DEFAULT_MAX_DEPTH};

/// Incremental pull parser over a reader.
pub struct StreamingParser<R: Read> {
    reader: R,
    /// Unconsumed bytes; `buf[0]` is at absolute offset `base`.
    buf: Vec<u8>,
    base: usize,
    eof: bool,
    open: Vec<String>,
    pending_end: Option<String>,
    root_closed: bool,
    seen_root: bool,
    /// Maximum accepted element nesting depth.
    max_depth: usize,
}

impl<R: Read> StreamingParser<R> {
    /// Wraps a reader.
    pub fn new(reader: R) -> Self {
        Self {
            reader,
            buf: Vec::new(),
            base: 0,
            eof: false,
            open: Vec::new(),
            pending_end: None,
            root_closed: false,
            seen_root: false,
            max_depth: DEFAULT_MAX_DEPTH,
        }
    }

    /// Overrides the nesting-depth limit ([`DEFAULT_MAX_DEPTH`] by
    /// default; `usize::MAX` disables the check).
    pub fn with_max_depth(mut self, max_depth: usize) -> Self {
        self.max_depth = max_depth;
        self
    }

    fn err<T>(&self, at: usize, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            offset: self.base + at,
            message: message.into(),
        })
    }

    /// Reads more input; returns false at EOF.
    fn fill(&mut self) -> Result<bool, ParseError> {
        if self.eof {
            return Ok(false);
        }
        let mut chunk = [0u8; 4096];
        let n = self.reader.read(&mut chunk).map_err(|e| ParseError {
            offset: self.base + self.buf.len(),
            message: format!("I/O error: {e}"),
        })?;
        if n == 0 {
            self.eof = true;
            return Ok(false);
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(true)
    }

    /// Ensures at least `n` unconsumed bytes (or EOF).
    fn want(&mut self, n: usize) -> Result<(), ParseError> {
        while self.buf.len() < n && self.fill()? {}
        Ok(())
    }

    /// Finds `pat` in the buffer starting at `from`, reading as needed.
    fn find(&mut self, from: usize, pat: &[u8]) -> Result<Option<usize>, ParseError> {
        let mut searched_to = from;
        loop {
            if self.buf.len() >= searched_to + pat.len() {
                if let Some(i) = self.buf[searched_to..]
                    .windows(pat.len())
                    .position(|w| w == pat)
                {
                    return Ok(Some(searched_to + i));
                }
                // Overlap: a match could straddle the chunk boundary.
                searched_to = self.buf.len() + 1 - pat.len();
            }
            if !self.fill()? {
                return Ok(None);
            }
        }
    }

    /// Drops `n` consumed bytes from the front.
    fn consume(&mut self, n: usize) {
        self.buf.drain(..n);
        self.base += n;
    }

    /// Pulls the next event; `Ok(None)` at a well-formed end of input.
    pub fn next_raw(&mut self) -> Result<Option<RawEvent>, ParseError> {
        if let Some(name) = self.pending_end.take() {
            self.open.pop();
            if self.open.is_empty() {
                self.root_closed = true;
            }
            return Ok(Some(RawEvent::EndElement { name }));
        }
        loop {
            self.want(1)?;
            if self.buf.is_empty() {
                if !self.open.is_empty() {
                    return self.err(0, "unexpected end of input; element unclosed");
                }
                if !self.seen_root {
                    return self.err(0, "no root element");
                }
                return Ok(None);
            }
            if self.buf[0] == b'<' {
                self.want(9)?; // longest discriminator: `<![CDATA[`
                if self.buf.starts_with(b"<!--") {
                    match self.find(4, b"-->")? {
                        Some(i) => {
                            self.consume(i + 3);
                            continue;
                        }
                        None => return self.err(self.buf.len(), "unterminated comment"),
                    }
                }
                if self.buf.starts_with(b"<![CDATA[") {
                    match self.find(9, b"]]>")? {
                        Some(i) => {
                            let text = String::from_utf8_lossy(&self.buf[9..i]).into_owned();
                            self.consume(i + 3);
                            if self.open.is_empty() {
                                return self.err(0, "character data outside the root element");
                            }
                            return Ok(Some(RawEvent::Text(text)));
                        }
                        None => return self.err(self.buf.len(), "unterminated CDATA"),
                    }
                }
                if self.buf.starts_with(b"<?") {
                    match self.find(2, b"?>")? {
                        Some(i) => {
                            self.consume(i + 2);
                            continue;
                        }
                        None => return self.err(self.buf.len(), "unterminated PI"),
                    }
                }
                if self.buf.starts_with(b"<!DOCTYPE") || self.buf.starts_with(b"<!doctype") {
                    // Balance `<`/`>` to skip an internal subset.
                    let mut depth = 1usize;
                    let mut i = 9usize;
                    loop {
                        self.want(i + 1)?;
                        match self.buf.get(i) {
                            Some(b'<') => depth += 1,
                            Some(b'>') => depth -= 1,
                            Some(_) => {}
                            None => return self.err(i, "unterminated DOCTYPE"),
                        }
                        i += 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    self.consume(i);
                    continue;
                }
                // Start or end tag: everything up to `>` (attribute values
                // may not contain `>`? They may! Scan respecting quotes.)
                let close = self.find_tag_end()?;
                let tag = self.buf[..close + 1].to_vec();
                let at = 0usize;
                let ev = self.parse_tag(&tag, at)?;
                self.consume(close + 1);
                return Ok(Some(ev));
            }
            // Text run up to the next `<` (or EOF).
            let end = match self.find(0, b"<")? {
                Some(i) => i,
                None => self.buf.len(),
            };
            let raw = String::from_utf8_lossy(&self.buf[..end]).into_owned();
            let at = 0usize;
            self.consume(end);
            if raw.bytes().all(|b| b.is_ascii_whitespace()) {
                continue;
            }
            if self.open.is_empty() {
                return self.err(at, "character data outside the root element");
            }
            let text = decode_entities(&raw, self.base + at)?;
            return Ok(Some(RawEvent::Text(text)));
        }
    }

    /// Index of the `>` ending the tag at buffer position 0, respecting
    /// quoted attribute values.
    fn find_tag_end(&mut self) -> Result<usize, ParseError> {
        let mut i = 1usize;
        let mut quote: Option<u8> = None;
        loop {
            self.want(i + 1)?;
            match self.buf.get(i) {
                None => return self.err(i, "unterminated tag"),
                Some(&c) => match quote {
                    Some(q) if c == q => quote = None,
                    Some(_) => {}
                    None => match c {
                        b'"' | b'\'' => quote = Some(c),
                        b'>' => return Ok(i),
                        _ => {}
                    },
                },
            }
            i += 1;
        }
    }

    /// Parses one complete `<...>` tag (start or end) at absolute offset
    /// `base + at`.
    fn parse_tag(&mut self, tag: &[u8], at: usize) -> Result<RawEvent, ParseError> {
        let abs = self.base + at;
        let inner = &tag[1..tag.len() - 1]; // strip `<` and `>`
        if let Some(name_part) = inner.strip_prefix(b"/") {
            let name = std::str::from_utf8(name_part)
                .map_err(|_| ParseError {
                    offset: abs,
                    message: "non-UTF-8 tag name".into(),
                })?
                .trim()
                .to_owned();
            if name.is_empty() || !valid_name(&name) {
                return self.err(at, "bad end-tag name");
            }
            match self.open.pop() {
                Some(top) if top == name => {}
                Some(top) => {
                    return self.err(
                        at,
                        format!("mismatched end tag: `</{name}>` closes `<{top}>`"),
                    )
                }
                None => return self.err(at, format!("stray end tag `</{name}>`")),
            }
            if self.open.is_empty() {
                self.root_closed = true;
            }
            return Ok(RawEvent::EndElement { name });
        }
        if self.root_closed {
            return self.err(at, "content after the root element");
        }
        let (inner, empty) = match inner.strip_suffix(b"/") {
            Some(rest) => (rest, true),
            None => (inner, false),
        };
        let text = std::str::from_utf8(inner).map_err(|_| ParseError {
            offset: abs,
            message: "non-UTF-8 tag".into(),
        })?;
        // Split name from attributes.
        let name_end = text
            .find(|c: char| c.is_ascii_whitespace())
            .unwrap_or(text.len());
        let name = text[..name_end].to_owned();
        if name.is_empty() || !valid_name(&name) {
            return self.err(at, "bad start-tag name");
        }
        let mut attributes = Vec::new();
        let mut rest = text[name_end..].trim_start();
        while !rest.is_empty() {
            let eq = rest.find('=').ok_or(ParseError {
                offset: abs,
                message: format!("expected `=` in attributes of `<{name}>`"),
            })?;
            let aname = rest[..eq].trim().to_owned();
            if aname.is_empty() || !valid_name(&aname) {
                return self.err(at, "bad attribute name");
            }
            let after = rest[eq + 1..].trim_start();
            let quote = after.chars().next().ok_or(ParseError {
                offset: abs,
                message: "missing attribute value".into(),
            })?;
            if quote != '"' && quote != '\'' {
                return self.err(at, "attribute value must be quoted");
            }
            let vend = after[1..].find(quote).ok_or(ParseError {
                offset: abs,
                message: "unterminated attribute value".into(),
            })?;
            let value = decode_entities(&after[1..1 + vend], abs)?;
            attributes.push((aname, value));
            rest = after[1 + vend + 1..].trim_start();
        }
        if self.open.len() >= self.max_depth {
            return self.err(
                at,
                format!("element nesting exceeds the depth limit {}", self.max_depth),
            );
        }
        self.seen_root = true;
        self.open.push(name.clone());
        if empty {
            self.pending_end = Some(name.clone());
        }
        Ok(RawEvent::StartElement { name, attributes })
    }
}

fn valid_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_digit() || c == '-' || c == '.' => return false,
        Some(_) => {}
        None => return false,
    }
    s.chars().all(|c| {
        c.is_ascii_alphanumeric() || matches!(c, '_' | '-' | '.' | ':' | '@') || !c.is_ascii()
    })
}

/// Parses a complete document from a reader (the streaming counterpart of
/// [`parse_document`](crate::parser::parse_document); attributes are
/// materialized as `@name` children the same way). Nesting deeper than
/// [`DEFAULT_MAX_DEPTH`] is rejected; use
/// [`parse_document_from_reader_limited`] to choose the limit.
pub fn parse_document_from_reader<R: Read>(
    reader: R,
    labels: &mut LabelTable,
) -> Result<Document, ParseError> {
    parse_document_from_reader_limited(reader, labels, DEFAULT_MAX_DEPTH)
}

/// [`parse_document_from_reader`] with an explicit nesting-depth limit
/// (`usize::MAX` disables the check).
pub fn parse_document_from_reader_limited<R: Read>(
    reader: R,
    labels: &mut LabelTable,
    max_depth: usize,
) -> Result<Document, ParseError> {
    let mut p = StreamingParser::new(reader).with_max_depth(max_depth);
    let mut b = DocumentBuilder::new();
    while let Some(ev) = p.next_raw()? {
        match ev {
            RawEvent::StartElement { name, attributes } => {
                let l = labels.intern(&name);
                b.open(l);
                for (an, av) in attributes {
                    let al = labels.intern(&format!("@{an}"));
                    b.open(al);
                    b.text(&av);
                    b.close();
                }
            }
            RawEvent::EndElement { .. } => b.close(),
            RawEvent::Text(t) => {
                b.text(&t);
            }
        }
    }
    Ok(b.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::Parser;

    /// A reader that yields at most `chunk` bytes per read call — the
    /// adversarial chunking for boundary-condition coverage.
    struct Dribble<'a> {
        data: &'a [u8],
        pos: usize,
        chunk: usize,
    }

    impl Read for Dribble<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let n = self.chunk.min(buf.len()).min(self.data.len() - self.pos);
            buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
            self.pos += n;
            Ok(n)
        }
    }

    fn stream_events(input: &str, chunk: usize) -> Result<Vec<RawEvent>, ParseError> {
        let mut p = StreamingParser::new(Dribble {
            data: input.as_bytes(),
            pos: 0,
            chunk,
        });
        let mut out = Vec::new();
        while let Some(e) = p.next_raw()? {
            out.push(e);
        }
        Ok(out)
    }

    fn slice_events(input: &str) -> Result<Vec<RawEvent>, ParseError> {
        let mut p = Parser::new(input);
        let mut out = Vec::new();
        while let Some(e) = p.next_raw()? {
            out.push(e);
        }
        Ok(out)
    }

    const CASES: &[&str] = &[
        "<a><b>hi</b><c/></a>",
        r#"<a x="1 &amp; 2" y='&#65;'>t&lt;u</a>"#,
        "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a><!-- note --><![CDATA[x < y]]></a>",
        "<a>\n  <b/>\n</a>",
        "<r><x a='q\"z'>mixed <i>in</i> line</x></r>",
        "<deep><deep><deep><leaf/></deep></deep></deep>",
    ];

    const BAD: &[&str] = &[
        "<a><b></a></b>",
        "<a>",
        "</a>",
        "<a/><b/>",
        "hello",
        "<a>&bogus;</a>",
        "<a x=>y</a>",
        "<a x='1>",
        "<!-- unterminated",
    ];

    #[test]
    fn agrees_with_the_slice_parser_on_every_chunking() {
        for case in CASES {
            let want = slice_events(case).unwrap();
            for chunk in [1usize, 2, 3, 7, 64, 4096] {
                let got = stream_events(case, chunk).unwrap_or_else(|e| {
                    panic!("chunk {chunk}: {case}: {e}");
                });
                assert_eq!(got, want, "chunk {chunk} on {case}");
            }
        }
    }

    #[test]
    fn rejects_what_the_slice_parser_rejects() {
        for case in BAD {
            assert!(slice_events(case).is_err(), "slice accepted {case}");
            for chunk in [1usize, 3, 4096] {
                assert!(
                    stream_events(case, chunk).is_err(),
                    "stream (chunk {chunk}) accepted {case}"
                );
            }
        }
    }

    #[test]
    fn documents_parse_identically() {
        for case in CASES {
            let mut lt1 = LabelTable::new();
            let d1 = crate::parser::parse_document(case, &mut lt1).unwrap();
            let mut lt2 = LabelTable::new();
            let d2 = parse_document_from_reader(
                Dribble {
                    data: case.as_bytes(),
                    pos: 0,
                    chunk: 5,
                },
                &mut lt2,
            )
            .unwrap();
            assert_eq!(
                crate::serialize::to_xml_string(&d1, &lt1),
                crate::serialize::to_xml_string(&d2, &lt2),
                "document mismatch on {case}"
            );
        }
    }

    #[test]
    fn nesting_beyond_the_depth_limit_is_rejected() {
        let mut xml = String::new();
        for _ in 0..40 {
            xml.push_str("<n>");
        }
        for _ in 0..40 {
            xml.push_str("</n>");
        }
        for chunk in [1usize, 7, 4096] {
            let dribble = |s: &'static str| Dribble {
                data: s.as_bytes(),
                pos: 0,
                chunk,
            };
            let leaked: &'static str = Box::leak(xml.clone().into_boxed_str());
            let mut lt = LabelTable::new();
            assert!(
                parse_document_from_reader_limited(dribble(leaked), &mut lt, 40).is_ok(),
                "chunk {chunk}: depth exactly at the limit must parse"
            );
            let err = parse_document_from_reader_limited(dribble(leaked), &mut lt, 39).unwrap_err();
            assert!(err.message.contains("depth limit 39"), "{err}");
        }
    }

    #[test]
    fn memory_stays_bounded_on_long_flat_documents() {
        // 20k siblings streamed 16 bytes at a time: the internal buffer
        // never needs to hold more than one token.
        let mut xml = String::from("<r>");
        for i in 0..20_000 {
            xml.push_str(&format!("<x i=\"{i}\"/>"));
        }
        xml.push_str("</r>");
        let mut p = StreamingParser::new(Dribble {
            data: xml.as_bytes(),
            pos: 0,
            chunk: 16,
        });
        let mut max_buf = 0usize;
        let mut events = 0usize;
        while let Some(_e) = p.next_raw().unwrap() {
            events += 1;
            max_buf = max_buf.max(p.buf.len());
        }
        assert_eq!(events, 2 + 2 * 20_000);
        assert!(max_buf < 8192, "buffer grew to {max_buf}");
    }
}
