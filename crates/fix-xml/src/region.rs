//! Region encoding (a.k.a. interval or Dietz encoding): each element is
//! `(start, end, level)` with `start`/`end` delimiting its subtree in
//! document order. The containment test `a.start < d.start ∧ d.end ≤
//! a.end` decides ancestorship in O(1) — the foundation of the structural
//! join and holistic twig join operator families FIX is positioned
//! against (Section 7's XB-tree/XR-tree/TwigStack line of work).
//!
//! Our arena already *is* region-encoded (node id = preorder rank,
//! `subtree_end` = end), so this module only materializes the per-label
//! streams those operators consume.

use std::collections::HashMap;

use crate::document::{Document, NodeId, NodeKind};
use crate::label::LabelId;

/// One region-encoded element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// Preorder start (= node id).
    pub start: u32,
    /// One past the last descendant.
    pub end: u32,
    /// Depth (root = 1).
    pub level: u32,
}

impl Region {
    /// True if `self` is a proper ancestor of `other`.
    #[inline]
    pub fn is_ancestor_of(&self, other: &Region) -> bool {
        self.start < other.start && other.end <= self.end
    }

    /// True if `self` is the parent of `other`.
    #[inline]
    pub fn is_parent_of(&self, other: &Region) -> bool {
        self.is_ancestor_of(other) && self.level + 1 == other.level
    }

    /// The element's node id.
    #[inline]
    pub fn node(&self) -> NodeId {
        NodeId(self.start)
    }
}

/// Per-label element streams in document order — the `T_q` input lists of
/// the TwigStack family.
#[derive(Debug, Default)]
pub struct RegionIndex {
    streams: HashMap<LabelId, Vec<Region>>,
}

impl RegionIndex {
    /// Builds the streams for one document in a single pass.
    pub fn build(doc: &Document) -> Self {
        let mut streams: HashMap<LabelId, Vec<Region>> = HashMap::new();
        let mut level = 0u32;
        let mut stack: Vec<u32> = Vec::new();
        for i in 0..doc.len() as u32 {
            while let Some(&end) = stack.last() {
                if end <= i {
                    stack.pop();
                    level -= 1;
                } else {
                    break;
                }
            }
            let id = NodeId(i);
            if let NodeKind::Element(l) = doc.kind(id) {
                level += 1;
                let end = doc.subtree_end(id).0;
                streams.entry(l).or_default().push(Region {
                    start: i,
                    end,
                    level,
                });
                stack.push(end);
            }
        }
        Self { streams }
    }

    /// The document-ordered stream of elements labeled `l` (empty slice if
    /// the label never occurs).
    pub fn stream(&self, l: LabelId) -> &[Region] {
        self.streams.get(&l).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of distinct labels with at least one element.
    pub fn label_count(&self) -> usize {
        self.streams.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::label::LabelTable;
    use crate::parser::parse_document;

    fn build(xml: &str) -> (Document, RegionIndex, LabelTable) {
        let mut lt = LabelTable::new();
        let d = parse_document(xml, &mut lt).unwrap();
        let idx = RegionIndex::build(&d);
        (d, idx, lt)
    }

    #[test]
    fn streams_are_document_ordered_and_complete() {
        let (d, idx, lt) = build("<a><b><c/></b><b/>t<c/></a>");
        let b = lt.lookup("b").unwrap();
        let bs = idx.stream(b);
        assert_eq!(bs.len(), 2);
        assert!(bs[0].start < bs[1].start);
        let total: usize = [lt.lookup("a"), Some(b), lt.lookup("c")]
            .iter()
            .flatten()
            .map(|&l| idx.stream(l).len())
            .sum();
        // Element count (text node excluded).
        let elements = d
            .descendants_or_self(d.root())
            .filter(|&n| d.label(n).is_some())
            .count();
        assert_eq!(total, elements);
    }

    #[test]
    fn containment_tests() {
        let (_, idx, lt) = build("<a><b><c/></b><c/></a>");
        let a = idx.stream(lt.lookup("a").unwrap())[0];
        let b = idx.stream(lt.lookup("b").unwrap())[0];
        let cs = idx.stream(lt.lookup("c").unwrap());
        assert!(a.is_ancestor_of(&b));
        assert!(a.is_parent_of(&b));
        assert!(b.is_ancestor_of(&cs[0]));
        assert!(!b.is_ancestor_of(&cs[1]));
        assert!(a.is_ancestor_of(&cs[1]));
        assert!(!a.is_parent_of(&cs[0]), "c0 is a grandchild");
        assert!(a.is_parent_of(&cs[1]));
    }

    #[test]
    fn levels_match_depth() {
        let (d, idx, lt) = build("<a><b><c><e/></c></b></a>");
        let e = idx.stream(lt.lookup("e").unwrap())[0];
        assert_eq!(e.level, 4);
        assert_eq!(d.depth(e.node()), 4);
    }

    #[test]
    fn missing_label_is_empty() {
        let (_, idx, _) = build("<a/>");
        assert!(idx.stream(LabelId(999)).is_empty());
    }
}
