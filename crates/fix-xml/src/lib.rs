//! XML data model and parser substrate for the FIX index.
//!
//! This crate provides everything FIX needs from an XML store:
//!
//! * [`LabelTable`] — a string interner mapping element names (and hashed
//!   value labels, see the `fix-core` value extension) to dense [`LabelId`]s.
//! * [`Document`] — an arena-allocated ordered tree of element and text
//!   nodes, built either programmatically ([`DocumentBuilder`]) or by the
//!   pull [`parser`].
//! * [`Event`] / [`EventSource`] — the SAX-style event-stream abstraction
//!   consumed by the single-pass bisimulation-graph construction of the
//!   paper's Algorithm 1 (`CONSTRUCT-ENTRIES`).
//!
//! The parser is written from scratch because the XML substrate is part of
//! the reproduction; it supports the subset of XML the paper's data sets
//! exercise (elements, attributes, character data, CDATA, comments,
//! processing instructions, standard and numeric character references).

pub mod document;
pub mod events;
pub mod label;
pub mod parser;
pub mod region;
pub mod serialize;
pub mod stats;
pub mod streaming;

pub use document::{Document, DocumentBuilder, Node, NodeId, NodeKind};
pub use events::{drain as drain_events, Event, EventSource, StoragePtr, TreeEventSource};
pub use label::{LabelId, LabelTable};
pub use parser::{
    parse_document, parse_document_limited, ParseError, Parser, RawEvent, DEFAULT_MAX_DEPTH,
};
pub use region::{Region, RegionIndex};
pub use serialize::to_xml_string;
pub use stats::DocStats;
pub use streaming::{
    parse_document_from_reader, parse_document_from_reader_limited, StreamingParser,
};
