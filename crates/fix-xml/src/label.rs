//! Label interning.
//!
//! Element names are interned into dense [`LabelId`]s. The FIX matrix
//! translation (Section 3.2 of the paper) encodes each *edge* — a pair of
//! incident vertex labels — as a distinct integer weight, so a dense label
//! space keeps the edge-encoding dictionary compact. The same table also
//! hosts the synthetic "value labels" produced by the value-hashing
//! extension of Section 4.6.

use std::collections::HashMap;
use std::fmt;

/// A dense identifier for an interned element (or value) label.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LabelId(pub u32);

impl LabelId {
    /// Raw index into the owning [`LabelTable`].
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A bidirectional string interner for labels.
///
/// Interning the same string twice yields the same [`LabelId`]; ids are
/// assigned densely in first-encounter order, which makes them usable as
/// array indices throughout the index.
#[derive(Debug, Default, Clone)]
pub struct LabelTable {
    by_name: HashMap<String, LabelId>,
    names: Vec<String>,
}

impl LabelTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (allocating one if unseen).
    pub fn intern(&mut self, name: &str) -> LabelId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = LabelId(u32::try_from(self.names.len()).expect("label space exhausted"));
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up `name` without interning. Returns `None` if it was never
    /// interned — query processing uses this to short-circuit queries that
    /// mention labels absent from the database (they cannot match anything).
    pub fn lookup(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not allocated by this table.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.names[id.index()]
    }

    /// Number of distinct labels interned so far.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no label has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = LabelTable::new();
        let a = t.intern("article");
        let b = t.intern("book");
        let a2 = t.intern("article");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = LabelTable::new();
        let id = t.intern("author");
        assert_eq!(t.resolve(id), "author");
        assert_eq!(t.lookup("author"), Some(id));
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn ids_are_dense_in_first_encounter_order() {
        let mut t = LabelTable::new();
        for (i, name) in ["a", "b", "c", "a", "d"].iter().enumerate() {
            let id = t.intern(name);
            if i < 3 {
                assert_eq!(id.index(), i);
            }
        }
        assert_eq!(t.len(), 4);
        let collected: Vec<_> = t.iter().map(|(_, n)| n.to_owned()).collect();
        assert_eq!(collected, ["a", "b", "c", "d"]);
    }

    #[test]
    fn empty_table() {
        let t = LabelTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
