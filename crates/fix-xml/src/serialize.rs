//! Document serialization back to XML text.
//!
//! Used by the clustered index (which stores subtree copies), by the data
//! generators (which persist corpora), and by round-trip tests.

use crate::document::{Document, NodeId, NodeKind};
use crate::label::LabelTable;

/// Escapes character data.
fn escape_text(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
}

/// Escapes an attribute value (double-quoted).
fn escape_attr(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Serializes the subtree rooted at `node` to XML text.
///
/// `@name` children holding a single text node (the parser's attribute
/// materialization) are serialized back as attributes, so
/// parse → serialize → parse is the identity on our document model.
pub fn subtree_to_xml(doc: &Document, labels: &LabelTable, node: NodeId, out: &mut String) {
    match doc.kind(node) {
        NodeKind::Text(_) => {
            escape_text(doc.text(node).expect("text node"), out);
        }
        NodeKind::Element(l) => {
            let name = labels.resolve(l);
            out.push('<');
            out.push_str(name);
            // Leading `@x` children are attributes.
            let mut children: Vec<NodeId> = doc.children(node).collect();
            let mut body_start = 0usize;
            for &c in &children {
                let is_attr = doc
                    .label(c)
                    .map(|cl| labels.resolve(cl).starts_with('@'))
                    .unwrap_or(false);
                if is_attr {
                    let an = labels.resolve(doc.label(c).unwrap());
                    out.push(' ');
                    out.push_str(&an[1..]);
                    out.push_str("=\"");
                    escape_attr(&doc.text_content(c), out);
                    out.push('"');
                    body_start += 1;
                } else {
                    break;
                }
            }
            children.drain(..body_start);
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            for c in children {
                subtree_to_xml(doc, labels, c, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

/// Serializes a whole document.
pub fn to_xml_string(doc: &Document, labels: &LabelTable) -> String {
    let mut out = String::new();
    subtree_to_xml(doc, labels, doc.root(), &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn round_trip(s: &str) -> String {
        let mut lt = LabelTable::new();
        let d = parse_document(s, &mut lt).unwrap();
        to_xml_string(&d, &lt)
    }

    #[test]
    fn plain_round_trip() {
        let s = "<a><b>hi</b><c/></a>";
        assert_eq!(round_trip(s), s);
    }

    #[test]
    fn attributes_round_trip() {
        let s = r#"<item id="7" k="a&amp;b"><name>x</name></item>"#;
        assert_eq!(round_trip(s), s);
    }

    #[test]
    fn text_is_escaped() {
        let s = "<a>x &lt; y &amp; z</a>";
        assert_eq!(round_trip(s), s);
    }

    #[test]
    fn reparse_is_stable() {
        let s = r#"<r a="1"><x>t</x><y><z/></y></r>"#;
        let once = round_trip(s);
        let twice = round_trip(&once);
        assert_eq!(once, twice);
    }
}
