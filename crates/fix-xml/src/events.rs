//! The SAX-style event stream consumed by index construction.
//!
//! Algorithm 1 of the paper (`CONSTRUCT-ENTRIES`) is a single-pass algorithm
//! over *open*/*close* events carrying a label and a pointer into primary
//! storage. We model that contract as the [`EventSource`] trait so the same
//! construction code runs over (a) a parsed [`Document`], (b) the
//! depth-limited bisimulation-graph "traveler" of `GEN-SUBPATTERN`, and
//! (c) the value-augmented stream of the Section 4.6 extension.

use crate::document::{Document, NodeId, NodeKind};
use crate::label::LabelId;

/// A pointer into primary storage. For in-arena documents this is the
/// preorder node id; for the on-disk store it is a record id.
pub type StoragePtr = u64;

/// One parse/traversal event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// An element (or value-label) opens. Carries the label and the
    /// element's pointer into primary storage (`x.start_ptr` in the paper).
    Open { label: LabelId, ptr: StoragePtr },
    /// The most recently opened element closes.
    Close,
}

/// A pull source of [`Event`]s.
pub trait EventSource {
    /// Produces the next event, or `None` at end of stream.
    fn next_event(&mut self) -> Option<Event>;
}

/// The hashed-value label mapper installed by the Section 4.6 extension.
type ValueLabelFn<'a> = Box<dyn FnMut(&str) -> LabelId + 'a>;

/// Streams a document subtree as events, in document order.
///
/// Text nodes are skipped by default; the value-index extension substitutes
/// hashed value labels for them via [`TreeEventSource::with_value_labels`].
pub struct TreeEventSource<'a> {
    doc: &'a Document,
    /// Remaining preorder ids in the subtree.
    next: u32,
    end: u32,
    /// Close events still owed before the next open (subtree_end stack).
    stack: Vec<u32>,
    /// Maps a text node to a synthetic value label (Section 4.6); `None`
    /// means text nodes are invisible to the structural index.
    value_label: Option<ValueLabelFn<'a>>,
    /// Pending open event when a text node expands to open+close.
    pending_close: bool,
}

impl<'a> TreeEventSource<'a> {
    /// Streams the subtree rooted at `root`.
    pub fn new(doc: &'a Document, root: NodeId) -> Self {
        Self {
            doc,
            next: root.0,
            end: doc.subtree_end(root).0,
            stack: Vec::new(),
            value_label: None,
            pending_close: false,
        }
    }

    /// Streams the whole document.
    pub fn whole(doc: &'a Document) -> Self {
        Self::new(doc, doc.root())
    }

    /// Enables the value extension: each text node is emitted as an
    /// open/close pair labeled `hash(text)`.
    pub fn with_value_labels(mut self, f: impl FnMut(&str) -> LabelId + 'a) -> Self {
        self.value_label = Some(Box::new(f));
        self
    }
}

impl EventSource for TreeEventSource<'_> {
    fn next_event(&mut self) -> Option<Event> {
        if self.pending_close {
            self.pending_close = false;
            return Some(Event::Close);
        }
        loop {
            // Emit owed close events for subtrees that ended before `next`.
            if let Some(&end) = self.stack.last() {
                if end <= self.next || self.next >= self.end {
                    self.stack.pop();
                    return Some(Event::Close);
                }
            }
            if self.next >= self.end {
                return None;
            }
            let id = NodeId(self.next);
            self.next += 1;
            match self.doc.kind(id) {
                NodeKind::Element(label) => {
                    self.stack.push(self.doc.subtree_end(id).0);
                    return Some(Event::Open {
                        label,
                        ptr: id.0 as StoragePtr,
                    });
                }
                NodeKind::Text(_) => {
                    if let Some(f) = &mut self.value_label {
                        let label = f(self.doc.text(id).expect("text node"));
                        self.pending_close = true;
                        return Some(Event::Open {
                            label,
                            ptr: id.0 as StoragePtr,
                        });
                    }
                    // Structural stream: skip text, continue the loop.
                }
            }
        }
    }
}

/// Collects a source into a vector (test/diagnostic helper).
pub fn drain(mut src: impl EventSource) -> Vec<Event> {
    let mut out = Vec::new();
    while let Some(e) = src.next_event() {
        out.push(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::document::DocumentBuilder;
    use crate::label::LabelTable;

    fn doc() -> (Document, LabelTable) {
        // <a><b>hello</b><c/></a>
        let mut lt = LabelTable::new();
        let (a, b, c) = (lt.intern("a"), lt.intern("b"), lt.intern("c"));
        let mut bld = DocumentBuilder::new();
        bld.open(a);
        bld.open(b);
        bld.text("hello");
        bld.close();
        bld.open(c);
        bld.close();
        bld.close();
        (bld.finish(), lt)
    }

    #[test]
    fn structural_stream_is_balanced_and_skips_text() {
        let (d, lt) = doc();
        let evs = drain(TreeEventSource::whole(&d));
        let a = lt.lookup("a").unwrap();
        let b = lt.lookup("b").unwrap();
        let c = lt.lookup("c").unwrap();
        assert_eq!(
            evs,
            vec![
                Event::Open { label: a, ptr: 0 },
                Event::Open { label: b, ptr: 1 },
                Event::Close,
                Event::Open { label: c, ptr: 3 },
                Event::Close,
                Event::Close,
            ]
        );
    }

    #[test]
    fn subtree_stream() {
        let (d, lt) = doc();
        let bnode = d.first_child(d.root()).unwrap();
        let evs = drain(TreeEventSource::new(&d, bnode));
        let b = lt.lookup("b").unwrap();
        assert_eq!(evs, vec![Event::Open { label: b, ptr: 1 }, Event::Close]);
    }

    #[test]
    fn value_stream_emits_text_as_labels() {
        let (d, mut lt) = doc();
        let v = lt.intern("#v0");
        let evs = drain(TreeEventSource::whole(&d).with_value_labels(move |_| v));
        // a( b( v ) c ) -> 5 opens+closes total events = 8
        assert_eq!(evs.len(), 8);
        assert_eq!(evs[2], Event::Open { label: v, ptr: 2 });
        assert_eq!(evs[3], Event::Close);
    }

    #[test]
    fn open_close_counts_match() {
        let (d, _) = doc();
        let evs = drain(TreeEventSource::whole(&d));
        let opens = evs
            .iter()
            .filter(|e| matches!(e, Event::Open { .. }))
            .count();
        let closes = evs.iter().filter(|e| matches!(e, Event::Close)).count();
        assert_eq!(opens, closes);
        assert_eq!(opens, 3);
    }
}
