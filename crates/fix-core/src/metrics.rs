//! The implementation-independent effectiveness metrics of Section 6.2.
//!
//! With `ent` = total index entries, `cdt` = candidates returned by the
//! pruning phase, and `rst` = entries that actually produce at least one
//! final result:
//!
//! ```text
//! sel = 1 − rst/ent      (query selectivity)
//! pp  = 1 − cdt/ent      (pruning power)
//! fpr = 1 − rst/cdt      (false-positive ratio)
//! ```

use fix_exec::{anchors, eval_path};
use fix_obs::{MetricsRegistry, Reportable};
use fix_xpath::PathExpr;

use crate::collection::Collection;

/// The counters behind the Section 6.2 metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// `ent`: total entries in the index (base tree plus delta run).
    pub entries: u64,
    /// `cdt`: entries returned as candidates.
    pub candidates: u64,
    /// Candidates contributed by the delta run (`≤ candidates`; 0 on an
    /// index with no post-build inserts).
    pub delta_candidates: u64,
    /// `rst`: entries whose refinement produced at least one result.
    pub producing: u64,
}

impl Metrics {
    /// Query selectivity `sel = 1 − rst/ent`.
    pub fn sel(&self) -> f64 {
        1.0 - ratio(self.producing, self.entries)
    }

    /// Pruning power `pp = 1 − cdt/ent`.
    pub fn pp(&self) -> f64 {
        1.0 - ratio(self.candidates, self.entries)
    }

    /// False-positive ratio `fpr = 1 − rst/cdt` (0 when there were no
    /// candidates — a perfectly pruned empty result).
    pub fn fpr(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            1.0 - ratio(self.producing, self.candidates)
        }
    }
}

impl Reportable for Metrics {
    /// Adds one query's pruning/refinement work to the cumulative
    /// counters; `entries` is a level and sets a gauge.
    fn report(&self, registry: &MetricsRegistry) {
        registry.gauge("fix_index_entries").set(self.entries as i64);
        registry
            .counter("fix_refine_candidates_total")
            .add(self.candidates);
        registry
            .counter(fix_obs::names::DELTA_CANDIDATES_TOTAL)
            .add(self.delta_candidates);
        registry
            .counter("fix_refine_producing_total")
            .add(self.producing);
    }
}

fn ratio(a: u64, b: u64) -> f64 {
    if b == 0 {
        0.0
    } else {
        a as f64 / b as f64
    }
}

/// A point-in-time snapshot of a plan cache's effectiveness (see
/// `PlanCache::stats`). Each `QuerySession::query` call counts exactly one
/// hit (the compiled plan was reused, skipping steps 1–3 of Algorithm 2)
/// or one miss (the plan was compiled and cached).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries answered from a cached plan.
    pub hits: u64,
    /// Queries that had to compile their plan.
    pub misses: u64,
    /// Plans evicted to stay within capacity.
    pub evictions: u64,
    /// Plans currently cached (aliased spellings count separately).
    pub entries: usize,
    /// Maximum number of cached plans before LRU eviction.
    pub capacity: usize,
}

impl CacheStats {
    /// Fraction of queries served from the cache (`0.0` before any query).
    pub fn hit_rate(&self) -> f64 {
        ratio(self.hits, self.hits + self.misses)
    }
}

impl Reportable for CacheStats {
    /// Sets the plan-cache gauges from this snapshot (idempotent — the
    /// cache's own atomics are the source of truth, so re-reporting
    /// overwrites with the latest totals).
    fn report(&self, registry: &MetricsRegistry) {
        registry.gauge("fix_plan_cache_hits").set(self.hits as i64);
        registry
            .gauge("fix_plan_cache_misses")
            .set(self.misses as i64);
        registry
            .gauge("fix_plan_cache_evictions")
            .set(self.evictions as i64);
        registry
            .gauge("fix_plan_cache_entries")
            .set(self.entries as i64);
        registry
            .gauge("fix_plan_cache_capacity")
            .set(self.capacity as i64);
    }
}

/// Computes `rst` from first principles, without the index: the number of
/// entries that must produce results — documents with ≥ 1 result in
/// collection mode (`depth_limit == 0`), query anchors in large-document
/// mode. Tests compare this against the measured
/// [`Metrics::producing`] to prove the index introduces no false negatives.
pub fn ground_truth(coll: &Collection, path: &PathExpr, depth_limit: usize) -> u64 {
    if depth_limit == 0 {
        coll.iter()
            .filter(|(_, d)| !eval_path(d, &coll.labels, path).is_empty())
            .count() as u64
    } else {
        coll.iter()
            .map(|(_, d)| anchors(d, &coll.labels, path).len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metric_formulas() {
        let m = Metrics {
            entries: 1000,
            candidates: 100,
            delta_candidates: 0,
            producing: 80,
        };
        assert!((m.sel() - 0.92).abs() < 1e-12);
        assert!((m.pp() - 0.90).abs() < 1e-12);
        assert!((m.fpr() - 0.20).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let empty = Metrics::default();
        assert_eq!(empty.sel(), 1.0);
        assert_eq!(empty.pp(), 1.0);
        assert_eq!(empty.fpr(), 0.0);
        let perfect = Metrics {
            entries: 10,
            candidates: 3,
            delta_candidates: 1,
            producing: 3,
        };
        assert_eq!(perfect.fpr(), 0.0);
    }

    #[test]
    fn cache_stats_hit_rate() {
        let cold = CacheStats::default();
        assert_eq!(cold.hit_rate(), 0.0);
        let warm = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
            entries: 1,
            capacity: 256,
        };
        assert!((warm.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_counts() {
        use fix_xpath::parse_path;
        let mut c = Collection::new();
        c.add_xml("<a><b/></a>").unwrap();
        c.add_xml("<a><c/></a>").unwrap();
        c.add_xml("<a><b/><b/></a>").unwrap();
        let p = parse_path("//a/b").unwrap();
        // Collection mode: documents with results.
        assert_eq!(ground_truth(&c, &p, 0), 2);
        // Large-document mode: anchors (`a` elements with a `b` child).
        assert_eq!(ground_truth(&c, &p, 2), 2);
        let pb = parse_path("//b").unwrap();
        assert_eq!(ground_truth(&c, &pb, 2), 3, "each b anchors itself");
    }
}
