//! Value hashing (Section 4.6).
//!
//! Text values are mapped into a small range of `β` synthetic labels
//! `#v0 … #v(β−1)` via FNV-1a. The hashed label is then indexed exactly
//! like an element label, which integrates value-equality predicates into
//! the structural index (no separate "index anding"). Collisions only ever
//! add false *positives* — never false negatives — and the refinement
//! phase removes them.

use fix_xml::{LabelId, LabelTable};

/// Deterministic FNV-1a over the value bytes.
fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Maps text values to one of `β` synthetic value labels.
#[derive(Debug, Clone, Copy)]
pub struct ValueHasher {
    beta: u32,
}

impl ValueHasher {
    /// Creates a hasher with range `β`.
    pub fn new(beta: u32) -> Self {
        assert!(beta > 0, "β must be positive");
        Self { beta }
    }

    /// The hash bucket of a value.
    pub fn bucket(&self, value: &str) -> u32 {
        (fnv1a(value) % self.beta as u64) as u32
    }

    /// Interns the bucket's synthetic label (index-build side).
    pub fn label_interning(&self, value: &str, labels: &mut LabelTable) -> LabelId {
        labels.intern(&format!("#v{}", self.bucket(value)))
    }

    /// Looks the bucket's label up (query side). `None` means no indexed
    /// value ever hashed into this bucket, so the query cannot match.
    pub fn label(&self, value: &str, labels: &LabelTable) -> Option<LabelId> {
        labels.lookup(&format!("#v{}", self.bucket(value)))
    }

    /// The configured range β.
    pub fn beta(&self) -> u32 {
        self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_stable_and_bounded() {
        let h = ValueHasher::new(10);
        for v in ["Springer", "1998", "John Smith", ""] {
            let b = h.bucket(v);
            assert!(b < 10);
            assert_eq!(b, h.bucket(v), "hash must be deterministic");
        }
    }

    #[test]
    fn beta_one_collides_everything() {
        let h = ValueHasher::new(1);
        assert_eq!(h.bucket("a"), h.bucket("b"));
    }

    #[test]
    fn labels_intern_and_lookup() {
        let h = ValueHasher::new(16);
        let mut lt = LabelTable::new();
        let l = h.label_interning("Springer", &mut lt);
        assert_eq!(h.label("Springer", &lt), Some(l));
        // A different bucket that was never indexed is unknown.
        let mut missing = None;
        for probe in ["x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8"] {
            if h.bucket(probe) != h.bucket("Springer") {
                missing = Some(probe);
                break;
            }
        }
        assert_eq!(h.label(missing.unwrap(), &lt), None);
    }

    #[test]
    fn distribution_is_not_degenerate() {
        let h = ValueHasher::new(10);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(h.bucket(&format!("value-{i}")));
        }
        assert!(seen.len() >= 8, "FNV should fill most of 10 buckets");
    }
}
