//! Index construction — Algorithm 1 (`CONSTRUCT-INDEX`,
//! `CONSTRUCT-ENTRIES`, `GEN-SUBPATTERN`, `BTREE-INSERT`).
//!
//! Collection mode (`depth_limit == 0`): one entry per document, keyed by
//! the features of the document's full bisimulation pattern.
//!
//! Large-document mode (`depth_limit == k > 0`): one entry per *element*
//! (Theorem 4), keyed by the features of the depth-`k` subpattern rooted
//! at that element's bisimulation vertex. Features are memoized per vertex,
//! so eigenvalues are computed once per distinct pattern, not once per
//! element. (Deviation from the paper's Algorithm 1: we do not switch
//! shallow documents to whole-document entries inside large-document mode —
//! mixing entry granularities would let a root-label probe miss
//! whole-document entries; enumerating per element keeps Theorem 5 intact
//! at the cost of a few extra entries.)

use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

use fix_bisim::{BisimBuilder, BisimGraph, SubpatternForest, VertexId};
use fix_btree::BTree;
use fix_spectral::{EdgeEncoder, Features};
use fix_storage::{BufferPool, HeapFile, IoStats, PageSpace, RecordId};
use fix_xml::{Document, LabelId, LabelTable, NodeId, NodeKind, TreeEventSource};

use crate::collection::{Collection, DocId};
use crate::delta::{DeltaIndex, DeltaStats};
use crate::error::FixError;
use crate::key::{EntryPtr, IndexKey, KEY_LEN};
use crate::options::FixOptions;
use crate::values::ValueHasher;

/// Construction statistics (the Table 1 columns on the index side).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Number of B-tree entries.
    pub entries: u64,
    /// Distinct patterns whose eigenvalues were actually computed.
    pub distinct_patterns: u64,
    /// Entries stored with the `[0, ∞]` oversized-pattern fallback.
    pub fallbacks: u64,
    /// Wall-clock construction time (the paper's ICT column).
    pub build_time: Duration,
    /// Vertices in the shared bisimulation graph.
    pub bisim_vertices: usize,
    /// Edges in the shared bisimulation graph.
    pub bisim_edges: usize,
    /// B-tree size in bytes (unclustered index size).
    pub btree_bytes: u64,
    /// Clustered copy size in bytes (0 for unclustered indexes).
    pub clustered_bytes: u64,
    /// Worker threads the construction pipeline ran with.
    pub threads: usize,
    /// Phase 1: streaming documents into the bisimulation graph.
    pub stream_time: Duration,
    /// Phase 2: sequential subpattern enumeration and edge discovery.
    pub discover_time: Duration,
    /// Phase 3: eigenvalue extraction (parallel across distinct patterns).
    pub extract_time: Duration,
    /// Phase 4: key sort plus bottom-up B-tree bulk load.
    pub load_time: Duration,
}

impl BuildStats {
    /// Total index size: B-tree plus (for clustered indexes) the copies.
    pub fn index_bytes(&self) -> u64 {
        self.btree_bytes + self.clustered_bytes
    }
}

impl fix_obs::Reportable for BuildStats {
    /// Sets the construction gauges (idempotent — build stats are levels;
    /// rebuilding reports the new values over the old).
    fn report(&self, registry: &fix_obs::MetricsRegistry) {
        let ns = |d: Duration| i64::try_from(d.as_nanos()).unwrap_or(i64::MAX);
        registry.gauge("fix_build_entries").set(self.entries as i64);
        registry
            .gauge("fix_build_distinct_patterns")
            .set(self.distinct_patterns as i64);
        registry
            .gauge("fix_build_fallbacks")
            .set(self.fallbacks as i64);
        registry.gauge("fix_build_threads").set(self.threads as i64);
        registry
            .gauge("fix_build_bisim_vertices")
            .set(self.bisim_vertices as i64);
        registry
            .gauge("fix_build_bisim_edges")
            .set(self.bisim_edges as i64);
        registry
            .gauge("fix_build_btree_bytes")
            .set(self.btree_bytes as i64);
        registry
            .gauge("fix_build_clustered_bytes")
            .set(self.clustered_bytes as i64);
        registry.gauge("fix_build_wall_ns").set(ns(self.build_time));
        registry
            .gauge("fix_build_stream_ns")
            .set(ns(self.stream_time));
        registry
            .gauge("fix_build_discover_ns")
            .set(ns(self.discover_time));
        registry
            .gauge("fix_build_extract_ns")
            .set(ns(self.extract_time));
        registry.gauge("fix_build_load_ns").set(ns(self.load_time));
    }
}

/// The mutable construction state that incremental insertion keeps alive:
/// the shared bisimulation graph, the truncation forest, and the feature
/// memo. A freshly built index carries its construction state over, and
/// compaction clones it into the compacted index. An index loaded from
/// disk has no state; its first insert *warms* one by replaying the
/// graph/forest construction over the existing collection
/// (`FixIndex::insert_xml`) — the eigensolver's certified bounds depend
/// on the forest's vertex enumeration order, so the forest must be
/// rebuilt in exactly the order a batch build would use for incremental
/// keys to stay byte-identical to a rebuild's.
#[derive(Clone)]
pub(crate) struct IncrementalState {
    graph: BisimGraph,
    forest: SubpatternForest,
    feat_memo: HashMap<VertexId, (Features, bool)>,
    value_labels: HashSet<LabelId>,
    /// Patterns reconstructed by a warm-up replay: they are already
    /// accounted for in the base stats (`base_distinct`, `fallbacks`), so
    /// re-extracting one must not bump those counters again.
    warm_patterns: HashSet<VertexId>,
    seq: u32,
    fallbacks: u64,
    /// Stats baselines for resumed states: distinct patterns / bisim graph
    /// sizes already accounted for by the base index, so reported levels
    /// never shrink when the memo restarts empty.
    base_distinct: u64,
    base_vertices: usize,
    base_edges: usize,
}

impl IncrementalState {
    fn new() -> Self {
        Self {
            graph: BisimGraph::new(),
            forest: SubpatternForest::new(),
            feat_memo: HashMap::new(),
            value_labels: HashSet::new(),
            warm_patterns: HashSet::new(),
            seq: 0,
            fallbacks: 0,
            base_distinct: 0,
            base_vertices: 0,
            base_edges: 0,
        }
    }

    /// A state resuming insertion on an index whose construction state is
    /// gone (loaded from disk, or rebuilt by compaction). `next_seq` must
    /// be past every sequence number in use; entry numbering is dense, so
    /// the entry count is exactly that.
    fn resume(next_seq: u64, stats: &BuildStats) -> Self {
        Self {
            seq: u32::try_from(next_seq).expect("entry space exhausted"),
            fallbacks: stats.fallbacks,
            base_distinct: stats.distinct_patterns,
            base_vertices: stats.bisim_vertices,
            base_edges: stats.bisim_edges,
            ..Self::new()
        }
    }
}

/// The FIX index over a [`Collection`].
pub struct FixIndex {
    pub(crate) opts: FixOptions,
    pub(crate) btree: BTree,
    pub(crate) encoder: EdgeEncoder,
    pub(crate) hasher: Option<ValueHasher>,
    /// Clustered copies (subtree serializations in key order).
    pub(crate) clustered: Option<HeapFile>,
    pub(crate) pool: PageSpace,
    pub(crate) stats: BuildStats,
    pub(crate) incremental: Option<IncrementalState>,
    /// Entries accepted since the last build or compaction; scans merge
    /// this run with the base tree (see `FixIndex::scan_plan`).
    pub(crate) delta: DeltaIndex,
    /// Tombstoned documents: their entries stay in the B-tree but are
    /// filtered out of candidate sets until [`FixIndex::vacuum`].
    pub(crate) removed: std::collections::HashSet<DocId>,
    /// Compactions folded into this index's lineage, and their cumulative
    /// wall time (telemetry only; not persisted).
    pub(crate) compactions: u64,
    pub(crate) compact_ns: u64,
}

/// Builds an index with its pages in a `FileBackend` at `path` (backing
/// implementation of `FixDatabase::build_on_disk`).
pub(crate) fn build_on_disk_impl(
    coll: &mut Collection,
    opts: FixOptions,
    path: &std::path::Path,
) -> std::io::Result<FixIndex> {
    let backend = fix_storage::FileBackend::create(path)?;
    let pool = BufferPool::shared(opts.pool_pages).attach(Box::new(backend));
    Ok(FixIndex::build_on(coll, opts, pool))
}

/// One streamed document: its root unit plus (in large-document mode) the
/// per-element units, with vertex ids in the *shared* bisimulation graph.
struct StreamedDoc {
    root: VertexId,
    root_ptr: u64,
    closed: Vec<(VertexId, u64)>,
}

/// Streams one document into `graph` (no value hashing).
fn stream_document(graph: &mut BisimGraph, doc: &Document, record_all: bool) -> StreamedDoc {
    let builder = BisimBuilder::new(graph);
    let builder = if record_all {
        builder.record_all_elements()
    } else {
        builder
    };
    let info = builder.run(&mut TreeEventSource::whole(doc));
    StreamedDoc {
        root: info.root,
        root_ptr: info.root_ptr,
        closed: info.closed,
    }
}

/// Streams one document into the shared bisimulation graph and truncates
/// each of its indexable units to its depth-limited pattern in the
/// forest, returning `(pattern root, storage ptr)` per unit in document
/// order. Shared between live insertion ([`index_document`]) and the
/// cold-resume warm-up replay (`FixIndex::insert_xml`): the forest's
/// vertex numbering — and with it the eigensolver's matrix enumeration
/// order — depends on the order patterns are first truncated, so both
/// paths must replay the batch build's exact sequence.
fn stream_units(
    doc: &Document,
    labels: &mut LabelTable,
    opts: &FixOptions,
    state: &mut IncrementalState,
    hasher: &Option<ValueHasher>,
) -> Vec<(VertexId, u64)> {
    let depth_limit = opts.depth_limit;
    let builder = BisimBuilder::new(&mut state.graph);
    let builder = if depth_limit > 0 {
        builder.record_all_elements()
    } else {
        builder
    };
    let info = match hasher {
        Some(h) => {
            let vl: &mut HashSet<LabelId> = &mut state.value_labels;
            let mut src = TreeEventSource::whole(doc).with_value_labels(|t| {
                let l = h.label_interning(t, labels);
                vl.insert(l);
                l
            });
            builder.run(&mut src)
        }
        None => builder.run(&mut TreeEventSource::whole(doc)),
    };
    let unit_entries: Vec<(VertexId, u64)> = if depth_limit == 0 {
        vec![(info.root, info.root_ptr)]
    } else {
        info.closed
            .iter()
            .copied()
            .filter(|&(v, _)| !state.value_labels.contains(&state.graph.label(v)))
            .collect()
    };
    let limit = if depth_limit == 0 {
        usize::MAX
    } else {
        depth_limit
    };
    unit_entries
        .into_iter()
        .map(|(vertex, ptr)| {
            let pat_root = if opts.literal_gen_subpattern {
                // Paper-literal path: unfold + re-minimize, then merge the
                // standalone pattern into the forest graph so the feature
                // memo still dedups identical patterns.
                let (pat, pinfo) = fix_bisim::subpattern(&state.graph, vertex, limit);
                state.forest.adopt(&pat, pinfo.root)
            } else {
                state.forest.truncate(&state.graph, vertex, limit)
            };
            (pat_root, ptr)
        })
        .collect()
}

/// Incrementally indexes one document into an already-built index:
/// streams it into the shared bisimulation graph and appends one
/// `(key, ptr)` entry per indexable unit to the delta run (clustered
/// indexes store the subtree copy alongside, in the base heap's record
/// format). Bulk construction goes through the phased pipeline in
/// `FixIndex::build_on` instead; both assign identical keys.
#[allow(clippy::too_many_arguments)]
fn index_document(
    doc_id: DocId,
    doc: &Document,
    labels: &mut LabelTable,
    opts: &FixOptions,
    state: &mut IncrementalState,
    encoder: &mut EdgeEncoder,
    hasher: &Option<ValueHasher>,
    delta: &mut DeltaIndex,
) {
    let depth_limit = opts.depth_limit;
    let limit = if depth_limit == 0 {
        usize::MAX
    } else {
        depth_limit
    };
    for (pat_root, ptr) in stream_units(doc, labels, opts, state, hasher) {
        // `fallbacks` counts *distinct* oversized patterns (the quantity
        // the paper reports), so bump it only on a fresh memo insertion —
        // and not for warm-replayed patterns the base stats already count.
        if !state.feat_memo.contains_key(&pat_root) {
            let extracted =
                opts.extractor
                    .extract_interning(state.forest.graph(), pat_root, encoder);
            if extracted.1 && !state.warm_patterns.contains(&pat_root) {
                state.fallbacks += 1;
            }
            state.feat_memo.insert(pat_root, extracted);
        }
        let (features, _) = state.feat_memo[&pat_root];
        let key = IndexKey::new(&features, state.seq).encode();
        state.seq = state.seq.checked_add(1).expect("entry space exhausted");
        let entry = EntryPtr {
            doc: doc_id,
            node: ptr as u32,
        };
        if delta.is_clustered() {
            let xml = serialize_truncated(doc, labels, NodeId(entry.node), limit);
            let mut record = Vec::with_capacity(8 + xml.len());
            record.extend_from_slice(&entry.to_u64().to_le_bytes());
            record.extend_from_slice(xml.as_bytes());
            delta.push_record(&key, record);
        } else {
            delta.push(&key, entry.to_u64());
        }
    }
}

impl FixIndex {
    /// Builds the index per Algorithm 1. The collection's label table is
    /// extended with value labels when the value extension is enabled.
    pub fn build(coll: &mut Collection, opts: FixOptions) -> FixIndex {
        let pool = PageSpace::in_memory(opts.pool_pages);
        Self::build_on(coll, opts, pool)
    }

    /// The four-phase construction pipeline. Phases 1 and 3 fan out across
    /// `opts.threads` scoped workers; phases 2 and 4 are sequential, which
    /// is what pins down the label/edge encodings and entry sequence
    /// numbers — the built index is bit-identical at every thread count.
    pub(crate) fn build_on(coll: &mut Collection, opts: FixOptions, pool: PageSpace) -> FixIndex {
        let start = Instant::now();
        let threads = opts.effective_threads();
        let mut encoder = EdgeEncoder::new();
        let hasher = opts.value_beta.map(ValueHasher::new);
        let mut state = IncrementalState::new();
        let depth_limit = opts.depth_limit;
        let record_all = depth_limit > 0;

        // Phase 1 — stream documents into the shared bisimulation graph.
        // Workers stream disjoint document ranges into thread-local graphs;
        // absorbing those graphs in document order replays the sequential
        // intern order exactly (see `BisimGraph::absorb`), so the shared
        // vertex numbering matches the single-threaded build. Value mode
        // interns labels *while* streaming and therefore stays sequential.
        let (labels, docs) = coll.split_mut();
        let mut streamed: Vec<StreamedDoc> = Vec::with_capacity(docs.len());
        if threads > 1 && hasher.is_none() && docs.len() > 1 {
            let chunk = docs.len().div_ceil(threads);
            let locals: Vec<(BisimGraph, Vec<StreamedDoc>)> = std::thread::scope(|s| {
                let handles: Vec<_> = docs
                    .chunks(chunk)
                    .map(|part| {
                        s.spawn(move || {
                            let mut g = BisimGraph::new();
                            let infos = part
                                .iter()
                                .map(|d| stream_document(&mut g, d, record_all))
                                .collect::<Vec<_>>();
                            (g, infos)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("streaming worker panicked"))
                    .collect()
            });
            for (local, infos) in &locals {
                let map = state.graph.absorb(local);
                for info in infos {
                    streamed.push(StreamedDoc {
                        root: map[info.root.index()],
                        root_ptr: info.root_ptr,
                        closed: info
                            .closed
                            .iter()
                            .map(|&(v, p)| (map[v.index()], p))
                            .collect(),
                    });
                }
            }
        } else {
            for doc in docs.iter() {
                match &hasher {
                    Some(h) => {
                        let vl: &mut HashSet<LabelId> = &mut state.value_labels;
                        let mut src = TreeEventSource::whole(doc).with_value_labels(|t| {
                            let l = h.label_interning(t, labels);
                            vl.insert(l);
                            l
                        });
                        let builder = BisimBuilder::new(&mut state.graph);
                        let builder = if record_all {
                            builder.record_all_elements()
                        } else {
                            builder
                        };
                        let info = builder.run(&mut src);
                        streamed.push(StreamedDoc {
                            root: info.root,
                            root_ptr: info.root_ptr,
                            closed: info.closed,
                        });
                    }
                    None => streamed.push(stream_document(&mut state.graph, doc, record_all)),
                }
            }
        }
        let stream_time = start.elapsed();

        // Phase 2 (sequential) — enumerate indexable units, truncate each
        // to its depth-k pattern, and intern every pattern edge into the
        // encoder in first-seen order. After this sweep the encoder is
        // frozen: extraction only reads it.
        let t_discover = Instant::now();
        let limit = if depth_limit == 0 {
            usize::MAX
        } else {
            depth_limit
        };
        let mut units: Vec<(DocId, VertexId, u64)> = Vec::new();
        let mut new_patterns: Vec<VertexId> = Vec::new();
        let mut discovered: HashSet<VertexId> = HashSet::new();
        for (i, info) in streamed.iter().enumerate() {
            let doc_units: Vec<(VertexId, u64)> = if depth_limit == 0 {
                vec![(info.root, info.root_ptr)]
            } else {
                info.closed
                    .iter()
                    .copied()
                    .filter(|&(v, _)| !state.value_labels.contains(&state.graph.label(v)))
                    .collect()
            };
            for (vertex, ptr) in doc_units {
                let pat_root = if opts.literal_gen_subpattern {
                    let (pat, pinfo) = fix_bisim::subpattern(&state.graph, vertex, limit);
                    state.forest.adopt(&pat, pinfo.root)
                } else {
                    state.forest.truncate(&state.graph, vertex, limit)
                };
                if discovered.insert(pat_root) {
                    opts.extractor
                        .discover_edges(state.forest.graph(), pat_root, &mut encoder);
                    new_patterns.push(pat_root);
                }
                units.push((DocId(i as u32), pat_root, ptr));
            }
        }
        let discover_time = t_discover.elapsed();

        // Phase 3 — eigendecomposition once per distinct pattern, fanned
        // out across workers against the frozen encoder (workers share
        // only `&` state; results land in a map, so arrival order is
        // irrelevant).
        let t_extract = Instant::now();
        {
            let graph = state.forest.graph();
            let enc = &encoder;
            let extractor = &opts.extractor;
            let extracted: Vec<Vec<(VertexId, (Features, bool))>> =
                if threads > 1 && new_patterns.len() > 1 {
                    let chunk = new_patterns.len().div_ceil(threads);
                    std::thread::scope(|s| {
                        let handles: Vec<_> = new_patterns
                            .chunks(chunk)
                            .map(|part| {
                                s.spawn(move || {
                                    part.iter()
                                        .map(|&p| (p, extractor.extract_frozen(graph, p, enc)))
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().expect("extraction worker panicked"))
                            .collect()
                    })
                } else {
                    vec![new_patterns
                        .iter()
                        .map(|&p| (p, extractor.extract_frozen(graph, p, enc)))
                        .collect()]
                };
            for (p, res) in extracted.into_iter().flatten() {
                if res.1 {
                    state.fallbacks += 1;
                }
                state.feat_memo.insert(p, res);
            }
        }
        let extract_time = t_extract.elapsed();

        // Phase 4 (sequential) — assign sequence numbers in document
        // order, sort the (unique) keys once, and bulk-load the B-tree
        // bottom-up. Clustered mode additionally copies each entry's
        // truncated subtree into the heap in key order first, so
        // refinement I/O stays sequential.
        let t_load = Instant::now();
        let mut entries: Vec<([u8; KEY_LEN], EntryPtr)> = Vec::with_capacity(units.len());
        for (doc, pat_root, ptr) in units {
            let (features, _) = state.feat_memo[&pat_root];
            let key = IndexKey::new(&features, state.seq).encode();
            state.seq = state.seq.checked_add(1).expect("entry space exhausted");
            entries.push((
                key,
                EntryPtr {
                    doc,
                    node: ptr as u32,
                },
            ));
        }
        entries.sort_unstable_by_key(|e| e.0);
        let (btree, clustered) = if opts.clustered {
            let mut heap = HeapFile::new(pool.clone());
            let mut loaded = Vec::with_capacity(entries.len());
            for (key, ptr) in &entries {
                let doc = coll.doc(ptr.doc);
                let xml = serialize_truncated(doc, &coll.labels, NodeId(ptr.node), limit);
                let mut record = Vec::with_capacity(8 + xml.len());
                record.extend_from_slice(&ptr.to_u64().to_le_bytes());
                record.extend_from_slice(xml.as_bytes());
                loaded.push((key.to_vec(), heap.append(&record).to_u64()));
            }
            (BTree::bulk_load(pool.clone(), KEY_LEN, loaded), Some(heap))
        } else {
            (
                BTree::bulk_load(
                    pool.clone(),
                    KEY_LEN,
                    entries.iter().map(|(k, p)| (k.to_vec(), p.to_u64())),
                ),
                None,
            )
        };
        let load_time = t_load.elapsed();

        let stats = BuildStats {
            entries: btree.len(),
            distinct_patterns: state.feat_memo.len() as u64,
            fallbacks: state.fallbacks,
            build_time: start.elapsed(),
            bisim_vertices: state.graph.len(),
            bisim_edges: state.graph.edge_count(),
            btree_bytes: btree.stats().size_bytes,
            clustered_bytes: clustered.as_ref().map(HeapFile::size_bytes).unwrap_or(0),
            threads,
            stream_time,
            discover_time,
            extract_time,
            load_time,
        };
        let delta = DeltaIndex::new(opts.clustered, opts.tier_fanout);
        FixIndex {
            opts,
            btree,
            encoder,
            hasher,
            clustered,
            pool,
            stats,
            incremental: Some(state),
            delta,
            removed: std::collections::HashSet::new(),
            compactions: 0,
            compact_ns: 0,
        }
    }

    /// Tombstones a document: its entries stop appearing in candidate sets
    /// immediately; the B-tree space is reclaimed by [`FixIndex::vacuum`].
    pub fn remove_document(&mut self, doc: DocId) {
        self.removed.insert(doc);
    }

    /// True if `doc` has been tombstoned.
    pub fn is_removed(&self, doc: DocId) -> bool {
        self.removed.contains(&doc)
    }

    /// Number of tombstoned documents.
    pub fn removed_count(&self) -> usize {
        self.removed.len()
    }

    /// Rebuilds the database without tombstoned documents. Document ids
    /// are re-assigned densely; returns the fresh `(collection, index)`
    /// pair.
    pub fn vacuum(&self, coll: &Collection) -> (Collection, FixIndex) {
        let mut fresh = Collection::new();
        for (id, d) in coll.iter() {
            if !self.removed.contains(&id) {
                let xml = fix_xml::to_xml_string(d, &coll.labels);
                fresh.add_xml(&xml).expect("re-serialized document parses");
            }
        }
        let idx = FixIndex::build(&mut fresh, self.opts.clone());
        (fresh, idx)
    }

    /// Incrementally indexes a new document: feature-extracts just this
    /// document and appends its entries to the side delta run, which scans
    /// merge with the base tree — answers are identical to a full rebuild
    /// at all times. Returns the new document's id.
    ///
    /// This is the update story the clustering indexes lack (the paper's
    /// Section 1 criticism of F&B: "updating … could be expensive"): an
    /// insert streams only the new document, reusing the shared
    /// bisimulation graph and feature memo when this index was built or
    /// compacted in this process. An index loaded from disk has no such
    /// state, so the first insert warms one by replaying the graph and
    /// forest construction over the existing collection (no eigenwork) —
    /// the eigensolver's certified bounds are sensitive to the forest's
    /// vertex enumeration order, so a cold forest built from just the new
    /// document would assign *different key bytes* than a rebuild.
    /// Either way, incremental keys are byte-identical to a full
    /// rebuild's.
    pub fn insert_xml(
        &mut self,
        coll: &mut Collection,
        xml: &str,
    ) -> Result<DocId, fix_xml::ParseError> {
        let doc_id = coll.add_xml_limited(xml, self.opts.max_parse_depth)?;
        let (labels, docs) = coll.split_mut();
        if self.incremental.is_none() {
            let next_seq = self.btree.len() + self.delta.len();
            let mut state = IncrementalState::resume(next_seq, &self.stats);
            for doc in &docs[..doc_id.0 as usize] {
                for (pat_root, _) in stream_units(doc, labels, &self.opts, &mut state, &self.hasher)
                {
                    state.warm_patterns.insert(pat_root);
                }
            }
            // The warmed graph holds the whole collection's structure, so
            // the resumed baselines would double-count it.
            state.base_vertices = 0;
            state.base_edges = 0;
            state.base_distinct = state.warm_patterns.len() as u64;
            self.incremental = Some(state);
        }
        let state = self.incremental.as_mut().expect("resumed above");
        index_document(
            doc_id,
            &docs[doc_id.0 as usize],
            labels,
            &self.opts,
            state,
            &mut self.encoder,
            &self.hasher,
            &mut self.delta,
        );
        self.stats.entries = self.btree.len() + self.delta.len();
        self.stats.distinct_patterns = state.base_distinct
            + state
                .feat_memo
                .keys()
                .filter(|p| !state.warm_patterns.contains(p))
                .count() as u64;
        self.stats.fallbacks = state.fallbacks;
        self.stats.bisim_vertices = state.base_vertices + state.graph.len();
        self.stats.bisim_edges = state.base_edges + state.graph.edge_count();
        self.stats.btree_bytes = self.btree.stats().size_bytes;
        Ok(doc_id)
    }

    /// Folds the delta run into the base B+-tree, returning a fresh index
    /// whose key sequence and (for clustered indexes) copy-heap record
    /// order are byte-identical to a full rebuild over the same logical
    /// collection — insertion replays the batch build's graph/forest
    /// construction order (so each entry's feature bytes match the
    /// rebuild's), and both paths assign dense sequence numbers in
    /// document order, so a two-way merge of the two sorted sources equals
    /// the rebuild's single sorted load. Tombstones carry over; the result
    /// has an empty delta. `&self`-only, so live snapshot readers are
    /// never blocked — callers swap the result in under the same
    /// discipline as [`FixIndex::vacuum`].
    pub fn compact(&self) -> FixIndex {
        let start = Instant::now();
        let pool = PageSpace::in_memory(self.opts.pool_pages);
        let merged = fix_exec::merge_sorted(
            self.btree.iter().map(|(k, v)| (k, v, false)).collect(),
            self.delta
                .iter()
                .map(|(k, v)| (k.to_vec(), v, true))
                .collect(),
            |(k, _, _): &(Vec<u8>, u64, bool)| k.clone(),
        );
        let (btree, clustered) = if let Some(heap_src) = &self.clustered {
            // Move copy records verbatim: documents are immutable, so the
            // stored serializations are exactly what a rebuild would write,
            // and appending in merged key order replays its heap layout.
            let mut heap = HeapFile::new(pool.clone());
            let mut loaded = Vec::with_capacity(merged.len());
            for (key, value, from_delta) in merged {
                let record: Vec<u8> = if from_delta {
                    self.delta.record(value).to_vec()
                } else {
                    heap_src.get(RecordId::from_u64(value))
                };
                loaded.push((key, heap.append(&record).to_u64()));
            }
            (BTree::bulk_load(pool.clone(), KEY_LEN, loaded), Some(heap))
        } else {
            (
                BTree::bulk_load(
                    pool.clone(),
                    KEY_LEN,
                    merged.into_iter().map(|(k, v, _)| (k, v)),
                ),
                None,
            )
        };
        let mut stats = self.stats;
        stats.entries = btree.len();
        stats.btree_bytes = btree.stats().size_bytes;
        stats.clustered_bytes = clustered.as_ref().map(HeapFile::size_bytes).unwrap_or(0);
        let delta = DeltaIndex::new(self.opts.clustered, self.opts.tier_fanout);
        delta.carry_scan_history(&self.delta.stats());
        FixIndex {
            opts: self.opts.clone(),
            btree,
            encoder: self.encoder.clone(),
            hasher: self.hasher,
            clustered,
            pool,
            stats,
            // Carry the construction state: later inserts keep extending
            // the same graph/forest, so their forest vertex numbering —
            // and hence their key bytes — match a batch rebuild's. (A
            // compacted index that was itself loaded from disk stays
            // stateless; the first insert warms a state, see
            // `FixIndex::insert_xml`.)
            incremental: self.incremental.clone(),
            delta,
            removed: self.removed.clone(),
            compactions: self.compactions + 1,
            compact_ns: self.compact_ns
                + u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        }
    }

    /// Entries currently in the delta run.
    pub fn delta_len(&self) -> u64 {
        self.delta.len()
    }

    /// Resident bytes of the delta run (plus clustered copies).
    pub fn delta_bytes(&self) -> u64 {
        self.delta.size_bytes()
    }

    /// Cumulative delta counters (size levels and scan work).
    pub fn delta_stats(&self) -> DeltaStats {
        self.delta.stats()
    }

    /// Freezes the active delta run into the frozen tier stack — called
    /// when the WAL segment mirroring the active run seals, so the run
    /// boundary on disk and in memory coincide. Returns `false` when the
    /// active run was empty.
    pub fn seal_delta(&mut self) -> bool {
        self.delta.seal()
    }

    /// [`FixIndex::seal_delta`] with flight-recorder detail: the frozen
    /// run's entry count and each cascade merge the freeze triggered.
    /// `None` when the active run was empty (nothing froze).
    pub(crate) fn seal_delta_detailed(&mut self) -> Option<crate::delta::SealDetail> {
        self.delta.seal_detailed()
    }

    /// Per-level shapes of the frozen delta tier stack (level 0 first).
    pub fn delta_level_stats(&self) -> Vec<fix_btree::LevelStats> {
        self.delta.level_stats()
    }

    /// Compactions folded into this index's lineage and their cumulative
    /// wall time in nanoseconds.
    pub fn compaction_stats(&self) -> (u64, u64) {
        (self.compactions, self.compact_ns)
    }

    /// Construction statistics.
    pub fn stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Shape statistics of the underlying B-tree.
    pub fn btree_stats(&self) -> fix_btree::BTreeStats {
        self.btree.stats()
    }

    /// Cumulative B-tree scan-work counters (range scans started, entries
    /// yielded) since the index was built or loaded.
    pub fn scan_stats(&self) -> fix_btree::ScanStats {
        self.btree.scan_stats()
    }

    /// The index configuration.
    pub fn options(&self) -> &FixOptions {
        &self.opts
    }

    /// Number of index entries (`ent` in the Section 6.2 metrics): base
    /// tree plus delta run.
    pub fn entry_count(&self) -> u64 {
        self.btree.len() + self.delta.len()
    }

    /// Iterates all index entries — base tree and delta run merged — as
    /// `(decoded key, value)` in global key order (statistics and
    /// diagnostics; persistence writes the two sources separately).
    pub fn entries(&self) -> impl Iterator<Item = (crate::key::IndexKey, u64)> + '_ {
        fix_exec::merge_sorted(
            self.btree.iter().collect(),
            self.delta.iter().map(|(k, v)| (k.to_vec(), v)).collect(),
            |(k, _): &(Vec<u8>, u64)| k.clone(),
        )
        .into_iter()
        .map(|(k, v)| (crate::key::IndexKey::decode(&k), v))
    }

    /// Clustered copy records — base heap and delta copies merged — in
    /// global key order, or `None` for unclustered indexes. Diagnostic:
    /// two clustered indexes over the same logical collection are
    /// byte-identical iff their `entries()` and `clustered_records()`
    /// streams agree.
    pub fn clustered_records(&self) -> Option<Vec<(crate::key::IndexKey, Vec<u8>)>> {
        self.clustered.as_ref()?;
        Some(
            self.entries_with_origin()
                .map(|(k, v, from_delta)| {
                    let record = if from_delta {
                        self.delta.record(v).to_vec()
                    } else {
                        self.clustered
                            .as_ref()
                            .expect("checked above")
                            .get(RecordId::from_u64(v))
                    };
                    (k, record)
                })
                .collect(),
        )
    }

    /// Merged entries tagged with their source (`true` = delta).
    fn entries_with_origin(&self) -> impl Iterator<Item = (crate::key::IndexKey, u64, bool)> + '_ {
        fix_exec::merge_sorted(
            self.btree.iter().map(|(k, v)| (k, v, false)).collect(),
            self.delta
                .iter()
                .map(|(k, v)| (k.to_vec(), v, true))
                .collect(),
            |(k, _, _): &(Vec<u8>, u64, bool)| k.clone(),
        )
        .into_iter()
        .map(|(k, v, d)| (crate::key::IndexKey::decode(&k), v, d))
    }

    /// Snapshot of the index storage's I/O counters.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Buffer-pool statistics (shared across every space attached to the
    /// pool this index's pages live in).
    pub fn pool_stats(&self) -> fix_storage::PoolStats {
        self.pool.pool_stats()
    }

    /// Resets the index storage's I/O counters (between experiment runs).
    pub fn reset_io_stats(&self) {
        self.pool.reset_stats();
    }

    /// Resolves a clustered B-tree value to its stored `(ptr, xml bytes)`.
    pub(crate) fn clustered_fetch(&self, value: u64) -> (EntryPtr, Vec<u8>) {
        self.try_clustered_fetch(value).unwrap_or_else(|e| {
            panic!("invariant: clustered copy {value:#x} must be readable on this path: {e}")
        })
    }

    /// [`FixIndex::clustered_fetch`] with structured failure: heap-page
    /// I/O errors and CRC mismatches surface as [`FixError`] (section
    /// `"clustered"`) instead of a panic.
    pub(crate) fn try_clustered_fetch(&self, value: u64) -> Result<(EntryPtr, Vec<u8>), FixError> {
        let heap = self
            .clustered
            .as_ref()
            .expect("invariant: clustered fetch requires a clustered index");
        let record = heap
            .try_get(RecordId::from_u64(value))
            .map_err(|e| FixError::from_storage("clustered", e))?;
        if record.len() < 8 {
            return Err(FixError::Corrupt {
                section: "clustered".to_string(),
                detail: format!(
                    "copy record {value:#x} is {} bytes, shorter than its 8-byte pointer",
                    record.len()
                ),
            });
        }
        let ptr = EntryPtr::from_u64(u64::from_le_bytes(
            record[0..8].try_into().expect("length checked above"),
        ));
        Ok((ptr, record[8..].to_vec()))
    }
}

/// Serializes the subtree of `node` truncated to `depth` element levels
/// (the clustered index stores the pattern instance, which is depth-bounded
/// exactly like the index entries themselves).
pub(crate) fn serialize_truncated(
    doc: &Document,
    labels: &LabelTable,
    node: NodeId,
    depth: usize,
) -> String {
    fn rec(doc: &Document, labels: &LabelTable, n: NodeId, depth: usize, out: &mut String) {
        match doc.kind(n) {
            NodeKind::Text(_) => {
                for c in doc.text(n).expect("text node").chars() {
                    match c {
                        '&' => out.push_str("&amp;"),
                        '<' => out.push_str("&lt;"),
                        '>' => out.push_str("&gt;"),
                        _ => out.push(c),
                    }
                }
            }
            NodeKind::Element(l) => {
                let name = labels.resolve(l);
                out.push('<');
                out.push_str(name);
                if depth <= 1 || doc.first_child(n).is_none() {
                    out.push_str("/>");
                    return;
                }
                out.push('>');
                for c in doc.children(n) {
                    rec(doc, labels, c, depth - 1, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
    }
    let mut out = String::new();
    rec(doc, labels, node, depth, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_collection() -> Collection {
        let mut c = Collection::new();
        c.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        c.add_xml("<bib><book><author/></book></bib>").unwrap();
        c.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        c
    }

    #[test]
    fn collection_mode_one_entry_per_document() {
        let mut c = small_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        assert_eq!(idx.entry_count(), 3);
        // Docs 0 and 2 are identical → one distinct pattern each for the
        // two distinct structures.
        assert_eq!(idx.stats().distinct_patterns, 2);
        assert_eq!(idx.stats().fallbacks, 0);
        assert!(idx.stats().btree_bytes > 0);
        assert_eq!(idx.stats().clustered_bytes, 0);
    }

    #[test]
    fn large_document_mode_one_entry_per_element() {
        let mut c = Collection::new();
        c.add_xml("<a><b><c/></b><b><c/></b><d/></a>").unwrap();
        let idx = FixIndex::build(&mut c, FixOptions::large_document(2));
        // 6 elements → 6 entries (Theorem 4).
        assert_eq!(idx.entry_count(), 6);
        // Distinct depth-2 patterns: c, b{c}, d, a{b,d} → 4.
        assert_eq!(idx.stats().distinct_patterns, 4);
    }

    #[test]
    fn clustered_build_stores_copies() {
        let mut c = small_collection();
        let idx = FixIndex::build(&mut c, FixOptions::collection().clustered());
        assert_eq!(idx.entry_count(), 3);
        assert!(idx.stats().clustered_bytes > 0);
        // Every B-tree value resolves to a parseable record.
        for (_, v) in idx.btree.iter() {
            let (ptr, xml) = idx.clustered_fetch(v);
            assert!(ptr.doc.0 < 3);
            assert!(std::str::from_utf8(&xml).unwrap().starts_with("<bib>"));
        }
    }

    #[test]
    fn value_mode_indexes_value_labels_but_not_their_entries() {
        let mut c = Collection::new();
        c.add_xml("<dblp><proceedings><publisher>Springer</publisher></proceedings></dblp>")
            .unwrap();
        let idx = FixIndex::build(&mut c, FixOptions::large_document(3).with_values(8));
        // Entries: dblp, proceedings, publisher — value nodes excluded.
        assert_eq!(idx.entry_count(), 3);
        // The value label exists in the shared table.
        assert!(c.labels.iter().any(|(_, n)| n.starts_with("#v")));
        assert!(idx.hasher.is_some());
    }

    #[test]
    fn truncated_serialization() {
        let mut c = Collection::new();
        let id = c.add_xml("<a><b><c><d/></c></b>t</a>").unwrap();
        let doc = c.doc(id);
        let root = doc.root();
        assert_eq!(
            serialize_truncated(doc, &c.labels, root, usize::MAX),
            "<a><b><c><d/></c></b>t</a>"
        );
        assert_eq!(serialize_truncated(doc, &c.labels, root, 2), "<a><b/>t</a>");
        assert_eq!(serialize_truncated(doc, &c.labels, root, 1), "<a/>");
    }

    #[test]
    fn oversized_patterns_fall_back() {
        let mut c = Collection::new();
        c.add_xml("<a><b/><c/><d/><e/></a>").unwrap();
        let mut opts = FixOptions::collection();
        opts.extractor.max_edges = 2;
        let idx = FixIndex::build(&mut c, opts);
        assert_eq!(idx.stats().fallbacks, 1);
    }

    #[test]
    fn identical_documents_share_memoized_features() {
        let mut c = Collection::new();
        for _ in 0..50 {
            c.add_xml("<a><b/><c/></a>").unwrap();
        }
        let idx = FixIndex::build(&mut c, FixOptions::collection());
        assert_eq!(idx.entry_count(), 50);
        assert_eq!(idx.stats().distinct_patterns, 1);
    }
}

#[cfg(test)]
mod incremental_tests {
    use super::*;
    use crate::metrics::ground_truth;
    use fix_xpath::parse_path;

    #[test]
    fn insert_matches_fresh_build() {
        // Index built incrementally must answer exactly like one built
        // from scratch over the same documents.
        let docs = [
            "<bib><article><author/><ee/></article></bib>",
            "<bib><book><author><phone/></author></book></bib>",
            "<bib><article><author><email/></author><title>t</title></article></bib>",
            "<bib><inproceedings><url/><title><i/></title></inproceedings></bib>",
        ];
        let mut all = Collection::new();
        for d in &docs {
            all.add_xml(d).unwrap();
        }
        let fresh = FixIndex::build(&mut all, FixOptions::large_document(4));

        let mut coll = Collection::new();
        coll.add_xml(docs[0]).unwrap();
        let mut inc = FixIndex::build(&mut coll, FixOptions::large_document(4));
        for (i, d) in docs[1..].iter().enumerate() {
            let id = inc.insert_xml(&mut coll, d).unwrap();
            assert_eq!(id, DocId(i as u32 + 1));
        }
        assert_eq!(inc.entry_count(), fresh.entry_count());
        for q in [
            "//article[author]/ee",
            "//author/phone",
            "//inproceedings[url]/title/i",
            "//bib/article/title",
        ] {
            let a = inc.query(&coll, q).unwrap();
            let b = fresh.query(&all, q).unwrap();
            assert_eq!(a.results, b.results, "disagreement on {q}");
            // No false negatives after inserts.
            let truth = ground_truth(&coll, &parse_path(q).unwrap(), 4);
            assert_eq!(a.metrics.producing, truth, "false negative on {q}");
        }
    }

    #[test]
    fn clustered_indexes_absorb_inserts_via_delta_copies() {
        let mut coll = Collection::new();
        coll.add_xml("<a><b/></a>").unwrap();
        let mut idx = FixIndex::build(&mut coll, FixOptions::collection().clustered());
        let id = idx.insert_xml(&mut coll, "<a><c/></a>").unwrap();
        assert_eq!(id, DocId(1));
        assert_eq!(idx.entry_count(), 2);
        assert_eq!(idx.delta_len(), 1);
        let out = idx.query(&coll, "//a/c").unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, DocId(1));
        // The delta copy refines without touching primary storage, exactly
        // like a base heap record.
        let out2 = idx.query(&coll, "//a/b").unwrap();
        assert_eq!(out2.results.len(), 1);
        assert_eq!(out2.results[0].0, DocId(0));
    }

    #[test]
    fn compaction_is_byte_identical_to_a_fresh_build() {
        let docs = [
            "<bib><article><author/><ee/></article></bib>",
            "<bib><book><author><phone/></author></book></bib>",
            "<bib><article><author><email/></author><title>t</title></article></bib>",
        ];
        for clustered in [false, true] {
            let opts = if clustered {
                FixOptions::large_document(4).clustered()
            } else {
                FixOptions::large_document(4)
            };
            let mut all = Collection::new();
            for d in &docs {
                all.add_xml(d).unwrap();
            }
            let fresh = FixIndex::build(&mut all, opts.clone());

            let mut coll = Collection::new();
            coll.add_xml(docs[0]).unwrap();
            let mut inc = FixIndex::build(&mut coll, opts);
            for d in &docs[1..] {
                inc.insert_xml(&mut coll, d).unwrap();
            }
            let compacted = inc.compact();
            assert_eq!(compacted.delta_len(), 0);
            assert_eq!(compacted.compaction_stats().0, 1);
            let a: Vec<_> = compacted.entries().collect();
            let b: Vec<_> = fresh.entries().collect();
            assert_eq!(a, b, "clustered={clustered}: keys/values must match");
            assert_eq!(
                compacted.clustered_records(),
                fresh.clustered_records(),
                "clustered={clustered}: heap records must match"
            );
            let q = "//article[author]/ee";
            assert_eq!(
                compacted.query(&coll, q).unwrap(),
                fresh.query(&all, q).unwrap()
            );
        }
    }

    #[test]
    fn inserts_resume_after_compaction() {
        // Compaction drops the construction state; the next insert resumes
        // with a cold memo and must still assign rebuild-identical keys.
        let mut coll = Collection::new();
        coll.add_xml("<a><b/><c/></a>").unwrap();
        let mut idx = FixIndex::build(&mut coll, FixOptions::collection());
        idx.insert_xml(&mut coll, "<a><b/></a>").unwrap();
        let mut idx = idx.compact();
        idx.insert_xml(&mut coll, "<a><b/><c/></a>").unwrap();
        assert_eq!(idx.entry_count(), 3);
        assert_eq!(idx.delta_len(), 1);

        let mut all = Collection::new();
        for d in ["<a><b/><c/></a>", "<a><b/></a>", "<a><b/><c/></a>"] {
            all.add_xml(d).unwrap();
        }
        let fresh = FixIndex::build(&mut all, FixOptions::collection());
        let a: Vec<_> = idx.entries().collect();
        let b: Vec<_> = fresh.entries().collect();
        assert_eq!(a, b, "resumed insert diverged from a fresh build");
        // Stats levels never shrink across the resume.
        assert!(idx.stats().distinct_patterns >= fresh.stats().distinct_patterns);
    }

    #[test]
    fn inserts_share_memoized_patterns() {
        let mut coll = Collection::new();
        coll.add_xml("<a><b/><c/></a>").unwrap();
        let mut idx = FixIndex::build(&mut coll, FixOptions::collection());
        let before = idx.stats().distinct_patterns;
        idx.insert_xml(&mut coll, "<a><b/><c/></a>").unwrap();
        assert_eq!(
            idx.stats().distinct_patterns,
            before,
            "identical doc reuses pattern"
        );
        assert_eq!(idx.entry_count(), 2);
    }

    #[test]
    fn value_index_inserts_hash_new_values() {
        let mut coll = Collection::new();
        coll.add_xml("<d><p><pub>Springer</pub></p></d>").unwrap();
        let mut idx = FixIndex::build(&mut coll, FixOptions::large_document(3).with_values(32));
        idx.insert_xml(&mut coll, "<d><p><pub>Elsevier</pub></p></d>")
            .unwrap();
        let out = idx.query(&coll, r#"//p[pub="Elsevier"]"#).unwrap();
        assert_eq!(out.results.len(), 1);
    }
}

#[cfg(test)]
mod tombstone_tests {
    use super::*;

    fn coll3() -> Collection {
        let mut c = Collection::new();
        c.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        c.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        c.add_xml("<bib><book><author/></book></bib>").unwrap();
        c
    }

    #[test]
    fn removed_documents_disappear_from_results() {
        let mut c = coll3();
        let mut idx = FixIndex::build(&mut c, FixOptions::collection());
        assert_eq!(
            idx.query(&c, "//article[author]/ee").unwrap().results.len(),
            2
        );
        idx.remove_document(DocId(0));
        let out = idx.query(&c, "//article[author]/ee").unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, DocId(1));
        assert!(idx.is_removed(DocId(0)));
        assert_eq!(idx.removed_count(), 1);
    }

    #[test]
    fn clustered_indexes_filter_in_refinement() {
        let mut c = coll3();
        let mut idx = FixIndex::build(&mut c, FixOptions::collection().clustered());
        idx.remove_document(DocId(1));
        let out = idx.query(&c, "//article[author]/ee").unwrap();
        assert_eq!(out.results.len(), 1);
        assert_eq!(out.results[0].0, DocId(0));
    }

    #[test]
    fn vacuum_rebuilds_without_tombstones() {
        let mut c = coll3();
        let mut idx = FixIndex::build(&mut c, FixOptions::collection());
        idx.remove_document(DocId(0));
        let (fresh_coll, fresh_idx) = idx.vacuum(&c);
        assert_eq!(fresh_coll.len(), 2);
        assert_eq!(fresh_idx.entry_count(), 2);
        assert_eq!(fresh_idx.removed_count(), 0);
        // Same answers as the tombstoned original.
        let a = idx.query(&c, "//article[author]/ee").unwrap().results.len();
        let b = fresh_idx
            .query(&fresh_coll, "//article[author]/ee")
            .unwrap()
            .results
            .len();
        assert_eq!(a, b);
    }

    #[test]
    fn tombstones_survive_persistence() {
        let mut c = coll3();
        let mut idx = FixIndex::build(&mut c, FixOptions::collection());
        idx.remove_document(DocId(2));
        let dir = std::env::temp_dir().join(format!("fix-tomb-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.fixdb");
        crate::persist::save_impl(&path, &c, &idx).unwrap();
        let (lc, li) = crate::persist::load_impl(&path).unwrap();
        assert!(li.is_removed(DocId(2)));
        assert!(li.query(&lc, "//book/author").unwrap().results.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[cfg(test)]
mod disk_tests {
    use super::*;

    #[test]
    fn on_disk_build_answers_identically() {
        let dir = std::env::temp_dir().join(format!("fix-disk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pages = dir.join("index.pages");

        let mut c1 = Collection::new();
        let mut c2 = Collection::new();
        for xml in [
            "<bib><article><author/><ee/></article></bib>",
            "<bib><book><author><phone/></author></book></bib>",
            "<bib><article><author><email/></author><title>t</title></article></bib>",
        ] {
            c1.add_xml(xml).unwrap();
            c2.add_xml(xml).unwrap();
        }
        let mem = FixIndex::build(&mut c1, FixOptions::large_document(4));
        let disk = build_on_disk_impl(&mut c2, FixOptions::large_document(4), &pages).unwrap();
        assert!(pages.exists());
        assert!(std::fs::metadata(&pages).unwrap().len() > 0);
        for q in [
            "//article[author]/ee",
            "//author/phone",
            "//bib/article/title",
        ] {
            let a = mem.query(&c1, q).unwrap();
            let b = disk.query(&c2, q).unwrap();
            assert_eq!(a.results, b.results, "mem/disk disagree on {q}");
            assert_eq!(a.metrics, b.metrics);
        }
        // The disk pool really does physical reads under pressure.
        disk.reset_io_stats();
        let _ = disk.query(&c2, "//author").unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn on_disk_clustered_build() {
        let dir = std::env::temp_dir().join(format!("fix-diskc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let pages = dir.join("clustered.pages");
        let mut coll = Collection::new();
        coll.add_xml("<a><b><c/></b><b/></a>").unwrap();
        let idx = build_on_disk_impl(&mut coll, FixOptions::large_document(3).clustered(), &pages)
            .unwrap();
        let out = idx.query(&coll, "//b/c").unwrap();
        assert_eq!(out.results.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
