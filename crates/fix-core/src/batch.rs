//! Atomic mutation batches — the unit of WAL commit.
//!
//! A [`WriteBatch`] groups any number of document adds and removes into
//! one logical mutation. [`FixDatabase::write`](crate::FixDatabase::write)
//! validates the whole batch up front, appends it as **one** WAL record
//! (so crash recovery replays it all or drops it all — there is no
//! partially applied batch), then applies it in memory. `add_xml` and
//! `remove_document` are one-op batches under the hood.
//!
//! The WAL payload encoding is a private detail of this module:
//!
//! ```text
//! batch:  magic "FB" u8 version=1  op-count:u32le  ops…
//! op:     tag:u8 (0 = add, 1 = remove)
//!         add:    xml-len:u64le  utf-8 xml bytes
//!         remove: doc-id:u32le
//! ```
//!
//! The record framing (length + CRC32) lives in `fix_storage::wal`; this
//! encoding only needs to be self-describing enough for replay to reject
//! nonsense payloads with a structured error rather than misapply them.

use crate::collection::DocId;

/// One operation in a [`WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteOp {
    /// Parse and index an XML document; assigned the next document id.
    AddXml(String),
    /// Tombstone an existing document.
    Remove(DocId),
}

/// An atomic group of mutations, committed through one WAL record.
///
/// ```
/// use fix_core::WriteBatch;
/// let mut batch = WriteBatch::new();
/// batch.add_xml("<a><b/></a>").add_xml("<c/>");
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WriteBatch {
    ops: Vec<WriteOp>,
}

impl WriteBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a document add. The id it will receive depends on the adds
    /// queued before it; [`FixDatabase::write`](crate::FixDatabase::write)
    /// returns the assigned ids in batch order.
    pub fn add_xml(&mut self, xml: impl Into<String>) -> &mut Self {
        self.ops.push(WriteOp::AddXml(xml.into()));
        self
    }

    /// Queues a document remove. The id may refer to a document added
    /// earlier in the same batch.
    pub fn remove_document(&mut self, doc: DocId) -> &mut Self {
        self.ops.push(WriteOp::Remove(doc));
        self
    }

    /// Number of queued operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The queued operations in order.
    pub fn ops(&self) -> &[WriteOp] {
        &self.ops
    }

    /// Serializes the batch into a WAL record payload.
    pub(crate) fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + self.ops.len() * 16);
        out.extend_from_slice(b"FB\x01");
        out.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            match op {
                WriteOp::AddXml(xml) => {
                    out.push(0);
                    out.extend_from_slice(&(xml.len() as u64).to_le_bytes());
                    out.extend_from_slice(xml.as_bytes());
                }
                WriteOp::Remove(doc) => {
                    out.push(1);
                    out.extend_from_slice(&doc.0.to_le_bytes());
                }
            }
        }
        out
    }

    /// Parses a WAL record payload back into a batch. The payload already
    /// passed the record CRC, so errors here mean a format bug or version
    /// skew, not disk corruption — callers surface them as `Corrupt`.
    pub(crate) fn decode(payload: &[u8]) -> Result<Self, String> {
        let err = |what: &str, at: usize| format!("{what} at payload offset {at}");
        if payload.len() < 7 || &payload[..3] != b"FB\x01" {
            return Err(err("bad batch magic/version", 0));
        }
        let count = u32::from_le_bytes(payload[3..7].try_into().expect("4 bytes")) as usize;
        let mut ops = Vec::new();
        let mut pos = 7;
        for _ in 0..count {
            let tag = *payload.get(pos).ok_or_else(|| err("truncated op", pos))?;
            pos += 1;
            match tag {
                0 => {
                    let lenb = payload
                        .get(pos..pos + 8)
                        .ok_or_else(|| err("truncated add length", pos))?;
                    let len = u64::from_le_bytes(lenb.try_into().expect("8 bytes")) as usize;
                    pos += 8;
                    let xml = payload
                        .get(pos..pos + len)
                        .ok_or_else(|| err("truncated add payload", pos))?;
                    let xml = std::str::from_utf8(xml)
                        .map_err(|_| err("add payload is not UTF-8", pos))?;
                    ops.push(WriteOp::AddXml(xml.to_string()));
                    pos += len;
                }
                1 => {
                    let idb = payload
                        .get(pos..pos + 4)
                        .ok_or_else(|| err("truncated remove id", pos))?;
                    ops.push(WriteOp::Remove(DocId(u32::from_le_bytes(
                        idb.try_into().expect("4 bytes"),
                    ))));
                    pos += 4;
                }
                t => return Err(err(&format!("unknown op tag {t}"), pos - 1)),
            }
        }
        if pos != payload.len() {
            return Err(err("trailing bytes after last op", pos));
        }
        Ok(Self { ops })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip() {
        let mut b = WriteBatch::new();
        b.add_xml("<a><b>text</b></a>")
            .remove_document(DocId(7))
            .add_xml("<c/>");
        let payload = b.encode();
        let back = WriteBatch::decode(&payload).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.len(), 3);
        assert!(WriteBatch::new().is_empty());
    }

    #[test]
    fn decode_rejects_malformed_payloads() {
        assert!(WriteBatch::decode(b"").is_err());
        assert!(WriteBatch::decode(b"XX\x01\x00\x00\x00\x00").is_err());
        let mut b = WriteBatch::new();
        b.add_xml("<a/>");
        let mut payload = b.encode();
        payload.truncate(payload.len() - 1);
        assert!(WriteBatch::decode(&payload).is_err(), "truncated add");
        let mut trailing = b.encode();
        trailing.push(0);
        assert!(WriteBatch::decode(&trailing).is_err(), "trailing bytes");
        let mut bad_tag = b.encode();
        bad_tag[7] = 9;
        assert!(WriteBatch::decode(&bad_tag).is_err(), "unknown tag");
    }
}
