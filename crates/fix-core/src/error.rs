//! The unified error type for the [`FixDatabase`](crate::FixDatabase)
//! facade.
//!
//! The lower layers keep their precise error types (`fix_xml::ParseError`,
//! [`QueryError`], `std::io::Error`); this enum folds
//! them into one flat `Result` surface — query failures appear directly as
//! [`FixError::BadQuery`] / [`FixError::NotCovered`], not behind a nested
//! enum — so applications can use `?` and a single `match` end to end.

use std::fmt;

use crate::query::QueryError;

/// Anything that can go wrong talking to a FIX database.
#[derive(Debug)]
pub enum FixError {
    /// An XML document failed to parse.
    Parse(fix_xml::ParseError),
    /// A query string failed to parse.
    BadQuery(fix_xpath::XPathError),
    /// The index's depth limit does not cover the query's top twig block —
    /// the optimizer must fall back to an unindexed plan (Section 4.4).
    NotCovered {
        /// Depth of the query's top block.
        query_depth: usize,
        /// The index's depth limit.
        depth_limit: usize,
    },
    /// Underlying file I/O failed (open/save/load, on-disk pages).
    Io(std::io::Error),
    /// An on-disk database failed validation: a frame checksum mismatch,
    /// an implausible length, a truncated file, or undecodable section
    /// content (see `DESIGN.md` §12). `section` names the file section at
    /// fault; `detail` says what was wrong (with byte offsets where they
    /// help). Run `fixdb verify` for a full per-section report and
    /// `fixdb verify --salvage` to recover the intact sections.
    Corrupt {
        /// The on-disk section that failed validation (e.g. `"documents"`,
        /// `"btree"`, `"footer"`).
        section: String,
        /// What was wrong, with byte offsets where available.
        detail: String,
    },
    /// The operation needs an index, but none has been built or loaded.
    NoIndex,
    /// [`FixDatabase::save`](crate::FixDatabase::save) was called on a
    /// database never bound to a file (use
    /// [`FixDatabase::save_as`](crate::FixDatabase::save_as) first).
    NoPath,
    /// A mutating operation was attempted while
    /// [`QuerySession`](crate::QuerySession) snapshots are still alive.
    /// Drop the sessions and retry. (`vacuum` is exempt: it swaps in a
    /// fresh snapshot and leaves live sessions on the old one.)
    SnapshotInUse,
    /// A [`WriteBatch`](crate::WriteBatch) named a document id the
    /// collection does not hold (never assigned, or out of range). The
    /// whole batch is rejected before anything is logged or applied.
    NoSuchDocument {
        /// The offending document id.
        doc: u32,
    },
    /// The database is serving reads only: a write-side failure (disk
    /// full on a WAL append or checkpoint) flipped it into a degraded
    /// state where mutations fail fast instead of retrying a write that
    /// cannot fit. Queries are unaffected. Free space and call
    /// [`FixDatabase::try_resume`](crate::FixDatabase::try_resume) to
    /// re-enable writes.
    ReadOnly {
        /// What pushed the database read-only (e.g. the original
        /// `ENOSPC` failure, with the operation that hit it).
        cause: String,
    },
    /// A query ran past its deadline
    /// ([`FixOptions::query_timeout`](crate::FixOptions) or the per-call
    /// deadline of
    /// [`QuerySession::query_with_deadline`](crate::QuerySession::query_with_deadline))
    /// and was cooperatively cancelled at a scan or refinement chunk
    /// boundary.
    DeadlineExceeded {
        /// How long the query ran before cancellation was observed.
        elapsed: std::time::Duration,
    },
}

impl FixError {
    /// Maps a page-level storage failure into the facade vocabulary,
    /// naming the index section whose read hit it. I/O failures stay
    /// [`FixError::Io`]; checksum and range failures become
    /// [`FixError::Corrupt`] carrying the page id in the detail.
    pub(crate) fn from_storage(section: &str, e: fix_storage::StorageError) -> FixError {
        use fix_storage::StorageError as SE;
        match e {
            SE::Io(e) => FixError::Io(e),
            SE::Corrupt { page, detail } => FixError::Corrupt {
                section: section.to_string(),
                detail: format!("page {}: {detail}", page.0),
            },
            SE::OutOfRange { page, pages } => FixError::Corrupt {
                section: section.to_string(),
                detail: format!("page {} out of range (backend has {pages})", page.0),
            },
        }
    }
}

impl fmt::Display for FixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixError::Parse(e) => write!(f, "XML parse error: {e}"),
            FixError::BadQuery(e) => write!(f, "query error: {e}"),
            FixError::NotCovered {
                query_depth,
                depth_limit,
            } => write!(
                f,
                "query error: query depth {query_depth} exceeds the index depth limit {depth_limit}"
            ),
            FixError::Io(e) => write!(f, "I/O error: {e}"),
            FixError::Corrupt { section, detail } => {
                write!(f, "corrupt database ({section} section): {detail}")
            }
            FixError::NoIndex => write!(f, "no index: call build() or open an existing database"),
            FixError::NoPath => {
                write!(f, "database has no bound path: use save_as() or open()")
            }
            FixError::SnapshotInUse => write!(
                f,
                "query sessions still hold a snapshot; drop them before mutating"
            ),
            FixError::NoSuchDocument { doc } => {
                write!(f, "no such document: id {doc} is not in the collection")
            }
            FixError::ReadOnly { cause } => {
                write!(
                    f,
                    "database is read-only ({cause}); free space and call try_resume()"
                )
            }
            FixError::DeadlineExceeded { elapsed } => {
                write!(f, "query deadline exceeded after {elapsed:?}")
            }
        }
    }
}

impl std::error::Error for FixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FixError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fix_xml::ParseError> for FixError {
    fn from(e: fix_xml::ParseError) -> Self {
        FixError::Parse(e)
    }
}

impl From<fix_xpath::XPathError> for FixError {
    fn from(e: fix_xpath::XPathError) -> Self {
        FixError::BadQuery(e)
    }
}

impl From<QueryError> for FixError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Parse(e) => FixError::BadQuery(e),
            QueryError::NotCovered {
                query_depth,
                depth_limit,
            } => FixError::NotCovered {
                query_depth,
                depth_limit,
            },
        }
    }
}

impl From<std::io::Error> for FixError {
    fn from(e: std::io::Error) -> Self {
        FixError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let io = FixError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        assert!(std::error::Error::source(&io).is_some());
        let corrupt = FixError::Corrupt {
            section: "btree".into(),
            detail: "checksum mismatch at offset 0x40".into(),
        };
        assert!(corrupt.to_string().contains("btree"));
        assert!(corrupt.to_string().contains("0x40"));
        assert!(std::error::Error::source(&corrupt).is_none());
        assert!(FixError::NoIndex.to_string().contains("build()"));
        assert!(std::error::Error::source(&FixError::NoIndex).is_none());
        assert!(FixError::NoPath.to_string().contains("save_as"));
        assert!(FixError::SnapshotInUse.to_string().contains("snapshot"));
        let missing = FixError::NoSuchDocument { doc: 41 };
        assert!(missing.to_string().contains("41"));
        assert!(std::error::Error::source(&missing).is_none());
        let ro = FixError::ReadOnly {
            cause: "WAL append hit ENOSPC".into(),
        };
        assert!(ro.to_string().contains("read-only"));
        assert!(ro.to_string().contains("ENOSPC"));
        assert!(ro.to_string().contains("try_resume"));
        let dl = FixError::DeadlineExceeded {
            elapsed: std::time::Duration::from_millis(250),
        };
        assert!(dl.to_string().contains("deadline exceeded"));
    }

    #[test]
    fn query_errors_flatten() {
        let q = FixError::from(QueryError::NotCovered {
            query_depth: 9,
            depth_limit: 4,
        });
        assert!(matches!(
            q,
            FixError::NotCovered {
                query_depth: 9,
                depth_limit: 4
            }
        ));
        assert!(q.to_string().contains("depth 9"));
        let bad = fix_xpath::parse_path("not a path").unwrap_err();
        assert!(matches!(FixError::from(bad), FixError::BadQuery(_)));
        let bad = fix_xpath::parse_path("not a path").unwrap_err();
        assert!(matches!(
            FixError::from(QueryError::Parse(bad)),
            FixError::BadQuery(_)
        ));
    }
}
