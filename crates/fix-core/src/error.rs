//! The unified error type for the [`FixDatabase`](crate::FixDatabase)
//! facade.
//!
//! The lower layers keep their precise error types (`fix_xml::ParseError`,
//! [`QueryError`](crate::QueryError), `std::io::Error`); this enum folds
//! them into one `Result` surface so applications can use `?` end to end.

use std::fmt;

use crate::query::QueryError;

/// Anything that can go wrong talking to a FIX database.
#[derive(Debug)]
pub enum FixError {
    /// An XML document failed to parse.
    Parse(fix_xml::ParseError),
    /// A query failed to parse or is not covered by the index.
    Query(QueryError),
    /// Underlying file I/O failed (open/save/load, on-disk pages).
    Io(std::io::Error),
    /// The operation needs an index, but none has been built or loaded.
    NoIndex,
    /// The index cannot absorb updates (clustered indexes store their
    /// copies in key order; indexes loaded from disk drop construction
    /// state). Rebuild with [`FixDatabase::build`](crate::FixDatabase::build).
    ImmutableIndex,
}

impl fmt::Display for FixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixError::Parse(e) => write!(f, "XML parse error: {e}"),
            FixError::Query(e) => write!(f, "query error: {e}"),
            FixError::Io(e) => write!(f, "I/O error: {e}"),
            FixError::NoIndex => write!(f, "no index: call build() or open an existing database"),
            FixError::ImmutableIndex => {
                write!(f, "this index cannot absorb updates; rebuild to modify")
            }
        }
    }
}

impl std::error::Error for FixError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FixError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<fix_xml::ParseError> for FixError {
    fn from(e: fix_xml::ParseError) -> Self {
        FixError::Parse(e)
    }
}

impl From<QueryError> for FixError {
    fn from(e: QueryError) -> Self {
        FixError::Query(e)
    }
}

impl From<std::io::Error> for FixError {
    fn from(e: std::io::Error) -> Self {
        FixError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let io = FixError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(io.to_string().contains("gone"));
        assert!(std::error::Error::source(&io).is_some());
        assert!(FixError::NoIndex.to_string().contains("build()"));
        assert!(std::error::Error::source(&FixError::NoIndex).is_none());
        let q = FixError::from(QueryError::NotCovered {
            query_depth: 9,
            depth_limit: 4,
        });
        assert!(q.to_string().contains("query error"));
    }
}
