//! A bounded LRU cache of compiled [`QueryPlan`]s.
//!
//! Steps 1–3 of Algorithm 2 — parse, twig decomposition, and the
//! `(λ_max, λ_min)` eigen-features — depend only on the query string and
//! the index configuration, so for repeated queries they are pure
//! recomputation. [`PlanCache`] memoizes them under the *normalized* query
//! spelling (`PathExpr`'s `Display`), with the raw spelling aliased to the
//! same entry so an exact repeat also skips the parse.
//!
//! The cache is a plain mutex around a tick-stamped hash map: lookups and
//! inserts are O(1); eviction scans for the stalest entry, which is O(n)
//! in the (small, bounded) capacity and only paid when the cache is full.
//! Hit/miss tallies live in atomics *outside* the mutex, and the mutex is
//! never held while compiling a plan — concurrent sessions may compile the
//! same plan twice on a cold start, which costs a few spare eigenvalue
//! solves but never blocks a reader behind a solver.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::metrics::CacheStats;
use crate::query::QueryPlan;

/// Plan-cache capacity used by sessions unless overridden: comfortably
/// more distinct queries than a realistic hot set, at ~a few hundred bytes
/// per plan.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// A bounded, thread-safe LRU map from query spellings to compiled plans.
pub struct PlanCache {
    capacity: usize,
    inner: Mutex<CacheMap>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

struct CacheMap {
    /// Monotonic use counter; entries stamp it on every touch.
    tick: u64,
    entries: HashMap<String, CacheEntry>,
}

struct CacheEntry {
    plan: Arc<QueryPlan>,
    last_used: u64,
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans. A capacity of `0`
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(CacheMap {
                tick: 0,
                entries: HashMap::new(),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a plan by spelling, refreshing its LRU stamp. Does *not*
    /// tally a hit or miss — callers tally exactly once per query via
    /// [`PlanCache::note_hit`] / [`PlanCache::note_miss`], which keeps the
    /// two-probe lookup (raw spelling, then normalized) honest.
    pub fn get(&self, key: &str) -> Option<Arc<QueryPlan>> {
        let mut map = self.inner.lock();
        map.tick += 1;
        let tick = map.tick;
        let entry = map.entries.get_mut(key)?;
        entry.last_used = tick;
        Some(entry.plan.clone())
    }

    /// Inserts (or refreshes) a plan under `key`, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn insert(&self, key: String, plan: Arc<QueryPlan>) {
        if self.capacity == 0 {
            return;
        }
        let mut map = self.inner.lock();
        map.tick += 1;
        let tick = map.tick;
        if !map.entries.contains_key(&key) && map.entries.len() >= self.capacity {
            if let Some(stalest) = map
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                map.entries.remove(&stalest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        map.entries.insert(
            key,
            CacheEntry {
                plan,
                last_used: tick,
            },
        );
    }

    /// Tallies one cache hit.
    pub fn note_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Tallies one cache miss.
    pub fn note_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.inner.lock().entries.len(),
            capacity: self.capacity,
        }
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.inner.lock().entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every cached plan (counters are preserved).
    pub fn clear(&self) {
        self.inner.lock().entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fix_xpath::parse_path;

    fn plan_for(q: &str) -> Arc<QueryPlan> {
        Arc::new(QueryPlan {
            path: parse_path(q).unwrap(),
            blocks: vec![parse_path(q).unwrap()],
            top: None,
            rest: Vec::new(),
        })
    }

    #[test]
    fn cache_is_shareable() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlanCache>();
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = PlanCache::new(2);
        cache.insert("//a".into(), plan_for("//a"));
        cache.insert("//b".into(), plan_for("//b"));
        // Touch `//a` so `//b` becomes the eviction victim.
        assert!(cache.get("//a").is_some());
        cache.insert("//c".into(), plan_for("//c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("//a").is_some());
        assert!(cache.get("//b").is_none());
        assert!(cache.get("//c").is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn reinserting_an_existing_key_does_not_evict() {
        let cache = PlanCache::new(2);
        cache.insert("//a".into(), plan_for("//a"));
        cache.insert("//b".into(), plan_for("//b"));
        cache.insert("//a".into(), plan_for("//a"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("//b").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = PlanCache::new(0);
        cache.insert("//a".into(), plan_for("//a"));
        assert!(cache.is_empty());
        assert!(cache.get("//a").is_none());
    }

    #[test]
    fn stats_reflect_tallies() {
        let cache = PlanCache::new(4);
        cache.note_miss();
        cache.insert("//a".into(), plan_for("//a"));
        cache.note_hit();
        cache.note_hit();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.capacity), (2, 1, 1, 4));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().hits, 2, "counters survive clear");
    }
}
