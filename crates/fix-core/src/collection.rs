//! The document collection (primary storage).
//!
//! Documents live in in-memory arenas sharing one [`LabelTable`]; the
//! index stores `(document, node)` pointers into them. (The paper's
//! primary storage is the NoK succinct physical layout; an arena in
//! document order is its in-memory equivalent — see DESIGN.md §3.)

use std::sync::{Mutex, OnceLock};

use fix_storage::{HeapFile, IoStats, PageId, PageSpace, RecordId, PAGE_SIZE};
use fix_xml::{DocStats, Document, LabelTable, NodeId, ParseError};

use crate::error::FixError;

/// Index of a document within a [`Collection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DocId(pub u32);

/// Bytes charged per stored node in the paged-storage model (the NoK
/// succinct storage the paper uses needs ~a dozen bytes per element for
/// tags and navigation).
const REC_BYTES: u64 = 16;

/// Simulated paged primary storage: maps each document's preorder node
/// range onto buffer-pool pages so evaluators can *touch* exactly the
/// byte ranges they would read from disk. The buffer pool's [`IoStats`]
/// then reflect the access pattern (sequential full scans for the
/// navigational baseline, point reads for index refinement) — the quantity
/// the paper's clustered/unclustered discussion is really about.
struct PagedStorage {
    pool: PageSpace,
    /// First page of each document.
    base: Vec<u64>,
}

/// Documents demand-read from a paged database file. Ids `0..rids.len()`
/// resolve here; eagerly added documents follow in `Collection::docs`.
///
/// Each slot parses at most once (`OnceLock`). Parsing re-interns element
/// names into a frozen snapshot of the label table taken at attach time:
/// every label of an on-disk document was interned when the file was
/// built, so lookups hit existing entries and the snapshot never grows —
/// which is what makes it safe to keep separate from `Collection::labels`
/// (new labels interned by post-open inserts get ids past the snapshot).
struct LazyDocs {
    heap: HeapFile,
    rids: Vec<RecordId>,
    cells: Vec<OnceLock<Document>>,
    labels: Mutex<LabelTable>,
}

impl LazyDocs {
    fn force(&self, i: usize) -> &Document {
        self.try_force(i).unwrap_or_else(|e| {
            panic!("invariant: paged document {i} must be readable on this path: {e}")
        })
    }

    /// [`LazyDocs::force`] with structured failure: heap-page I/O errors,
    /// CRC mismatches and undecodable records surface as [`FixError`]
    /// (section `"documents"`) instead of a panic. If two threads race
    /// here, both parse and the first `get_or_init` wins — the content is
    /// identical either way.
    fn try_force(&self, i: usize) -> Result<&Document, FixError> {
        if let Some(d) = self.cells[i].get() {
            return Ok(d);
        }
        let corrupt = |detail: String| FixError::Corrupt {
            section: "documents".to_string(),
            detail,
        };
        let bytes = self
            .heap
            .try_get(self.rids[i])
            .map_err(|e| FixError::from_storage("documents", e))?;
        let xml = String::from_utf8(bytes)
            .map_err(|_| corrupt(format!("record for document {i} is not UTF-8")))?;
        let doc = {
            let mut labels = self.labels.lock().expect("label snapshot poisoned");
            let before = labels.len();
            let doc = fix_xml::parse_document_limited(&xml, &mut labels, usize::MAX)
                .map_err(|e| corrupt(format!("document {i} failed to re-parse: {e}")))?;
            debug_assert_eq!(
                labels.len(),
                before,
                "lazy parse interned a label missing from the saved table"
            );
            doc
        };
        Ok(self.cells[i].get_or_init(|| doc))
    }
}

/// A collection of documents with a shared label table.
#[derive(Default)]
pub struct Collection {
    /// Shared label interner (element names + hashed value labels).
    pub labels: LabelTable,
    docs: Vec<Document>,
    lazy: Option<LazyDocs>,
    storage: Option<PagedStorage>,
}

impl Collection {
    /// An empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and adds an XML document; returns its id. Nesting deeper
    /// than [`fix_xml::DEFAULT_MAX_DEPTH`] is rejected; use
    /// [`Collection::add_xml_limited`] to choose the limit.
    pub fn add_xml(&mut self, xml: &str) -> Result<DocId, ParseError> {
        self.add_xml_limited(xml, fix_xml::DEFAULT_MAX_DEPTH)
    }

    /// [`Collection::add_xml`] with an explicit nesting-depth limit
    /// (`usize::MAX` disables the check).
    pub fn add_xml_limited(&mut self, xml: &str, max_depth: usize) -> Result<DocId, ParseError> {
        let doc = fix_xml::parse_document_limited(xml, &mut self.labels, max_depth)?;
        Ok(self.add_document(doc))
    }

    /// Adds an already-built document (its labels must come from
    /// [`Collection::labels`]).
    pub fn add_document(&mut self, doc: Document) -> DocId {
        let id =
            DocId(u32::try_from(self.lazy_len() + self.docs.len()).expect("collection overflow"));
        self.docs.push(doc);
        id
    }

    /// Attaches demand-read documents backed by `heap` (one record of XML
    /// per entry of `rids`). Used when opening a paged database: document
    /// ids `0..rids.len()` parse lazily on first access instead of at
    /// open. The collection must not already hold documents.
    pub fn attach_lazy_docs(&mut self, heap: HeapFile, rids: Vec<RecordId>) {
        assert!(
            self.docs.is_empty() && self.lazy.is_none(),
            "lazy docs must be attached to an empty collection"
        );
        let cells = rids.iter().map(|_| OnceLock::new()).collect();
        self.lazy = Some(LazyDocs {
            heap,
            rids,
            cells,
            labels: Mutex::new(self.labels.clone()),
        });
    }

    /// Number of demand-read documents (paged open), 0 otherwise.
    fn lazy_len(&self) -> usize {
        self.lazy.as_ref().map_or(0, |l| l.rids.len())
    }

    /// The document with id `id`.
    pub fn doc(&self, id: DocId) -> &Document {
        let i = id.0 as usize;
        match &self.lazy {
            Some(l) if i < l.rids.len() => l.force(i),
            _ => &self.docs[i - self.lazy_len()],
        }
    }

    /// [`Collection::doc`] with structured failure: a demand-read document
    /// whose heap pages fail I/O or checksum verification surfaces as
    /// [`FixError::Corrupt`] / [`FixError::Io`] instead of a panic. The
    /// fallible query pipeline reads documents through this.
    pub fn try_doc(&self, id: DocId) -> Result<&Document, FixError> {
        let i = id.0 as usize;
        match &self.lazy {
            Some(l) if i < l.rids.len() => l.try_force(i),
            _ => Ok(&self.docs[i - self.lazy_len()]),
        }
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.lazy_len() + self.docs.len()
    }

    /// True if the collection has no documents.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates `(id, document)` pairs (forcing lazy documents).
    pub fn iter(&self) -> impl Iterator<Item = (DocId, &Document)> {
        (0..self.len()).map(|i| {
            let id = DocId(i as u32);
            (id, self.doc(id))
        })
    }

    /// Enables the paged-storage simulation over the current documents
    /// with a buffer pool of `pool_pages` frames. Call after loading all
    /// documents; evaluation paths then charge page reads for the data
    /// they touch.
    pub fn enable_paged_storage(&mut self, pool_pages: usize) {
        let pool = PageSpace::in_memory(pool_pages);
        let mut base = Vec::with_capacity(self.len());
        for (_, d) in self.iter() {
            let pages = ((d.len() as u64 * REC_BYTES).div_ceil(PAGE_SIZE as u64)).max(1);
            let first = pool.allocate();
            for _ in 1..pages {
                pool.allocate();
            }
            base.push(first.0);
        }
        pool.reset_stats();
        self.storage = Some(PagedStorage { pool, base });
    }

    /// True if the paged-storage simulation is active.
    pub fn has_paged_storage(&self) -> bool {
        self.storage.is_some()
    }

    /// Touches (reads through the buffer pool) the pages holding the
    /// subtree of `node` — what a refinement operator reads when it
    /// follows an index pointer into primary storage. No-op without paged
    /// storage.
    pub fn touch_subtree(&self, doc: DocId, node: NodeId) {
        let Some(s) = &self.storage else { return };
        let d = self.doc(doc);
        let start = node.0 as u64 * REC_BYTES / PAGE_SIZE as u64;
        let end = (d.subtree_end(node).0 as u64 * REC_BYTES).div_ceil(PAGE_SIZE as u64);
        let base = s.base[doc.0 as usize];
        for p in start..end.max(start + 1) {
            s.pool.with_page(PageId(base + p), |b| b[0]);
        }
    }

    /// Touches every page of a document — the full streaming scan the
    /// unindexed navigational baseline performs. No-op without paged
    /// storage.
    pub fn touch_document(&self, doc: DocId) {
        self.touch_subtree(doc, self.doc(doc).root());
    }

    /// I/O counters of the paged storage (zeroed if disabled).
    pub fn io_stats(&self) -> IoStats {
        self.storage
            .as_ref()
            .map(|s| s.pool.stats())
            .unwrap_or_default()
    }

    /// Resets the paged-storage I/O counters.
    pub fn reset_io_stats(&self) {
        if let Some(s) = &self.storage {
            s.pool.reset_stats();
        }
    }

    /// Splits the collection into its label table and document slice —
    /// index construction needs to intern value labels while streaming
    /// documents. Materializes any demand-read documents first (a rebuild
    /// walks every document anyway).
    pub fn split_mut(&mut self) -> (&mut LabelTable, &[Document]) {
        self.materialize();
        (&mut self.labels, &self.docs)
    }

    /// Forces every lazy document into the eager arena, detaching the
    /// backing heap. Afterwards the collection is fully in-memory.
    fn materialize(&mut self) {
        let Some(lazy) = self.lazy.take() else { return };
        let LazyDocs {
            heap,
            rids,
            cells,
            labels: _,
        } = lazy;
        let mut all: Vec<Document> = Vec::with_capacity(rids.len() + self.docs.len());
        for (i, cell) in cells.into_iter().enumerate() {
            let doc = match cell.into_inner() {
                Some(d) => d,
                None => {
                    let bytes = heap.get(rids[i]);
                    let xml = String::from_utf8(bytes).expect("paged document is not UTF-8");
                    // Intern against the live table: it is a superset of
                    // the attach-time snapshot, so existing ids match.
                    fix_xml::parse_document_limited(&xml, &mut self.labels, usize::MAX)
                        .expect("paged document failed to re-parse")
                }
            };
            all.push(doc);
        }
        all.append(&mut self.docs);
        self.docs = all;
    }

    /// Aggregate statistics over all documents (the Table 1 data columns).
    pub fn stats(&self) -> DocStats {
        let mut s = DocStats::default();
        for (_, d) in self.iter() {
            s.merge(&DocStats::of(d, &self.labels));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_query_docs() {
        let mut c = Collection::new();
        let a = c.add_xml("<a><b/></a>").unwrap();
        let b = c.add_xml("<a><c/></a>").unwrap();
        assert_eq!(c.len(), 2);
        assert_ne!(a, b);
        assert_eq!(c.doc(a).len(), 2);
        // Labels are shared: "a" interned once.
        assert_eq!(c.labels.len(), 3);
    }

    #[test]
    fn stats_aggregate() {
        let mut c = Collection::new();
        c.add_xml("<a><b>t</b></a>").unwrap();
        c.add_xml("<a><b/><c/></a>").unwrap();
        let s = c.stats();
        assert_eq!(s.elements, 5);
        assert_eq!(s.texts, 1);
        assert_eq!(s.max_depth, 2);
    }

    #[test]
    fn paged_storage_accounts_io() {
        let mut c = Collection::new();
        // Make a document large enough to span several pages
        // (16 bytes/node → 512 nodes per 8 KiB page).
        let mut xml = String::from("<r>");
        for _ in 0..2000 {
            xml.push_str("<x/>");
        }
        xml.push_str("</r>");
        let id = c.add_xml(&xml).unwrap();
        assert_eq!(c.io_stats(), Default::default());
        c.enable_paged_storage(64);
        assert!(c.has_paged_storage());
        c.touch_document(id);
        let s = c.io_stats();
        assert_eq!(s.misses, 4, "2001 nodes × 16 B = 4 pages, {s:?}");
        // A small subtree read touches a single page.
        c.reset_io_stats();
        c.touch_subtree(id, fix_xml::NodeId(5));
        let s = c.io_stats();
        assert_eq!(s.hits + s.misses, 1, "{s:?}");
    }

    #[test]
    fn parse_errors_propagate() {
        let mut c = Collection::new();
        assert!(c.add_xml("<a>").is_err());
        assert!(c.is_empty());
    }
}
