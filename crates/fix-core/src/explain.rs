//! Query EXPLAIN: what the index planner would do for a query, without
//! running it — the decomposition, per-block pruning features, guard
//! decisions, and the partition scan bounds.

use std::fmt;

use fix_obs::QueryTrace;
use fix_spectral::Features;
use fix_xpath::{decompose, normalize, parse_path, Axis, PathExpr};

use crate::builder::FixIndex;
use crate::collection::Collection;
use crate::metrics::Metrics;
use crate::query::QueryError;

/// How one twig block prunes.
#[derive(Debug, Clone)]
pub struct BlockExplain {
    /// The block's path expression (printable form).
    pub block: String,
    /// Pruning features, or `None` when the block proves the query empty
    /// (unknown label / edge / value bucket).
    pub features: Option<Features>,
    /// Whether the non-injective guard weakened the block's range (the
    /// Theorem-2 duplicate-label case).
    pub guard_weakened: bool,
    /// Whether this block anchors at entry roots (root-label pruning).
    pub anchored: bool,
}

/// The full explanation of a query against one index.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The normalized expression actually processed.
    pub normalized: String,
    /// Twig blocks after Section-5 decomposition; the first is the top
    /// block.
    pub blocks: Vec<BlockExplain>,
    /// `Some(depth)` when the index's depth limit does not cover the top
    /// block.
    pub not_covered: Option<(usize, usize)>,
    /// Total index entries (`ent`): base tree plus delta run.
    pub entries: u64,
    /// Entries currently in the delta run (0 with no post-build inserts —
    /// scans then touch only the base tree).
    pub delta_entries: u64,
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "normalized: {}", self.normalized)?;
        if let Some((qd, dl)) = self.not_covered {
            writeln!(
                f,
                "NOT COVERED: query depth {qd} > index depth limit {dl} (full-scan fallback)"
            )?;
            return Ok(());
        }
        for (i, b) in self.blocks.iter().enumerate() {
            let role = if i == 0 { "top" } else { "extra" };
            write!(f, "block[{role}] {} ", b.block)?;
            match &b.features {
                None => writeln!(f, "=> provably empty (unknown label/edge/value)")?,
                Some(feat) => {
                    writeln!(
                        f,
                        "=> λ_max {:.4}{}{}{}",
                        feat.lmax,
                        if b.anchored {
                            format!(", partition root {}", feat.root)
                        } else {
                            ", unanchored (range-only scan)".to_string()
                        },
                        if b.guard_weakened {
                            ", duplicate-label guard active"
                        } else {
                            ""
                        },
                        if feat.lmax.is_infinite() {
                            ", UNBOUNDED"
                        } else {
                            ""
                        },
                    )?;
                }
            }
        }
        if self.delta_entries > 0 {
            writeln!(
                f,
                "index entries: {} (base {} + delta {}, merged scan)",
                self.entries,
                self.entries - self.delta_entries,
                self.delta_entries
            )
        } else {
            writeln!(f, "index entries: {}", self.entries)
        }
    }
}

/// EXPLAIN ANALYZE: the static [`Explain`] plus one *actual* traced
/// execution — per-stage wall times and the Section 6.2 effectiveness
/// metrics computed from the real candidate/result counts, not estimates.
#[derive(Debug, Clone)]
pub struct ExplainAnalyze {
    /// The static planner view.
    pub explain: Explain,
    /// The executed pipeline, stage by stage.
    pub trace: QueryTrace,
    /// Real `ent`/`cdt`/`rst` counters from the run.
    pub metrics: Metrics,
    /// Number of final result rows.
    pub results: usize,
}

impl fmt::Display for ExplainAnalyze {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.explain, self.trace)?;
        if self.metrics.delta_candidates > 0 {
            writeln!(
                f,
                "candidates {} ({} from delta)  producing {}  results {}",
                self.metrics.candidates,
                self.metrics.delta_candidates,
                self.metrics.producing,
                self.results
            )?;
        } else {
            writeln!(
                f,
                "candidates {}  producing {}  results {}",
                self.metrics.candidates, self.metrics.producing, self.results
            )?;
        }
        writeln!(
            f,
            "sel {:.4}  pp {:.4}  fpr {:.4}",
            self.metrics.sel(),
            self.metrics.pp(),
            self.metrics.fpr()
        )
    }
}

impl FixIndex {
    /// Explains how a query would be processed, without refinement.
    pub fn explain(&self, coll: &Collection, path: &PathExpr) -> Result<Explain, QueryError> {
        let normalized = normalize(path);
        let blocks = decompose(&normalized);
        let mut out = Explain {
            normalized: normalized.to_string(),
            blocks: Vec::new(),
            not_covered: None,
            entries: self.entry_count(),
            delta_entries: self.delta_len(),
        };
        for (i, block) in blocks.iter().enumerate() {
            let anchored =
                i == 0 && (self.options().depth_limit > 0 || block.steps[0].axis == Axis::Child);
            match self.block_features(coll, block) {
                Ok(features) => {
                    // The guard zeroes σ₂ and pins λ_min = −λ_max at a
                    // max-edge-weight range; detect it by comparing against
                    // a fresh unguarded extraction — cheaper: re-derive the
                    // duplicate-label test.
                    let guard_weakened = features
                        .as_ref()
                        .map(|_| Self::block_has_duplicate_labels(coll, block))
                        .unwrap_or(false);
                    out.blocks.push(BlockExplain {
                        block: block.to_string(),
                        features,
                        guard_weakened,
                        anchored,
                    });
                }
                Err(QueryError::NotCovered {
                    query_depth,
                    depth_limit,
                }) => {
                    out.not_covered = Some((query_depth, depth_limit));
                    return Ok(out);
                }
                Err(e) => return Err(e),
            }
        }
        Ok(out)
    }

    /// EXPLAIN ANALYZE: the static explanation, plus the query actually
    /// run (traced, refinement across `threads` workers) with the real
    /// per-stage wall times and §6.2 selectivity/pruning-power/FPR
    /// numbers. Not-covered queries propagate
    /// [`QueryError::NotCovered`] — there is nothing to analyze when the
    /// index cannot run the query.
    pub fn explain_analyze(
        &self,
        coll: &Collection,
        query: &str,
        threads: usize,
    ) -> Result<ExplainAnalyze, QueryError> {
        let path = parse_path(query)?;
        let explain = self.explain(coll, &path)?;
        let (outcome, trace) = self.query_traced(coll, query, threads)?;
        Ok(ExplainAnalyze {
            explain,
            trace,
            metrics: outcome.metrics,
            results: outcome.results.len(),
        })
    }

    fn block_has_duplicate_labels(coll: &Collection, block: &PathExpr) -> bool {
        use std::collections::HashSet;
        let Ok(twig) = fix_xpath::TwigQuery::from_path(block, &coll.labels) else {
            return false;
        };
        let mut seen = HashSet::new();
        twig.nodes.iter().any(|n| !seen.insert(n.label))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::FixOptions;
    use fix_xpath::parse_path;

    fn setup() -> (Collection, FixIndex) {
        let mut coll = Collection::new();
        coll.add_xml("<s><s><np><pp/></np><vp/></s><np/></s>")
            .unwrap();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(4));
        (coll, idx)
    }

    #[test]
    fn explains_blocks_and_guards() {
        let (coll, idx) = setup();
        let e = idx
            .explain(&coll, &parse_path("//np//pp").unwrap())
            .unwrap();
        assert_eq!(e.blocks.len(), 2, "{e}");
        assert!(e.blocks[0].anchored);
        // Duplicate-label query triggers the guard flag.
        let e = idx
            .explain(&coll, &parse_path("//s[np]/s/np").unwrap())
            .unwrap();
        assert!(e.blocks[0].guard_weakened, "{e}");
        // Unknown label => provably empty block.
        let e = idx.explain(&coll, &parse_path("//zzz").unwrap()).unwrap();
        assert!(e.blocks[0].features.is_none());
        // Display renders without panicking.
        assert!(format!("{e}").contains("provably empty"));
    }

    #[test]
    fn explains_cover_failures() {
        let (coll, idx) = setup();
        let e = idx
            .explain(&coll, &parse_path("//s/s/np/pp/s/np").unwrap())
            .unwrap();
        assert_eq!(e.not_covered, Some((6, 4)));
        assert!(format!("{e}").contains("NOT COVERED"));
    }

    #[test]
    fn explain_analyze_runs_the_query_for_real() {
        use fix_obs::Stage;
        let (coll, idx) = setup();
        let ea = idx.explain_analyze(&coll, "//np//pp", 2).unwrap();
        // The trace and metrics come from an actual execution and agree
        // with the plain query path.
        let out = idx.query(&coll, "//np//pp").unwrap();
        assert_eq!(ea.metrics, out.metrics);
        assert_eq!(ea.results, out.results.len());
        assert_eq!(
            ea.trace.stage(Stage::Scan).unwrap().items,
            Some(out.metrics.candidates)
        );
        let text = format!("{ea}");
        assert!(text.contains("normalized:"), "{text}");
        assert!(text.contains("scan"), "{text}");
        assert!(text.contains("sel "), "{text}");
        // Not-covered queries have nothing to analyze.
        assert!(matches!(
            idx.explain_analyze(&coll, "//s/s/np/pp/s/np", 1),
            Err(QueryError::NotCovered { .. })
        ));
    }

    #[test]
    fn delta_entries_and_candidates_are_surfaced() {
        let mut coll = Collection::new();
        coll.add_xml("<a><b/></a>").unwrap();
        let mut idx = FixIndex::build(&mut coll, FixOptions::collection().with_compact_ratio(0.0));
        idx.insert_xml(&mut coll, "<a><b/></a>").unwrap();
        let e = idx.explain(&coll, &parse_path("//a/b").unwrap()).unwrap();
        assert_eq!(e.delta_entries, 1);
        assert!(format!("{e}").contains("delta 1"), "{e}");
        let ea = idx.explain_analyze(&coll, "//a/b", 1).unwrap();
        assert_eq!(ea.metrics.delta_candidates, 1);
        assert!(format!("{ea}").contains("(1 from delta)"), "{ea}");
    }

    #[test]
    fn normalization_is_visible() {
        let (coll, idx) = setup();
        let e = idx
            .explain(&coll, &parse_path("//s[np][np]/vp").unwrap())
            .unwrap();
        assert_eq!(e.normalized, "//s[np]/vp");
    }
}
