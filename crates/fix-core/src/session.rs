//! [`QuerySession`] — a concurrent, snapshot-isolated query handle.
//!
//! A session pins the collection and index behind [`Arc`]s at creation
//! time: clone it freely and hand the clones to as many threads as the
//! workload needs — all state is shared and `&`-only. The owning
//! [`FixDatabase`](crate::FixDatabase) keeps working in parallel; its
//! mutating operations fail fast with
//! [`FixError::SnapshotInUse`] while
//! sessions are alive, and `vacuum` simply swaps in a new snapshot
//! underneath them.
//!
//! Each query runs Algorithm 2 with two serving-side accelerations, both
//! outcome-invisible:
//!
//! * **Plan caching** — steps 1–3 (parse, twig decomposition,
//!   eigen-features) are memoized in a bounded LRU keyed by the normalized
//!   query spelling, shared across clones. A warm hit goes straight to the
//!   B-tree range scan.
//! * **Parallel refinement** — candidates fan out across
//!   [`FixOptions::query_threads`](crate::FixOptions::query_threads)
//!   workers and merge back in document order, byte-identical to the
//!   sequential path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fix_obs::{Counter, Histogram, MetricsRegistry, QueryTrace, Stage};

use crate::builder::FixIndex;
use crate::collection::Collection;
use crate::error::FixError;
use crate::metrics::CacheStats;
use crate::options::resolve_threads;
use crate::plan_cache::{PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
use crate::query::{PlanTiming, QueryCtl, QueryHits, QueryOutcome, QueryPlan};

/// Fewest candidates per extra worker that make spawning it worthwhile.
/// Below this, per-candidate refinement is cheaper than thread start-up
/// and the session runs the sequential loop regardless of
/// [`QuerySession::threads`]. (The outcome is byte-identical either way;
/// this is purely a latency guard for highly selective queries.)
const MIN_CANDIDATES_PER_WORKER: usize = 128;

/// Pre-resolved registry handles for the per-query hot path. Resolving by
/// name takes the registry's read lock; doing it once at session creation
/// keeps query serving down to a handful of relaxed atomic adds.
struct SessionMetrics {
    /// `fix_queries_total`.
    queries: Arc<Counter>,
    /// `fix_query_wall_ns`.
    query_wall: Arc<Histogram>,
    /// Per-stage wall-time histograms, indexed by [`Stage::index`].
    stages: Vec<Arc<Histogram>>,
    /// `fix_refine_candidates_total`.
    candidates: Arc<Counter>,
    /// `fix_refine_producing_total`.
    producing: Arc<Counter>,
    /// `fix_query_timeouts_total` — queries cancelled at their deadline.
    timeouts: Arc<Counter>,
}

impl SessionMetrics {
    fn resolve(registry: &MetricsRegistry) -> Self {
        Self {
            queries: registry.counter("fix_queries_total"),
            query_wall: registry.histogram("fix_query_wall_ns"),
            stages: Stage::ALL
                .iter()
                .map(|s| registry.histogram(s.metric_name()))
                .collect(),
            candidates: registry.counter("fix_refine_candidates_total"),
            producing: registry.counter("fix_refine_producing_total"),
            timeouts: registry.counter(fix_obs::names::QUERY_TIMEOUTS),
        }
    }

    fn stage(&self, stage: Stage) -> &Histogram {
        &self.stages[stage.index()]
    }
}

/// What one plan lookup did and how long each part took. `parse` is
/// `None` on a raw-spelling hit (the repeat skipped the parse); `plan` is
/// `None` on any hit (compile/eigen only run on a full miss).
struct CachedPlanTiming {
    /// Both cache probes combined.
    probe: Duration,
    hit: bool,
    parse: Option<Duration>,
    plan: Option<PlanTiming>,
}

/// A shared-read query-serving handle over one database snapshot. Cheap to
/// clone (`Arc` bumps); clones share the snapshot, the plan cache, *and*
/// the metrics registry.
#[derive(Clone)]
pub struct QuerySession {
    coll: Arc<Collection>,
    index: Arc<FixIndex>,
    cache: Arc<PlanCache>,
    registry: Arc<MetricsRegistry>,
    metrics: Arc<SessionMetrics>,
    /// Resolved refinement worker count (≥ 1).
    threads: usize,
}

impl QuerySession {
    /// Snapshots the given collection/index pair. The worker count comes
    /// from the index's [`query_threads`](crate::FixOptions::query_threads)
    /// option; the plan cache starts empty at the default capacity.
    pub fn new(coll: Arc<Collection>, index: Arc<FixIndex>) -> Self {
        let threads = index.opts.effective_query_threads();
        let registry = Arc::new(MetricsRegistry::new());
        let metrics = Arc::new(SessionMetrics::resolve(&registry));
        Self {
            coll,
            index,
            cache: Arc::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)),
            registry,
            metrics,
            threads,
        }
    }

    /// Attaches the session to an existing metrics registry (e.g. the
    /// owning database's, so every session feeds one exposition surface).
    /// Handles are re-resolved; prior counts stay in the old registry.
    pub fn with_registry(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Arc::new(SessionMetrics::resolve(&registry));
        self.registry = registry;
        self
    }

    /// Overrides the refinement worker count (`0` = all cores) for this
    /// handle and clones made from it.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = resolve_threads(threads);
        self
    }

    /// Replaces the plan cache with a fresh one of the given capacity
    /// (`0` disables caching). Detaches from the cache shared with
    /// earlier clones; counters restart at zero.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Arc::new(PlanCache::new(capacity));
        self
    }

    /// Runs a query: cached plan → B-tree scan → parallel refinement.
    /// The [`QueryOutcome`] is byte-identical to
    /// [`FixIndex::query`](crate::FixIndex::query) on the same snapshot,
    /// for every thread count and cache state. Stage timings and work
    /// counts are recorded into the session's registry either way.
    pub fn query(&self, query: &str) -> Result<QueryOutcome, FixError> {
        self.query_inner(query, None, None)
    }

    /// [`QuerySession::query`] with an explicit per-call deadline,
    /// overriding the session default
    /// ([`FixOptions::query_timeout`](crate::FixOptions)). The query is
    /// cancelled cooperatively at the next scan or refinement chunk
    /// boundary after `timeout` elapses and reports
    /// [`FixError::DeadlineExceeded`] with the observed elapsed time;
    /// `fix_query_timeouts_total` counts every such cancellation.
    pub fn query_with_deadline(
        &self,
        query: &str,
        timeout: Duration,
    ) -> Result<QueryOutcome, FixError> {
        self.query_inner(query, None, Some(timeout))
    }

    /// [`QuerySession::query`] with a full [`QueryTrace`] of the stage
    /// pipeline: the cache probe (with its hit/miss outcome) comes first;
    /// a warm hit legitimately skips the parse/compile/eigen records.
    pub fn query_traced(&self, query: &str) -> Result<(QueryOutcome, QueryTrace), FixError> {
        let mut trace = QueryTrace::new(query);
        let outcome = self.query_inner(query, Some(&mut trace), None)?;
        Ok((outcome, trace))
    }

    /// [`QuerySession::query_with_deadline`] that always hands back the
    /// trace — on failure (including a deadline trip) it is *partial*,
    /// covering the stages that completed plus the stage that was
    /// interrupted, so callers can see where a timed-out query spent its
    /// budget.
    pub fn query_with_deadline_traced(
        &self,
        query: &str,
        timeout: Duration,
    ) -> (Result<QueryOutcome, FixError>, QueryTrace) {
        let mut trace = QueryTrace::new(query);
        let outcome = self.query_inner(query, Some(&mut trace), Some(timeout));
        (outcome, trace)
    }

    fn query_inner(
        &self,
        query: &str,
        mut trace: Option<&mut QueryTrace>,
        deadline: Option<Duration>,
    ) -> Result<QueryOutcome, FixError> {
        let t0 = Instant::now();
        // Per-call deadline overrides the session default; neither means
        // the control block never trips on its own.
        let mut ctl = match deadline.or(self.index.opts.query_timeout) {
            Some(timeout) => QueryCtl::with_timeout(timeout),
            None => QueryCtl::unbounded(),
        };
        // An already-expired deadline trips here, before any work — the
        // in-loop polls only read the clock periodically and could outrun
        // a short scan.
        if let Err(e) = ctl.checkpoint_now() {
            return Err(self.query_failed(e, trace, Stage::Scan, Duration::ZERO));
        }
        let (plan, timing) = self.cached_plan_timed(query)?;
        let m = &*self.metrics;
        m.stage(Stage::CacheProbe).record_duration(timing.probe);
        if let Some(parse) = timing.parse {
            m.stage(Stage::Parse).record_duration(parse);
        }
        if let Some(pt) = timing.plan {
            m.stage(Stage::Compile).record_duration(pt.compile);
            m.stage(Stage::Eigen).record_duration(pt.eigen);
        }
        if let Some(t) = trace.as_deref_mut() {
            t.record(Stage::CacheProbe, timing.probe).cache_hit = Some(timing.hit);
            if let Some(parse) = timing.parse {
                t.record(Stage::Parse, parse);
            }
            if let Some(pt) = timing.plan {
                t.record(Stage::Compile, pt.compile).items = Some(pt.blocks);
                t.record(Stage::Eigen, pt.eigen);
            }
        }
        let scan_start = Instant::now();
        let scanned = self.index.try_scan_plan(&plan, &mut ctl);
        let scan_wall = scan_start.elapsed();
        m.stage(Stage::Scan).record_duration(scan_wall);
        let candidates = match scanned {
            Ok(c) => c,
            Err(e) => return Err(self.query_failed(e, trace, Stage::Scan, scan_wall)),
        };
        if let Some(t) = trace.as_deref_mut() {
            t.record(Stage::Scan, scan_wall).items = Some(candidates.len() as u64);
        }
        // Scale the worker count to the candidate load: a query that the
        // index prunes down to a handful of candidates finishes faster on
        // one thread than it takes to start a second.
        let threads = self
            .threads
            .min(candidates.len() / MIN_CANDIDATES_PER_WORKER + 1);
        let refine_start = Instant::now();
        let (outcome, rt) = match self.index.try_refine_with_threads_timed(
            &self.coll,
            plan.path(),
            candidates,
            threads,
            &ctl,
        ) {
            Ok(v) => v,
            Err(e) => {
                let wall = refine_start.elapsed();
                m.stage(Stage::Refine).record_duration(wall);
                return Err(self.query_failed(e, trace, Stage::Refine, wall));
            }
        };
        m.stage(Stage::Refine).record_duration(rt.wall);
        m.candidates.add(outcome.metrics.candidates);
        m.producing.add(outcome.metrics.producing);
        m.queries.inc();
        m.query_wall.record_duration(t0.elapsed());
        if let Some(t) = trace {
            let r = t.record(Stage::Refine, rt.wall);
            r.items = Some(outcome.results.len() as u64);
            r.workers = rt.workers;
            t.total = t0.elapsed();
        }
        Ok(outcome)
    }

    /// Error-path bookkeeping: the interrupted stage still lands in the
    /// trace (callers of the `_traced` variants get a *partial* trace
    /// showing where the query stopped), and a deadline trip bumps
    /// `fix_query_timeouts_total`.
    fn query_failed(
        &self,
        e: FixError,
        trace: Option<&mut QueryTrace>,
        stage: Stage,
        wall: Duration,
    ) -> FixError {
        if let Some(t) = trace {
            t.record(stage, wall);
        }
        if matches!(e, FixError::DeadlineExceeded { .. }) {
            self.metrics.timeouts.inc();
        }
        e
    }

    /// Runs a query as a lazy iterator over matches in document order
    /// (the session-side analogue of
    /// [`FixDatabase::query_iter`](crate::FixDatabase::query_iter)); the
    /// plan cache still applies, refinement is sequential-on-demand.
    pub fn query_iter(&self, query: &str) -> Result<QueryHits<'_>, FixError> {
        let plan = self.cached_plan(query)?;
        Ok(self.index.hits(&self.coll, &plan))
    }

    /// Fetches or compiles the plan for `query`, tallying exactly one
    /// cache hit or miss (see [`QuerySession::cached_plan_timed`]).
    fn cached_plan(&self, query: &str) -> Result<Arc<QueryPlan>, FixError> {
        self.cached_plan_timed(query).map(|(plan, _)| plan)
    }

    /// Fetches or compiles the plan for `query`, tallying exactly one
    /// cache hit or miss. Two probes: the raw spelling first (an exact
    /// repeat skips even the parse), then the normalized spelling; on a
    /// miss the compiled plan is stored under both. The returned timing
    /// aggregates both probes into one `probe` wall clock and carries
    /// parse/compile/eigen clocks only for the work that actually ran.
    fn cached_plan_timed(
        &self,
        query: &str,
    ) -> Result<(Arc<QueryPlan>, CachedPlanTiming), FixError> {
        let probe_start = Instant::now();
        if let Some(plan) = self.cache.get(query) {
            self.cache.note_hit();
            return Ok((
                plan,
                CachedPlanTiming {
                    probe: probe_start.elapsed(),
                    hit: true,
                    parse: None,
                    plan: None,
                },
            ));
        }
        let probe1 = probe_start.elapsed();
        let parse_start = Instant::now();
        let path = fix_xpath::parse_path(query)?;
        let normalized = fix_xpath::normalize(&path);
        let key = normalized.to_string();
        let parse = parse_start.elapsed();
        let probe2_start = Instant::now();
        let probed = self.cache.get(&key);
        let probe = probe1 + probe2_start.elapsed();
        if let Some(plan) = probed {
            self.cache.note_hit();
            if query != key {
                // Alias this spelling so its next repeat skips the parse.
                self.cache.insert(query.to_string(), plan.clone());
            }
            return Ok((
                plan,
                CachedPlanTiming {
                    probe,
                    hit: true,
                    parse: Some(parse),
                    plan: None,
                },
            ));
        }
        self.cache.note_miss();
        let (plan, pt) = self.index.plan_normalized_timed(&self.coll, normalized)?;
        let plan = Arc::new(plan);
        if query != key {
            self.cache.insert(query.to_string(), plan.clone());
        }
        self.cache.insert(key, plan.clone());
        Ok((
            plan,
            CachedPlanTiming {
                probe,
                hit: false,
                parse: Some(parse),
                plan: Some(pt),
            },
        ))
    }

    /// Plan-cache effectiveness counters (shared across clones).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The metrics registry this session records into (the owning
    /// database's when created via
    /// [`FixDatabase::session`](crate::FixDatabase::session)).
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Refreshes the registry's plan-cache gauges (`fix_plan_cache_*`)
    /// from the live cache counters. Gauges only move on report, so call
    /// this before rendering an exposition.
    pub fn report_cache_stats(&self) {
        use fix_obs::Reportable;
        self.cache.stats().report(&self.registry);
    }

    /// The resolved refinement worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The snapshotted collection.
    pub fn collection(&self) -> &Collection {
        &self.coll
    }

    /// The snapshotted index.
    pub fn index(&self) -> &FixIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::FixDatabase;
    use crate::options::FixOptions;

    fn serving_db() -> FixDatabase {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<bib><article><author><email/></author><ee/></article></bib>")
            .unwrap();
        db.add_xml("<bib><book><author><phone/></author></book></bib>")
            .unwrap();
        db.add_xml("<bib><article><author><phone/><email/></author></article></bib>")
            .unwrap();
        db.build(FixOptions::collection().with_query_threads(3))
            .unwrap();
        db
    }

    #[test]
    fn session_is_shareable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<QuerySession>();
    }

    #[test]
    fn session_matches_the_sequential_path() {
        let db = serving_db();
        let session = db.session().unwrap();
        assert_eq!(session.threads(), 3);
        for q in [
            "//article[author]/ee",
            "//author[phone][email]",
            "/bib/book/author/phone",
            "//nonexistent/label",
        ] {
            let seq = db.query(q).unwrap();
            // Cold (miss), warm (hit), and iterator paths all agree.
            assert_eq!(session.query(q).unwrap(), seq, "cold diverged on {q}");
            assert_eq!(session.query(q).unwrap(), seq, "warm diverged on {q}");
            let streamed: Vec<_> = session.query_iter(q).unwrap().collect();
            assert_eq!(streamed, seq.results, "stream diverged on {q}");
        }
    }

    #[test]
    fn hits_and_misses_tally_once_per_query() {
        let db = serving_db();
        let session = db.session().unwrap();
        session.query("//article/author").unwrap();
        session.query("//article/author").unwrap();
        session.query("//article/author").unwrap();
        session.query("//book/author").unwrap();
        let s = session.cache_stats();
        assert_eq!((s.hits, s.misses), (2, 2));
        // Clones share the cache — a clone's repeat is a hit.
        let clone = session.clone();
        clone.query("//book/author").unwrap();
        assert_eq!(session.cache_stats().hits, 3);
    }

    #[test]
    fn errors_flatten_through_the_session() {
        let db = serving_db();
        let session = db.session().unwrap();
        assert!(matches!(
            session.query("not a path"),
            Err(FixError::BadQuery(_))
        ));
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b><c/></b></a>").unwrap();
        db.build(FixOptions::large_document(2)).unwrap();
        let session = db.session().unwrap();
        assert!(matches!(
            session.query("//a/b/c"),
            Err(FixError::NotCovered { .. })
        ));
    }

    #[test]
    fn traced_queries_match_and_cover_the_pipeline() {
        use fix_obs::Stage;
        let db = serving_db();
        let session = db.session().unwrap();
        let q = "//article[author]/ee";
        let plain = db.query(q).unwrap();
        // Cold: the probe misses and every stage runs.
        let (cold, trace) = session.query_traced(q).unwrap();
        assert_eq!(cold, plain);
        assert_eq!(trace.cache_hit(), Some(false));
        assert_eq!(trace.stages[0].stage, Stage::CacheProbe, "probe is first");
        for s in Stage::ALL {
            assert!(trace.stage(s).is_some(), "cold trace missing {s}");
        }
        assert_eq!(
            trace.stage(Stage::Scan).unwrap().items,
            Some(cold.metrics.candidates)
        );
        // Warm: the hit skips parse/compile/eigen.
        let (warm, trace) = session.query_traced(q).unwrap();
        assert_eq!(warm, plain);
        assert_eq!(trace.cache_hit(), Some(true));
        assert!(trace.stage(Stage::Parse).is_none());
        assert!(trace.stage(Stage::Compile).is_none());
        assert!(trace.stage(Stage::Scan).is_some());
        assert!(trace.stage(Stage::Refine).is_some());
    }

    #[test]
    fn sessions_record_into_their_registry() {
        let db = serving_db();
        let session = db.session().unwrap();
        session.query("//article/author").unwrap();
        session.query("//article/author").unwrap();
        let snap = session.registry().snapshot();
        assert_eq!(snap.counter("fix_queries_total"), Some(2));
        assert_eq!(
            snap.histogram("fix_stage_scan_ns").map(|h| h.count),
            Some(2)
        );
        // The warm repeat skipped compile — one sample, not two.
        assert_eq!(
            snap.histogram("fix_stage_compile_ns").map(|h| h.count),
            Some(1)
        );
        assert!(snap.counter("fix_refine_candidates_total").unwrap() >= 1);
        // The session shares the owning database's registry.
        assert!(Arc::ptr_eq(session.registry(), db.metrics()));
        session.report_cache_stats();
        let snap = session.registry().snapshot();
        assert_eq!(snap.gauge("fix_plan_cache_hits"), Some(1));
        assert_eq!(snap.gauge("fix_plan_cache_misses"), Some(1));
        assert_eq!(snap.gauge("fix_plan_cache_evictions"), Some(0));
    }

    #[test]
    fn zero_capacity_session_still_answers() {
        let db = serving_db();
        let session = db.session().unwrap().with_cache_capacity(0);
        let a = session.query("//article[author]/ee").unwrap();
        let b = session.query("//article[author]/ee").unwrap();
        assert_eq!(a, b);
        let s = session.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 0));
    }

    #[test]
    fn deadline_trips_cooperatively_and_counts() {
        let db = serving_db();
        let session = db.session().unwrap();
        // An already-expired deadline trips at the first checkpoint —
        // deterministic, no matter how fast the query would be.
        let err = session
            .query_with_deadline("//article/author", std::time::Duration::ZERO)
            .unwrap_err();
        assert!(
            matches!(err, FixError::DeadlineExceeded { .. }),
            "got {err:?}"
        );
        let snap = session.registry().snapshot();
        assert_eq!(snap.counter("fix_query_timeouts_total"), Some(1));
        // A roomy deadline answers identically to the undeadlined query.
        let plain = session.query("//article/author").unwrap();
        let timed = session
            .query_with_deadline("//article/author", std::time::Duration::from_secs(60))
            .unwrap();
        assert_eq!(plain, timed);
        // The traced variant hands back the partial trace on a trip:
        // the interrupted stage is recorded.
        let (res, trace) =
            session.query_with_deadline_traced("//article/author", std::time::Duration::ZERO);
        assert!(matches!(res, Err(FixError::DeadlineExceeded { .. })));
        assert!(
            trace.stage(Stage::Scan).is_some() || trace.stage(Stage::Refine).is_some(),
            "partial trace names the interrupted stage"
        );
    }

    #[test]
    fn session_default_timeout_comes_from_options() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<bib><article><author/></article></bib>")
            .unwrap();
        db.build(
            FixOptions::builder()
                .query_timeout(Some(std::time::Duration::ZERO))
                .build(),
        )
        .unwrap();
        let session = db.session().unwrap();
        assert!(matches!(
            session.query("//article/author"),
            Err(FixError::DeadlineExceeded { .. })
        ));
        // A per-call deadline overrides the session default.
        assert!(session
            .query_with_deadline("//article/author", std::time::Duration::from_secs(60))
            .is_ok());
    }
}
