//! [`QuerySession`] — a concurrent, snapshot-isolated query handle.
//!
//! A session pins the collection and index behind [`Arc`]s at creation
//! time: clone it freely and hand the clones to as many threads as the
//! workload needs — all state is shared and `&`-only. The owning
//! [`FixDatabase`](crate::FixDatabase) keeps working in parallel; its
//! mutating operations fail fast with
//! [`FixError::SnapshotInUse`] while
//! sessions are alive, and `vacuum` simply swaps in a new snapshot
//! underneath them.
//!
//! Each query runs Algorithm 2 with two serving-side accelerations, both
//! outcome-invisible:
//!
//! * **Plan caching** — steps 1–3 (parse, twig decomposition,
//!   eigen-features) are memoized in a bounded LRU keyed by the normalized
//!   query spelling, shared across clones. A warm hit goes straight to the
//!   B-tree range scan.
//! * **Parallel refinement** — candidates fan out across
//!   [`FixOptions::query_threads`](crate::FixOptions::query_threads)
//!   workers and merge back in document order, byte-identical to the
//!   sequential path.

use std::sync::Arc;

use crate::builder::FixIndex;
use crate::collection::Collection;
use crate::error::FixError;
use crate::metrics::CacheStats;
use crate::options::resolve_threads;
use crate::plan_cache::{PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
use crate::query::{QueryHits, QueryOutcome, QueryPlan};

/// Fewest candidates per extra worker that make spawning it worthwhile.
/// Below this, per-candidate refinement is cheaper than thread start-up
/// and the session runs the sequential loop regardless of
/// [`QuerySession::threads`]. (The outcome is byte-identical either way;
/// this is purely a latency guard for highly selective queries.)
const MIN_CANDIDATES_PER_WORKER: usize = 128;

/// A shared-read query-serving handle over one database snapshot. Cheap to
/// clone (`Arc` bumps); clones share the snapshot *and* the plan cache.
#[derive(Clone)]
pub struct QuerySession {
    coll: Arc<Collection>,
    index: Arc<FixIndex>,
    cache: Arc<PlanCache>,
    /// Resolved refinement worker count (≥ 1).
    threads: usize,
}

impl QuerySession {
    /// Snapshots the given collection/index pair. The worker count comes
    /// from the index's [`query_threads`](crate::FixOptions::query_threads)
    /// option; the plan cache starts empty at the default capacity.
    pub fn new(coll: Arc<Collection>, index: Arc<FixIndex>) -> Self {
        let threads = index.opts.effective_query_threads();
        Self {
            coll,
            index,
            cache: Arc::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)),
            threads,
        }
    }

    /// Overrides the refinement worker count (`0` = all cores) for this
    /// handle and clones made from it.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = resolve_threads(threads);
        self
    }

    /// Replaces the plan cache with a fresh one of the given capacity
    /// (`0` disables caching). Detaches from the cache shared with
    /// earlier clones; counters restart at zero.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache = Arc::new(PlanCache::new(capacity));
        self
    }

    /// Runs a query: cached plan → B-tree scan → parallel refinement.
    /// The [`QueryOutcome`] is byte-identical to
    /// [`FixIndex::query`](crate::FixIndex::query) on the same snapshot,
    /// for every thread count and cache state.
    pub fn query(&self, query: &str) -> Result<QueryOutcome, FixError> {
        let plan = self.cached_plan(query)?;
        let candidates = self.index.scan_plan(&plan);
        // Scale the worker count to the candidate load: a query that the
        // index prunes down to a handful of candidates finishes faster on
        // one thread than it takes to start a second.
        let threads = self
            .threads
            .min(candidates.len() / MIN_CANDIDATES_PER_WORKER + 1);
        Ok(self
            .index
            .refine_with_threads(&self.coll, plan.path(), candidates, threads))
    }

    /// Runs a query as a lazy iterator over matches in document order
    /// (the session-side analogue of
    /// [`FixDatabase::query_iter`](crate::FixDatabase::query_iter)); the
    /// plan cache still applies, refinement is sequential-on-demand.
    pub fn query_iter(&self, query: &str) -> Result<QueryHits<'_>, FixError> {
        let plan = self.cached_plan(query)?;
        Ok(self.index.hits(&self.coll, &plan))
    }

    /// Fetches or compiles the plan for `query`, tallying exactly one
    /// cache hit or miss. Two probes: the raw spelling first (an exact
    /// repeat skips even the parse), then the normalized spelling; on a
    /// miss the compiled plan is stored under both.
    fn cached_plan(&self, query: &str) -> Result<Arc<QueryPlan>, FixError> {
        if let Some(plan) = self.cache.get(query) {
            self.cache.note_hit();
            return Ok(plan);
        }
        let path = fix_xpath::parse_path(query)?;
        let normalized = fix_xpath::normalize(&path);
        let key = normalized.to_string();
        if let Some(plan) = self.cache.get(&key) {
            self.cache.note_hit();
            if query != key {
                // Alias this spelling so its next repeat skips the parse.
                self.cache.insert(query.to_string(), plan.clone());
            }
            return Ok(plan);
        }
        self.cache.note_miss();
        let plan = Arc::new(self.index.plan_normalized(&self.coll, normalized)?);
        if query != key {
            self.cache.insert(query.to_string(), plan.clone());
        }
        self.cache.insert(key, plan.clone());
        Ok(plan)
    }

    /// Plan-cache effectiveness counters (shared across clones).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The resolved refinement worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The snapshotted collection.
    pub fn collection(&self) -> &Collection {
        &self.coll
    }

    /// The snapshotted index.
    pub fn index(&self) -> &FixIndex {
        &self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::FixDatabase;
    use crate::options::FixOptions;

    fn serving_db() -> FixDatabase {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<bib><article><author><email/></author><ee/></article></bib>")
            .unwrap();
        db.add_xml("<bib><book><author><phone/></author></book></bib>")
            .unwrap();
        db.add_xml("<bib><article><author><phone/><email/></author></article></bib>")
            .unwrap();
        db.build(FixOptions::collection().with_query_threads(3))
            .unwrap();
        db
    }

    #[test]
    fn session_is_shareable() {
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<QuerySession>();
    }

    #[test]
    fn session_matches_the_sequential_path() {
        let db = serving_db();
        let session = db.session().unwrap();
        assert_eq!(session.threads(), 3);
        for q in [
            "//article[author]/ee",
            "//author[phone][email]",
            "/bib/book/author/phone",
            "//nonexistent/label",
        ] {
            let seq = db.query(q).unwrap();
            // Cold (miss), warm (hit), and iterator paths all agree.
            assert_eq!(session.query(q).unwrap(), seq, "cold diverged on {q}");
            assert_eq!(session.query(q).unwrap(), seq, "warm diverged on {q}");
            let streamed: Vec<_> = session.query_iter(q).unwrap().collect();
            assert_eq!(streamed, seq.results, "stream diverged on {q}");
        }
    }

    #[test]
    fn hits_and_misses_tally_once_per_query() {
        let db = serving_db();
        let session = db.session().unwrap();
        session.query("//article/author").unwrap();
        session.query("//article/author").unwrap();
        session.query("//article/author").unwrap();
        session.query("//book/author").unwrap();
        let s = session.cache_stats();
        assert_eq!((s.hits, s.misses), (2, 2));
        // Clones share the cache — a clone's repeat is a hit.
        let clone = session.clone();
        clone.query("//book/author").unwrap();
        assert_eq!(session.cache_stats().hits, 3);
    }

    #[test]
    fn errors_flatten_through_the_session() {
        let db = serving_db();
        let session = db.session().unwrap();
        assert!(matches!(
            session.query("not a path"),
            Err(FixError::BadQuery(_))
        ));
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b><c/></b></a>").unwrap();
        db.build(FixOptions::large_document(2)).unwrap();
        let session = db.session().unwrap();
        assert!(matches!(
            session.query("//a/b/c"),
            Err(FixError::NotCovered { .. })
        ));
    }

    #[test]
    fn zero_capacity_session_still_answers() {
        let db = serving_db();
        let session = db.session().unwrap().with_cache_capacity(0);
        let a = session.query("//article[author]/ee").unwrap();
        let b = session.query("//article[author]/ee").unwrap();
        assert_eq!(a, b);
        let s = session.cache_stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 2, 0));
    }
}
