//! Index configuration.

use fix_spectral::FeatureExtractor;
use fix_storage::Durability;

/// Which operator validates candidates in the refinement phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefineOp {
    /// The NoK-style navigational evaluator (the paper's choice).
    #[default]
    Nok,
    /// The bottom-up structural matcher (ablation alternative). Only twig
    /// queries (no interior `//` below the anchor) can use it; general
    /// paths silently fall back to [`RefineOp::Nok`].
    Twig,
}

/// Where a database's pages live.
///
/// The mode governs what [`FixDatabase::save`](crate::FixDatabase::save)
/// writes and how `open` behaves afterwards: an in-memory database saves
/// the framed v3 format (everything materialized at load), a paged one
/// saves the v4 page file — documents, clustered copies and B+-tree nodes
/// in fixed-size pages read on demand through a bounded buffer pool, with
/// only a small metadata tail parsed at open.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// Pages live in memory; persistence materializes the whole file.
    #[default]
    InMemory,
    /// Pages live in the database file and are demand-read through the
    /// buffer pool ([`FixOptions::pool_pages`] bounds residency).
    Paged,
}

/// Options controlling index construction and querying.
#[derive(Debug, Clone)]
pub struct FixOptions {
    /// Subpattern depth limit `k`. `0` means "index each document whole"
    /// (the collection-of-small-documents mode); a positive value
    /// enumerates the depth-`k` subpattern of *every element*
    /// (Section 4.4, the large-document mode).
    pub depth_limit: usize,
    /// Build a clustered index: subtree copies stored in feature-key order
    /// (Section 4.1, Figure 4). Costs space, buys sequential refinement
    /// I/O.
    pub clustered: bool,
    /// `Some(β)` enables the integrated value index (Section 4.6): text
    /// nodes are hashed into `β` synthetic labels and indexed like
    /// elements.
    pub value_beta: Option<u32>,
    /// Feature extraction knobs (eigensolver options, oversized-pattern
    /// fallback threshold).
    pub extractor: FeatureExtractor,
    /// Buffer-pool capacity in pages for the index storage.
    pub pool_pages: usize,
    /// Where the database's pages live (see [`StorageMode`]). Not part of
    /// the persisted options payload — it is derived from the file format
    /// at open time (a v4 page file opens `Paged`, everything else
    /// `InMemory`).
    pub storage: StorageMode,
    /// Refinement operator.
    pub refine: RefineOp,
    /// Use the extended σ₂ feature for pruning (ablation; see
    /// `Features::contains_extended` for the soundness caveat).
    pub extended_features: bool,
    /// Prune with the 64-bit edge-set Bloom fingerprint in addition to the
    /// eigenvalue range (the "other features" extension Section 3.4
    /// invites; sound for all matches). Off by default to keep the
    /// headline experiments paper-faithful; the value index (Figure 7) and
    /// the ablation bench turn it on.
    pub edge_bloom: bool,
    /// Enumerate subpatterns with the paper's literal `GEN-SUBPATTERN`
    /// (unfold the DAG through the traveler and re-minimize) instead of the
    /// memoized truncation. Exponential on recursive data — kept for the
    /// index-construction ablation that reproduces the paper's Treebank
    /// ICT blow-up.
    pub literal_gen_subpattern: bool,
    /// Worker threads for the parallel construction phases (document
    /// streaming and eigenvalue extraction). `1` builds sequentially;
    /// `0` means "use all available parallelism". The built index is
    /// bit-identical at every thread count (see `DESIGN.md`, "Parallel
    /// construction").
    pub threads: usize,
    /// Worker threads for the parallel candidate-refinement phase of query
    /// processing (the default for
    /// [`QuerySession`](crate::QuerySession)s). `1` refines sequentially;
    /// `0` means "use all available parallelism". Results are merged in
    /// document order, so the outcome is byte-identical at every thread
    /// count (see `DESIGN.md`, "Concurrent query serving").
    pub query_threads: usize,
    /// Maximum element nesting depth accepted when parsing documents into
    /// this database ([`fix_xml::DEFAULT_MAX_DEPTH`] by default;
    /// `usize::MAX` disables the check). Pathological nesting is rejected
    /// with a `ParseError` instead of growing every downstream stack
    /// without bound.
    pub max_parse_depth: usize,
    /// Delta-to-base size ratio at which `FixDatabase::add_xml`
    /// automatically compacts the delta run into the base B+-tree
    /// (`delta_entries ≥ compact_ratio × base_entries`; an empty base
    /// compacts at any nonzero delta). `0.0` disables auto-compaction —
    /// the delta grows until an explicit `compact()`. Persisted in the
    /// options frame (see `DESIGN.md` §12): a reopened database resumes
    /// the compaction policy it was saved with unless the caller
    /// overrides it.
    pub compact_ratio: f64,
    /// When an acknowledged mutation is actually on disk
    /// ([`Durability::Sync`] by default: every WAL commit is fsynced,
    /// concurrent committers share one group fsync). Like the thread
    /// knobs, a process policy — not persisted.
    pub durability: Durability,
    /// WAL segment seal threshold in bytes: a tail segment reaching this
    /// size is fsynced and closed, and the matching in-memory delta run
    /// freezes into the tier stack. Persisted in the options frame, so a
    /// reopened database keeps the sealing policy it was saved with.
    pub wal_seal_bytes: u64,
    /// Size-tier merge fanout: a delta level holding this many frozen
    /// runs folds into one run on the next level, bounding merged-scan
    /// read amplification at `fanout − 1` runs per level. Minimum 2.
    /// Persisted in the options frame.
    pub tier_fanout: usize,
    /// Flight-recorder event ring capacity (see
    /// [`EventRecorder`](fix_obs::EventRecorder)): how many structured
    /// engine events (`commit`, `wal.seal`, `tier.merge`, recovery
    /// anomalies, …) the database retains in memory. `0` disables the
    /// recorder entirely — hot paths then skip payload construction.
    /// Process policy — not persisted.
    pub event_capacity: usize,
    /// Slow-op threshold in nanoseconds: recorded spans (commits, saves,
    /// merges, compactions) at least this long are promoted to the
    /// retained slow-op log ([`FixDatabase::slow_ops`]). `u64::MAX`
    /// disables promotion. Process policy — not persisted.
    ///
    /// [`FixDatabase::slow_ops`]: crate::FixDatabase::slow_ops
    pub slow_op_ns: u64,
    /// Default deadline for every query issued through a
    /// [`QuerySession`](crate::QuerySession). `None` (the default) lets
    /// queries run to completion; `Some(d)` cancels a query cooperatively
    /// at the next scan or refinement chunk boundary once `d` has elapsed,
    /// surfacing [`FixError::DeadlineExceeded`](crate::FixError).
    /// Per-call deadlines
    /// ([`QuerySession::query_with_deadline`](crate::QuerySession::query_with_deadline))
    /// override this knob. Process policy — not persisted.
    pub query_timeout: Option<std::time::Duration>,
}

impl FixOptions {
    /// Collection-of-small-documents mode: one entry per document, no
    /// depth limit (the XBench TCMD configuration of Section 6.1).
    pub fn collection() -> Self {
        Self {
            depth_limit: 0,
            clustered: false,
            value_beta: None,
            extractor: FeatureExtractor::default(),
            pool_pages: 1024,
            storage: StorageMode::InMemory,
            refine: RefineOp::default(),
            extended_features: false,
            edge_bloom: false,
            literal_gen_subpattern: false,
            threads: 1,
            query_threads: 1,
            max_parse_depth: fix_xml::DEFAULT_MAX_DEPTH,
            compact_ratio: 0.5,
            durability: Durability::Sync,
            wal_seal_bytes: 1 << 20,
            tier_fanout: 4,
            event_capacity: 1024,
            slow_op_ns: 100_000_000,
            query_timeout: None,
        }
    }

    /// Large-document mode with subpattern depth limit `k` (the paper uses
    /// `k = 6` for DBLP/XMark/Treebank).
    pub fn large_document(k: usize) -> Self {
        assert!(k > 0, "large-document mode requires a positive depth limit");
        Self {
            depth_limit: k,
            ..Self::collection()
        }
    }

    /// Enables the clustered variant.
    pub fn clustered(mut self) -> Self {
        self.clustered = true;
        self
    }

    /// Switches to the paper-faithful skew-spectral feature key (see
    /// `fix_spectral::FeatureMode` for why the sound symmetric-norm key is
    /// the default).
    pub fn paper_mode(mut self) -> Self {
        self.extractor.mode = fix_spectral::FeatureMode::SkewSpectral;
        self
    }

    /// Enables edge-fingerprint pruning.
    pub fn with_edge_bloom(mut self) -> Self {
        self.edge_bloom = true;
        self
    }

    /// Enables the integrated value index with hash range `β`.
    pub fn with_values(mut self, beta: u32) -> Self {
        assert!(beta > 0, "β must be positive");
        self.value_beta = Some(beta);
        self
    }

    /// Sets the construction worker-thread count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the refinement worker-thread count (`0` = all cores).
    pub fn with_query_threads(mut self, threads: usize) -> Self {
        self.query_threads = threads;
        self
    }

    /// Sets the maximum accepted element nesting depth for document
    /// parsing (`usize::MAX` disables the check).
    pub fn with_max_parse_depth(mut self, max_depth: usize) -> Self {
        assert!(max_depth > 0, "the parse depth limit must be positive");
        self.max_parse_depth = max_depth;
        self
    }

    /// Sets the auto-compaction trigger ratio (`0.0` disables).
    pub fn with_compact_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio >= 0.0, "the compaction ratio cannot be negative");
        self.compact_ratio = ratio;
        self
    }

    /// Resolves [`FixOptions::threads`] to a concrete worker count
    /// (`0` → `std::thread::available_parallelism()`).
    pub fn effective_threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// Resolves [`FixOptions::query_threads`] to a concrete worker count
    /// (`0` → `std::thread::available_parallelism()`).
    pub fn effective_query_threads(&self) -> usize {
        resolve_threads(self.query_threads)
    }

    /// Starts a fluent builder seeded with the collection-mode defaults.
    ///
    /// ```
    /// use fix_core::FixOptions;
    /// let opts = FixOptions::builder()
    ///     .depth_limit(6)
    ///     .clustered(true)
    ///     .values(64)
    ///     .threads(4)
    ///     .build();
    /// assert_eq!(opts.depth_limit, 6);
    /// assert!(opts.clustered);
    /// ```
    pub fn builder() -> FixOptionsBuilder {
        FixOptionsBuilder {
            opts: Self::collection(),
        }
    }
}

/// `0` means "all cores" in every thread-count knob.
pub(crate) fn resolve_threads(n: usize) -> usize {
    match n {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Fluent builder for [`FixOptions`] (see [`FixOptions::builder`]).
#[derive(Debug, Clone)]
pub struct FixOptionsBuilder {
    opts: FixOptions,
}

impl FixOptionsBuilder {
    /// Subpattern depth limit `k`; `0` selects collection mode (one entry
    /// per document).
    pub fn depth_limit(mut self, k: usize) -> Self {
        self.opts.depth_limit = k;
        self
    }

    /// Builds a clustered index (subtree copies in feature-key order).
    pub fn clustered(mut self, clustered: bool) -> Self {
        self.opts.clustered = clustered;
        self
    }

    /// Enables the integrated value index with hash range `β`.
    pub fn values(mut self, beta: u32) -> Self {
        assert!(beta > 0, "β must be positive");
        self.opts.value_beta = Some(beta);
        self
    }

    /// Construction worker-thread count (`0` = all cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.opts.threads = threads;
        self
    }

    /// Refinement worker-thread count for query serving (`0` = all cores).
    pub fn query_threads(mut self, threads: usize) -> Self {
        self.opts.query_threads = threads;
        self
    }

    /// Maximum accepted element nesting depth for document parsing
    /// (`usize::MAX` disables the check).
    pub fn max_parse_depth(mut self, max_depth: usize) -> Self {
        assert!(max_depth > 0, "the parse depth limit must be positive");
        self.opts.max_parse_depth = max_depth;
        self
    }

    /// Buffer-pool capacity in pages.
    pub fn pool_pages(mut self, pages: usize) -> Self {
        assert!(pages > 0, "the buffer pool needs at least one page");
        self.opts.pool_pages = pages;
        self
    }

    /// Storage mode: in-memory pages (the default) or an on-disk page
    /// file read on demand through the buffer pool.
    pub fn storage(mut self, mode: StorageMode) -> Self {
        self.opts.storage = mode;
        self
    }

    /// Switches to the paper-faithful skew-spectral feature key.
    pub fn paper_mode(mut self, on: bool) -> Self {
        self.opts.extractor.mode = if on {
            fix_spectral::FeatureMode::SkewSpectral
        } else {
            fix_spectral::FeatureMode::SymmetricNorm
        };
        self
    }

    /// Enables edge-fingerprint pruning.
    pub fn edge_bloom(mut self, on: bool) -> Self {
        self.opts.edge_bloom = on;
        self
    }

    /// Enables the extended σ₂ pruning feature.
    pub fn extended_features(mut self, on: bool) -> Self {
        self.opts.extended_features = on;
        self
    }

    /// Uses the paper-literal `GEN-SUBPATTERN` enumeration.
    pub fn literal_gen_subpattern(mut self, on: bool) -> Self {
        self.opts.literal_gen_subpattern = on;
        self
    }

    /// Oversized-pattern fallback threshold (max edges the eigensolver
    /// will accept).
    pub fn max_edges(mut self, max_edges: usize) -> Self {
        self.opts.extractor.max_edges = max_edges;
        self
    }

    /// Auto-compaction trigger ratio (`0.0` disables).
    pub fn compact_ratio(mut self, ratio: f64) -> Self {
        assert!(ratio >= 0.0, "the compaction ratio cannot be negative");
        self.opts.compact_ratio = ratio;
        self
    }

    /// Refinement operator.
    pub fn refine(mut self, op: RefineOp) -> Self {
        self.opts.refine = op;
        self
    }

    /// Durability policy for acknowledged mutations (see [`Durability`]).
    pub fn durability(mut self, durability: Durability) -> Self {
        self.opts.durability = durability;
        self
    }

    /// WAL segment seal threshold in bytes (also the delta run freeze
    /// point).
    pub fn wal_seal_bytes(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "the seal threshold must be positive");
        self.opts.wal_seal_bytes = bytes;
        self
    }

    /// Size-tier merge fanout for frozen delta runs (minimum 2).
    pub fn tier_fanout(mut self, fanout: usize) -> Self {
        assert!(fanout >= 2, "the tier fanout must be at least 2");
        self.opts.tier_fanout = fanout;
        self
    }

    /// Flight-recorder event ring capacity (`0` disables recording).
    pub fn event_capacity(mut self, events: usize) -> Self {
        self.opts.event_capacity = events;
        self
    }

    /// Slow-op promotion threshold in nanoseconds (`u64::MAX` disables).
    pub fn slow_op_ns(mut self, ns: u64) -> Self {
        self.opts.slow_op_ns = ns;
        self
    }

    /// Default query deadline (`None` = unbounded, the default).
    pub fn query_timeout(mut self, timeout: Option<std::time::Duration>) -> Self {
        self.opts.query_timeout = timeout;
        self
    }

    /// Finalizes the options.
    pub fn build(self) -> FixOptions {
        self.opts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let c = FixOptions::collection();
        assert_eq!(c.depth_limit, 0);
        assert!(!c.clustered);
        let l = FixOptions::large_document(6).clustered().with_values(10);
        assert_eq!(l.depth_limit, 6);
        assert!(l.clustered);
        assert_eq!(l.value_beta, Some(10));
    }

    #[test]
    #[should_panic(expected = "positive depth limit")]
    fn zero_depth_large_mode_panics() {
        let _ = FixOptions::large_document(0);
    }

    #[test]
    fn builder_covers_every_knob() {
        let o = FixOptions::builder()
            .depth_limit(4)
            .clustered(true)
            .values(16)
            .threads(8)
            .query_threads(6)
            .pool_pages(64)
            .storage(StorageMode::Paged)
            .paper_mode(true)
            .edge_bloom(true)
            .extended_features(true)
            .literal_gen_subpattern(true)
            .max_edges(123)
            .max_parse_depth(99)
            .compact_ratio(0.25)
            .refine(RefineOp::Twig)
            .durability(Durability::Async)
            .wal_seal_bytes(4096)
            .tier_fanout(3)
            .event_capacity(2048)
            .slow_op_ns(5_000_000)
            .query_timeout(Some(std::time::Duration::from_millis(750)))
            .build();
        assert_eq!(o.depth_limit, 4);
        assert!(o.clustered);
        assert_eq!(o.value_beta, Some(16));
        assert_eq!(o.threads, 8);
        assert_eq!(o.query_threads, 6);
        assert_eq!(o.pool_pages, 64);
        assert_eq!(o.storage, StorageMode::Paged);
        assert_eq!(o.extractor.mode, fix_spectral::FeatureMode::SkewSpectral);
        assert!(o.edge_bloom);
        assert!(o.extended_features);
        assert!(o.literal_gen_subpattern);
        assert_eq!(o.extractor.max_edges, 123);
        assert_eq!(o.max_parse_depth, 99);
        assert_eq!(o.compact_ratio, 0.25);
        assert_eq!(o.refine, RefineOp::Twig);
        assert_eq!(o.durability, Durability::Async);
        assert_eq!(o.wal_seal_bytes, 4096);
        assert_eq!(o.tier_fanout, 3);
        assert_eq!(o.event_capacity, 2048);
        assert_eq!(o.slow_op_ns, 5_000_000);
        assert_eq!(o.query_timeout, Some(std::time::Duration::from_millis(750)));
    }

    #[test]
    fn parse_depth_defaults_and_override() {
        assert_eq!(
            FixOptions::collection().max_parse_depth,
            fix_xml::DEFAULT_MAX_DEPTH
        );
        assert_eq!(
            FixOptions::collection()
                .with_max_parse_depth(7)
                .max_parse_depth,
            7
        );
    }

    #[test]
    fn thread_resolution() {
        assert_eq!(FixOptions::collection().threads, 1);
        assert_eq!(FixOptions::collection().effective_threads(), 1);
        let auto = FixOptions::collection().with_threads(0);
        assert!(auto.effective_threads() >= 1);
        assert_eq!(FixOptions::collection().with_threads(7).threads, 7);
        assert_eq!(FixOptions::collection().query_threads, 1);
        let qauto = FixOptions::collection().with_query_threads(0);
        assert!(qauto.effective_query_threads() >= 1);
        assert_eq!(
            FixOptions::collection().with_query_threads(5).query_threads,
            5
        );
    }
}
