//! [`FixDatabase`] — the one-stop facade over collection, index, and
//! persistence.
//!
//! The lower-level pieces ([`Collection`], [`FixIndex`], the persist
//! module) stay public for experiments that need to hold them apart, but
//! applications should only ever need this:
//!
//! ```
//! use fix_core::{FixDatabase, FixOptions};
//!
//! let mut db = FixDatabase::in_memory();
//! db.add_xml("<bib><article><author/><ee/></article></bib>")?;
//! db.add_xml("<bib><book><author/></book></bib>")?;
//! db.build(FixOptions::builder().threads(2).build())?;
//! let out = db.query("//article[author]/ee")?;
//! assert_eq!(out.results.len(), 1);
//! # Ok::<(), fix_core::FixError>(())
//! ```
//!
//! # Snapshots and concurrency
//!
//! Collection and index live behind [`Arc`], so
//! [`FixDatabase::session`] can hand out [`QuerySession`] snapshots that
//! serve queries from any number of threads while the database itself
//! stays usable for read-side admin work (more queries, [`save`], stats).
//! Mutations (`write`, `add_xml`, `remove_document`) need exclusive
//! ownership and return [`FixError::SnapshotInUse`] while sessions are
//! alive; [`vacuum`] instead swaps in a *new* snapshot pair, leaving live
//! sessions on the old (still consistent) one.
//!
//! # The write path
//!
//! Mutations on a path-bound, indexed database are durable without
//! rewriting the file: [`FixDatabase::write`] commits a [`WriteBatch`]
//! as **one** record in a write-ahead log beside the database file
//! (`<db>.wal/`), then applies it in memory — `add_xml` and
//! `remove_document` are one-op batches. [`FixOptions::durability`]
//! decides when the commit is fsynced (every commit, batched in the
//! background, or left to the OS — see
//! [`Durability`]). `open` replays whatever the
//! log holds, so a crash or an exit without [`save`] loses nothing that
//! the durability policy promised to keep. [`save`] doubles as the
//! checkpoint: it writes the full image and truncates the log.
//! Structural operations that are *not* logged ([`build`],
//! [`FixDatabase::vacuum`]) leave the log unable to extend the old
//! image, so the next `write` checkpoints first — nothing is lost, one
//! save is paid at the next mutation instead of inside the structural op.
//!
//! [`save`]: FixDatabase::save
//! [`build`]: FixDatabase::build
//! [`vacuum`]: FixDatabase::vacuum

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fix_obs::{
    names, Category, Event, EventRecorder, FieldValue, MetricsRegistry, Reportable, Severity, Stage,
};
use fix_storage::{wal_dir, Durability, FaultPlan, Wal, WalStats};

use crate::batch::{WriteBatch, WriteOp};
use crate::builder::{BuildStats, FixIndex};
use crate::collection::{Collection, DocId};
use crate::error::FixError;
use crate::options::FixOptions;
use crate::persist::VerifyReport;
use crate::query::{QueryHits, QueryOutcome};
use crate::session::QuerySession;

/// `wal_stale_reason` value: no image has been checkpointed yet.
const STALE_NO_IMAGE: u8 = 0;
/// `wal_stale_reason` value: an un-logged structural change
/// (`build`, `vacuum`) outdated the image.
const STALE_STRUCTURAL: u8 = 1;
/// `wal_stale_reason` value: a WAL append failed and poisoned the log.
const STALE_APPEND_FAILED: u8 = 2;

/// A FIX database: a document collection plus (once built or loaded) its
/// index, optionally bound to a file path for persistence.
pub struct FixDatabase {
    path: Option<PathBuf>,
    coll: Arc<Collection>,
    index: Option<Arc<FixIndex>>,
    /// The database's metrics registry; sessions created via
    /// [`FixDatabase::session`] record into it.
    metrics: Arc<MetricsRegistry>,
    /// Max element nesting accepted by [`FixDatabase::add_xml`] before an
    /// index exists (afterwards the index options govern). Set from
    /// [`FixOptions::max_parse_depth`] on build/open.
    parse_depth: usize,
    /// The write-ahead log, once the first durable write engages it
    /// (path-bound + indexed databases only).
    wal: Option<Wal>,
    /// True ⇔ the in-memory state equals the saved image plus the WAL's
    /// records, i.e. the log is allowed to keep extending that image.
    /// Cleared by un-logged structural changes (`build`, `vacuum`) and
    /// by WAL append failures; the next `write` checkpoints first.
    /// Atomic only so `save(&self)` can set it.
    wal_extends_image: AtomicBool,
    /// Why `wal_extends_image` is false (one of the `STALE_*` values) —
    /// flight-recorder narration for the checkpoint the next write runs.
    /// Only meaningful while the flag is false.
    wal_stale_reason: AtomicU8,
    /// The flight recorder: a bounded ring of structured engine events
    /// shared with the WAL and the buffer pool (see `DESIGN.md` §16).
    events: Arc<EventRecorder>,
    /// Current durability policy (seeded from [`FixOptions::durability`]
    /// at build, adjustable at runtime via
    /// [`FixDatabase::set_durability`]).
    durability: Durability,
    /// WAL segment seal threshold, from [`FixOptions::wal_seal_bytes`].
    wal_seal_bytes: u64,
    /// Deterministic WAL write fault for crash testing; applied to the
    /// log when it is (re)created and forwarded when already live.
    wal_fault: Option<FaultPlan>,
    /// Set when a write-side disk-full failure flipped the database into
    /// read-only degradation: mutations fail fast with
    /// [`FixError::ReadOnly`] carrying this cause while queries keep
    /// serving; [`FixDatabase::try_resume`] clears it once space is
    /// back. Behind a mutex only because `save(&self)` can set it.
    read_only: Mutex<Option<String>>,
}

/// What [`FixDatabase::repair`] did: the quarantine it answered and the
/// shape of the rebuilt snapshot.
#[derive(Debug, Clone)]
pub struct RepairReport {
    /// Pages the buffer pool had quarantined when repair started.
    pub quarantined_before: u64,
    /// Documents re-serialized through their primary pages.
    pub documents: usize,
    /// Tombstones carried over unchanged.
    pub tombstones: usize,
    /// Index entries in the rebuilt base tree.
    pub entries: u64,
    /// Whether the repaired image was checkpointed to the bound path
    /// (false only for an unbound, in-memory database).
    pub checkpointed: bool,
    /// Wall time of the rebuild (excluding the checkpoint).
    pub wall: std::time::Duration,
}

impl std::fmt::Display for RepairReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "repaired {} quarantined page(s): rebuilt {} entries from {} document(s) ({} tombstoned), image {}",
            self.quarantined_before,
            self.entries,
            self.documents,
            self.tombstones,
            if self.checkpointed {
                "checkpointed"
            } else {
                "not checkpointed (no bound path)"
            }
        )
    }
}

impl FixDatabase {
    /// Assembles a database around already-wrapped parts, seeding the
    /// write-path policy knobs from the index's options (or the
    /// collection defaults when no index exists yet).
    fn assemble(
        path: Option<PathBuf>,
        coll: Arc<Collection>,
        index: Option<Arc<FixIndex>>,
        metrics: Arc<MetricsRegistry>,
        parse_depth: usize,
        wal_extends_image: bool,
    ) -> Self {
        let defaults;
        let o = match index.as_deref() {
            Some(i) => i.options(),
            None => {
                defaults = FixOptions::collection();
                &defaults
            }
        };
        let (durability, wal_seal_bytes) = (o.durability, o.wal_seal_bytes);
        let events = EventRecorder::shared(o.event_capacity);
        events.set_slow_threshold_ns(o.slow_op_ns);
        if let Some(i) = index.as_deref() {
            i.pool.pool().attach_events(events.clone());
        }
        Self {
            path,
            coll,
            index,
            metrics,
            parse_depth,
            wal: None,
            wal_extends_image: AtomicBool::new(wal_extends_image),
            wal_stale_reason: AtomicU8::new(STALE_NO_IMAGE),
            events,
            durability,
            wal_seal_bytes,
            wal_fault: None,
            read_only: Mutex::new(None),
        }
    }

    /// Creates an empty, unbound in-memory database.
    pub fn in_memory() -> Self {
        Self::assemble(
            None,
            Arc::new(Collection::new()),
            None,
            Arc::new(MetricsRegistry::new()),
            fix_xml::DEFAULT_MAX_DEPTH,
            false,
        )
    }

    /// Opens the database file at `path`, loading it if it exists or
    /// starting empty (bound to that path, so [`FixDatabase::save`] knows
    /// where to write) if it does not.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, FixError> {
        Self::open_inner(path.as_ref(), None)
    }

    /// [`FixDatabase::open`] attaching a paged file's pages to an existing
    /// shared [`BufferPool`](fix_storage::BufferPool) — several open
    /// databases then compete for the
    /// same bounded frame budget instead of each holding its own. Opening
    /// an in-memory-format (v3/v2) file this way simply ignores the pool.
    pub fn open_shared(
        path: impl AsRef<Path>,
        pool: &Arc<fix_storage::BufferPool>,
    ) -> Result<Self, FixError> {
        Self::open_inner(path.as_ref(), Some(pool))
    }

    fn open_inner(
        path: &Path,
        pool: Option<&Arc<fix_storage::BufferPool>>,
    ) -> Result<Self, FixError> {
        let metrics = Arc::new(MetricsRegistry::new());
        let existed = path.exists();
        let mut load_ns = 0u64;
        let mut load_bytes = 0u64;
        let (coll, index) = if existed {
            let start = Instant::now();
            // `bytes` is what open physically read: the whole file for
            // v3/v2, just the superblock + metadata tail for paged (v4)
            // files — the counter shows paged cold-start cost directly.
            let (c, i, bytes) = crate::persist::load_any(path, pool)?;
            metrics
                .histogram(names::PERSIST_LOAD_NS)
                .record_duration(start.elapsed());
            metrics.counter(names::PERSIST_BYTES_READ).add(bytes);
            load_ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            load_bytes = bytes;
            (c, Some(Arc::new(i)))
        } else {
            (Collection::new(), None)
        };
        let parse_depth = index
            .as_deref()
            .map(|i| i.options().max_parse_depth)
            .unwrap_or(fix_xml::DEFAULT_MAX_DEPTH);
        // A loaded image *is* what the log (if any) extends; a fresh path
        // has no image, so the first write checkpoints one first.
        let mut db = Self::assemble(
            Some(path.to_path_buf()),
            Arc::new(coll),
            index,
            metrics,
            parse_depth,
            existed,
        );
        if db.events.enabled() {
            if existed {
                db.events.record_span(
                    Category::Persist,
                    Severity::Info,
                    "open",
                    load_ns,
                    vec![
                        ("bytes", FieldValue::U64(load_bytes)),
                        ("documents", FieldValue::U64(db.len() as u64)),
                    ],
                );
            } else {
                db.events.record(
                    Category::Persist,
                    Severity::Info,
                    "open",
                    vec![("created", FieldValue::Bool(true))],
                );
            }
        }
        if existed && db.index.is_some() && wal_dir(path).is_dir() {
            db.replay_wal(path)?;
        }
        Ok(db)
    }

    /// Crash recovery: replays the WAL beside `path` onto the
    /// just-loaded image, re-creating the pre-crash logical state —
    /// same documents, tombstones, and query answers. Delta seal points
    /// are honored, so the tier layout is re-created too; it matches the
    /// writer's exactly when the writer ran with the default compaction
    /// policy (`compact_ratio`/`tier_fanout` are process policy, not
    /// persisted, so replay applies the loaded defaults).
    fn replay_wal(&mut self, path: &Path) -> Result<(), FixError> {
        let token = fix_storage::db_token(path)?;
        let (wal, segments) =
            Wal::recover(&wal_dir(path), token, self.durability, self.wal_seal_bytes)?;
        wal.attach_obs(&self.metrics, self.events.clone());
        if self.events.enabled() {
            let r = wal.recovery();
            if r.stale_discarded {
                self.events.record(
                    Category::Recovery,
                    Severity::Warn,
                    "recovery.token_mismatch",
                    vec![("wiped_segments", FieldValue::U64(r.wiped_segments))],
                );
            }
            if r.torn_tail {
                self.events.record(
                    Category::Recovery,
                    Severity::Warn,
                    "recovery.torn_tail",
                    vec![("truncated_bytes", FieldValue::U64(r.torn_bytes))],
                );
            }
        }
        let t0 = Instant::now();
        let mut replayed = 0u64;
        let mut sealed = 0u64;
        for seg in &segments {
            for rec in &seg.records {
                let batch = WriteBatch::decode(rec).map_err(|detail| FixError::Corrupt {
                    section: "wal".into(),
                    detail,
                })?;
                self.apply_ops(batch.ops())?;
                replayed += 1;
            }
            if seg.sealed {
                sealed += 1;
                let detail = self
                    .index
                    .as_mut()
                    .and_then(Arc::get_mut)
                    .and_then(FixIndex::seal_delta_detailed);
                if let Some(detail) = detail {
                    self.note_seal(&detail);
                }
            }
        }
        if self.events.enabled() {
            self.events.record_span(
                Category::Recovery,
                Severity::Info,
                "recovery.replay",
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                vec![
                    ("records", FieldValue::U64(replayed)),
                    ("segments", FieldValue::U64(segments.len() as u64)),
                    ("sealed_segments", FieldValue::U64(sealed)),
                ],
            );
        }
        self.metrics.counter(names::WAL_REPLAYED).add(replayed);
        self.wal = Some(wal);
        self.report_wal_metrics();
        Ok(())
    }

    /// Wraps an already-constructed collection/index pair (escape hatch
    /// for experiment code that built the parts by hand).
    pub fn from_parts(coll: Collection, index: Option<FixIndex>) -> Self {
        let parse_depth = index
            .as_ref()
            .map(|i| i.options().max_parse_depth)
            .unwrap_or(fix_xml::DEFAULT_MAX_DEPTH);
        Self::assemble(
            None,
            Arc::new(coll),
            index.map(Arc::new),
            Arc::new(MetricsRegistry::new()),
            parse_depth,
            false,
        )
    }

    /// Tears the database back into its parts. Fails with
    /// [`FixError::SnapshotInUse`] while [`QuerySession`] snapshots are
    /// alive, because the parts would no longer be exclusively owned.
    pub fn into_parts(self) -> Result<(Collection, Option<FixIndex>), FixError> {
        let coll = Arc::try_unwrap(self.coll).map_err(|_| FixError::SnapshotInUse)?;
        let index = match self.index {
            None => None,
            Some(i) => Some(Arc::try_unwrap(i).map_err(|_| FixError::SnapshotInUse)?),
        };
        Ok((coll, index))
    }

    /// Adds one XML document — a one-op [`WriteBatch`] through
    /// [`FixDatabase::write`]. Before [`FixDatabase::build`] this only
    /// grows the collection; afterwards the document is feature-extracted
    /// into the index's delta (durably, via the WAL, when the database is
    /// path-bound), and when the delta has grown past
    /// [`FixOptions::compact_ratio`] × the base tree it is folded into
    /// the base automatically (the explicit trigger is
    /// [`FixDatabase::compact`]).
    pub fn add_xml(&mut self, xml: &str) -> Result<DocId, FixError> {
        let mut batch = WriteBatch::new();
        batch.add_xml(xml);
        let ids = self.write(batch)?;
        Ok(ids[0])
    }

    /// Commits an atomic batch of mutations and returns the ids assigned
    /// to its adds, in batch order.
    ///
    /// The batch is validated up front (XML parses within the depth
    /// limit, removed ids exist) and rejected whole on the first problem
    /// — nothing is logged or applied. On a path-bound, indexed database
    /// the batch is then appended to the write-ahead log as one record
    /// (made durable per [`FixDatabase::durability`]) before being
    /// applied in memory, so it survives a crash without a full
    /// [`FixDatabase::save`]; crash recovery replays it all or not at
    /// all. Before [`FixDatabase::build`], only adds are accepted
    /// (removes need an index) and they go straight into the collection.
    pub fn write(&mut self, batch: WriteBatch) -> Result<Vec<DocId>, FixError> {
        if batch.is_empty() {
            return Ok(Vec::new());
        }
        self.check_writable()?;
        if self.index.is_none() {
            return self.write_unindexed(&batch);
        }
        // Exclusivity probe *before* touching the log: a snapshot in use
        // must not leave a logged-but-unapplied record behind.
        {
            let idx = self.index.as_mut().expect("checked above");
            Arc::get_mut(idx).ok_or(FixError::SnapshotInUse)?;
            Arc::get_mut(&mut self.coll).ok_or(FixError::SnapshotInUse)?;
        }
        let ops = batch.ops().len() as u64;
        let t0 = Instant::now();
        self.validate(&batch)?;
        let validate_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let t_wal = Instant::now();
        let sealed = if self.path.is_some() {
            self.commit_to_wal(&batch)?
        } else {
            false
        };
        let wal_ns = u64::try_from(t_wal.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let ids = self.apply_ops(batch.ops())?;
        if self.events.enabled() {
            // One event per commit (not one per phase) keeps the recorder
            // inside the write path's overhead budget; the phases ride
            // along as payload fields.
            self.events.record_span(
                Category::Commit,
                Severity::Info,
                "commit",
                u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                vec![
                    ("ops", FieldValue::U64(ops)),
                    ("validate_ns", FieldValue::U64(validate_ns)),
                    ("wal_ns", FieldValue::U64(wal_ns)),
                    ("sealed", FieldValue::Bool(sealed)),
                ],
            );
        }
        if sealed {
            // The record that filled the WAL segment is the last one in
            // it; replay seals the delta right after applying it, so the
            // live path must too for the tier layout to match.
            let detail = self
                .index
                .as_mut()
                .and_then(Arc::get_mut)
                .and_then(FixIndex::seal_delta_detailed);
            if let Some(detail) = detail {
                self.note_seal(&detail);
            }
        }
        self.report_wal_metrics();
        Ok(ids)
    }

    /// The pre-build arm of [`FixDatabase::write`]: adds go straight into
    /// the collection (there is no index to log against yet; `build` +
    /// `save` establish the first durable image), removes are rejected.
    fn write_unindexed(&mut self, batch: &WriteBatch) -> Result<Vec<DocId>, FixError> {
        if batch
            .ops()
            .iter()
            .any(|op| matches!(op, WriteOp::Remove(_)))
        {
            return Err(FixError::NoIndex);
        }
        self.validate(batch)?;
        let depth = self.parse_depth;
        let coll = Arc::get_mut(&mut self.coll).ok_or(FixError::SnapshotInUse)?;
        let mut ids = Vec::new();
        for op in batch.ops() {
            let WriteOp::AddXml(xml) = op else {
                unreachable!("removes rejected above")
            };
            ids.push(coll.add_xml_limited(xml, depth)?);
        }
        Ok(ids)
    }

    /// Rejects a batch that could fail partway through application:
    /// every add must parse within the depth limit, every remove must
    /// name a document that exists (counting adds earlier in the batch).
    fn validate(&self, batch: &WriteBatch) -> Result<(), FixError> {
        let depth = self
            .index
            .as_deref()
            .map(|i| i.options().max_parse_depth)
            .unwrap_or(self.parse_depth);
        let mut next_id = self.coll.len() as u32;
        for op in batch.ops() {
            match op {
                WriteOp::AddXml(xml) => {
                    let mut labels = fix_xml::LabelTable::new();
                    fix_xml::parse_document_limited(xml, &mut labels, depth)?;
                    next_id += 1;
                }
                WriteOp::Remove(doc) => {
                    if doc.0 >= next_id {
                        return Err(FixError::NoSuchDocument { doc: doc.0 });
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies a validated batch's operations in order — the one code
    /// path shared by live writes and WAL replay, so both evolve the
    /// index (including automatic compaction decisions) identically.
    fn apply_ops(&mut self, ops: &[WriteOp]) -> Result<Vec<DocId>, FixError> {
        let mut ids = Vec::new();
        for op in ops {
            {
                let idx = self.index.as_mut().ok_or(FixError::NoIndex)?;
                let idx_mut = Arc::get_mut(idx).ok_or(FixError::SnapshotInUse)?;
                match op {
                    WriteOp::AddXml(xml) => {
                        let coll = Arc::get_mut(&mut self.coll).ok_or(FixError::SnapshotInUse)?;
                        ids.push(idx_mut.insert_xml(coll, xml)?);
                    }
                    WriteOp::Remove(doc) => idx_mut.remove_document(*doc),
                }
            }
            self.maybe_auto_compact();
        }
        self.report_delta_gauges();
        Ok(ids)
    }

    /// Folds the delta into the base when it has outgrown
    /// [`FixOptions::compact_ratio`]. Checked after every applied op —
    /// live and replayed alike — so recovery reproduces the same
    /// compaction points.
    fn maybe_auto_compact(&mut self) {
        let Some(idx) = self.index.as_mut() else {
            return;
        };
        let Some(idx_mut) = Arc::get_mut(idx) else {
            return;
        };
        let ratio = idx_mut.options().compact_ratio;
        let (base, delta) = (idx_mut.btree_stats().entries, idx_mut.delta_len());
        if ratio > 0.0 && delta > 0 && delta as f64 >= ratio * base as f64 {
            let start = Instant::now();
            let compacted = idx_mut.compact();
            *idx = Arc::new(compacted);
            self.attach_index_events();
            self.note_compaction(start.elapsed(), delta);
        }
    }

    /// Ensures the log can extend the on-disk image (checkpointing if it
    /// cannot), lazily engages it, and appends the batch as one record.
    /// Returns whether the append sealed the tail segment.
    fn commit_to_wal(&mut self, batch: &WriteBatch) -> Result<bool, FixError> {
        let path = self.path.clone().expect("caller checked path.is_some()");
        if !self.wal_extends_image.load(Ordering::Acquire) {
            // The image on disk (if any) does not reflect some un-logged
            // change (build, vacuum, a failed append). Write a fresh
            // image first; save_to also rebases/invalidates the log.
            let reason = self.stale_reason_name();
            let t0 = Instant::now();
            self.save_to(&path)?;
            if self.events.enabled() {
                self.events.record_span(
                    Category::Persist,
                    Severity::Info,
                    "checkpoint",
                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    vec![("reason", FieldValue::Str(reason.into()))],
                );
            }
        }
        if self.wal.is_none() {
            let token = fix_storage::db_token(&path)?;
            let (wal, _stale) =
                Wal::recover(&wal_dir(&path), token, self.durability, self.wal_seal_bytes)?;
            wal.attach_obs(&self.metrics, self.events.clone());
            // Anything recover salvaged is already part of the image (or
            // predates it): this database's in-memory state was not built
            // from those records, so force the log empty before use.
            if !wal.is_empty() {
                let token = token.expect("image exists: checkpointed above or loaded");
                wal.rebase(token)?;
            }
            wal.set_fault(self.wal_fault.take());
            self.wal = Some(wal);
        }
        let wal = self.wal.as_ref().expect("just engaged");
        match wal.append(&batch.encode()) {
            Ok(outcome) => Ok(outcome.sealed),
            Err(e) => {
                // The tail may hold a torn record now. Recovery truncates
                // torn tails, so the on-disk state is still image + the
                // previously committed records — consistent with memory,
                // since this batch was not applied. Stop extending the
                // log; the next write checkpoints and starts a fresh one.
                if self.events.enabled() {
                    self.events.record(
                        Category::Wal,
                        Severity::Warn,
                        "wal.append_failed",
                        vec![("error", FieldValue::Str(e.to_string()))],
                    );
                }
                self.wal = None;
                self.wal_extends_image.store(false, Ordering::Release);
                self.wal_stale_reason
                    .store(STALE_APPEND_FAILED, Ordering::Release);
                Err(self.note_write_failure("WAL append", e))
            }
        }
    }

    /// Folds the index's delta run into its base B+-tree. Like
    /// [`FixDatabase::vacuum`], this *replaces* the snapshot rather than
    /// mutating it, so it works with live sessions — they keep serving the
    /// pre-compaction snapshot (which answers identically; compaction
    /// changes layout, not results).
    pub fn compact(&mut self) -> Result<(), FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        let entries = idx.delta_len();
        let start = Instant::now();
        let compacted = idx.compact();
        self.index = Some(Arc::new(compacted));
        self.attach_index_events();
        self.note_compaction(start.elapsed(), entries);
        self.report_delta_gauges();
        Ok(())
    }

    /// Records one compaction in the registry and the flight recorder.
    fn note_compaction(&self, wall: std::time::Duration, entries_folded: u64) {
        self.metrics.counter(names::DELTA_COMPACTIONS).add(1);
        self.metrics
            .histogram(names::DELTA_COMPACT_NS)
            .record_duration(wall);
        if self.events.enabled() {
            self.events.record_span(
                Category::Compact,
                Severity::Info,
                "compact",
                u64::try_from(wall.as_nanos()).unwrap_or(u64::MAX),
                vec![("entries_folded", FieldValue::U64(entries_folded))],
            );
        }
    }

    /// Narrates one delta freeze in the flight recorder: the L0 freeze
    /// itself plus each size-tier cascade merge it triggered.
    fn note_seal(&self, detail: &crate::delta::SealDetail) {
        if !self.events.enabled() {
            return;
        }
        self.events.record(
            Category::Tier,
            Severity::Info,
            "tier.freeze",
            vec![("entries", FieldValue::U64(detail.entries))],
        );
        for m in &detail.merges {
            self.events.record_span(
                Category::Tier,
                Severity::Info,
                "tier.merge",
                m.wall_ns,
                vec![
                    ("level", FieldValue::U64(m.level as u64)),
                    ("runs_in", FieldValue::U64(m.runs_in as u64)),
                    ("entries", FieldValue::U64(m.entries)),
                ],
            );
        }
    }

    /// Re-points the (possibly re-created) index's buffer pool at this
    /// database's flight recorder. Called wherever a fresh [`FixIndex`]
    /// (and thus a fresh pool) replaces the current one.
    fn attach_index_events(&self) {
        if let Some(idx) = self.index.as_deref() {
            idx.pool.pool().attach_events(self.events.clone());
        }
    }

    /// Refreshes the delta size gauges after a delta transition (insert
    /// or compaction).
    fn report_delta_gauges(&self) {
        if let Some(idx) = self.index.as_deref() {
            let d = idx.delta_stats();
            self.metrics
                .gauge(names::DELTA_ENTRIES)
                .set(d.entries as i64);
            self.metrics.gauge(names::DELTA_BYTES).set(d.bytes as i64);
        }
    }

    /// Builds (or rebuilds) the index over the current collection with an
    /// in-memory page pool. Returns the construction statistics.
    pub fn build(&mut self, opts: FixOptions) -> Result<&BuildStats, FixError> {
        if Arc::get_mut(&mut self.coll).is_none() {
            return Err(FixError::SnapshotInUse);
        }
        self.adopt_write_policy(&opts);
        let coll = Arc::get_mut(&mut self.coll).expect("probed above");
        let idx = FixIndex::build(coll, opts);
        self.index = Some(Arc::new(idx));
        self.attach_index_events();
        self.invalidate_wal_base();
        self.report_metrics();
        Ok(self.stats().expect("index was just built"))
    }

    /// Adopts the write-path policy knobs of a (re)build's options.
    fn adopt_write_policy(&mut self, opts: &FixOptions) {
        self.parse_depth = opts.max_parse_depth;
        self.durability = opts.durability;
        self.wal_seal_bytes = opts.wal_seal_bytes;
        if let Some(wal) = self.wal.as_ref() {
            wal.set_durability(opts.durability);
        }
        self.events.set_slow_threshold_ns(opts.slow_op_ns);
        if opts.event_capacity != self.events.capacity() {
            // Ring capacity is fixed at construction, so a capacity change
            // means a fresh recorder. Components attach lazily (the WAL on
            // its next engagement, the pool right after the rebuild that
            // brought the new options), so new events land in the new ring.
            self.events = EventRecorder::shared(opts.event_capacity);
            self.events.set_slow_threshold_ns(opts.slow_op_ns);
        }
    }

    /// Marks the on-disk image as no longer current after an un-logged
    /// structural change ([`build`](Self::build), [`vacuum`](Self::vacuum)).
    /// The log (if engaged) still extends the *old* image — both stay on
    /// disk untouched, so a crash now recovers the pre-change state; the
    /// next [`write`](Self::write) checkpoints the new one first.
    fn invalidate_wal_base(&self) {
        self.wal_extends_image.store(false, Ordering::Release);
        self.wal_stale_reason
            .store(STALE_STRUCTURAL, Ordering::Release);
    }

    /// The human name of the current `wal_stale_reason` value.
    fn stale_reason_name(&self) -> &'static str {
        match self.wal_stale_reason.load(Ordering::Acquire) {
            STALE_STRUCTURAL => "structural_change",
            STALE_APPEND_FAILED => "append_failed",
            _ => "no_image",
        }
    }

    /// Builds (or rebuilds) the index with its pages in a real file at
    /// `pages` — the configuration for corpora larger than memory.
    pub fn build_on_disk(
        &mut self,
        opts: FixOptions,
        pages: impl AsRef<Path>,
    ) -> Result<&BuildStats, FixError> {
        if Arc::get_mut(&mut self.coll).is_none() {
            return Err(FixError::SnapshotInUse);
        }
        self.adopt_write_policy(&opts);
        let coll = Arc::get_mut(&mut self.coll).expect("probed above");
        let idx = crate::builder::build_on_disk_impl(coll, opts, pages.as_ref())?;
        self.index = Some(Arc::new(idx));
        self.attach_index_events();
        self.invalidate_wal_base();
        self.report_metrics();
        Ok(self.stats().expect("index was just built"))
    }

    /// Runs an XPath query through the index, end to end on the fallible
    /// read path: a page that cannot be read (I/O failure, CRC mismatch,
    /// quarantine) surfaces as a structured [`FixError::Io`] /
    /// [`FixError::Corrupt`] naming the section at fault — never a panic,
    /// never a wrong answer.
    pub fn query(&self, query: &str) -> Result<QueryOutcome, FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        let plan = idx.compile(&self.coll, query).map_err(FixError::from)?;
        let mut ctl = crate::query::QueryCtl::unbounded();
        let candidates = idx.try_scan_plan(&plan, &mut ctl)?;
        let (outcome, _) =
            idx.try_refine_with_threads_timed(&self.coll, plan.path(), candidates, 1, &ctl)?;
        Ok(outcome)
    }

    /// Parses a query and returns a lazy iterator over its
    /// `(document, node)` matches, in document order. Pruning runs up
    /// front; refinement is paid one candidate document at a time, so
    /// consumers that stop early skip the remaining evaluation work.
    pub fn query_iter(&self, query: &str) -> Result<QueryHits<'_>, FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        Ok(idx.query_iter(&self.coll, query)?)
    }

    /// Opens a concurrent query snapshot: a cheaply cloneable,
    /// `Send + Sync` handle over the current collection and index, with a
    /// shared plan cache and parallel refinement (see [`QuerySession`]).
    /// The session stays on this exact snapshot even if the database is
    /// later vacuumed or rebuilt.
    pub fn session(&self) -> Result<QuerySession, FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        Ok(QuerySession::new(self.coll.clone(), idx.clone()).with_registry(self.metrics.clone()))
    }

    /// Tombstones a document — a one-op [`WriteBatch`] through
    /// [`FixDatabase::write`] (so the removal is WAL-durable on a
    /// path-bound database). Fails with [`FixError::NoSuchDocument`] for
    /// an id the collection never assigned.
    pub fn remove_document(&mut self, doc: DocId) -> Result<(), FixError> {
        let mut batch = WriteBatch::new();
        batch.remove_document(doc);
        self.write(batch)?;
        Ok(())
    }

    /// Pre-WAL compatibility shim: [`FixDatabase::add_xml`] followed by a
    /// full [`FixDatabase::save`] when path-bound, reproducing the old
    /// save-per-mutation durability at its old full-rewrite cost.
    #[deprecated(
        since = "0.7.0",
        note = "mutations are WAL-durable now; use add_xml (or write), and save() to checkpoint"
    )]
    pub fn add_xml_synced(&mut self, xml: &str) -> Result<DocId, FixError> {
        let id = self.add_xml(xml)?;
        if self.path.is_some() && self.index.is_some() {
            self.save()?;
        }
        Ok(id)
    }

    /// Pre-WAL compatibility shim: [`FixDatabase::remove_document`]
    /// followed by a full [`FixDatabase::save`] when path-bound.
    #[deprecated(
        since = "0.7.0",
        note = "mutations are WAL-durable now; use remove_document (or write), and save() to checkpoint"
    )]
    pub fn remove_document_synced(&mut self, doc: DocId) -> Result<(), FixError> {
        self.remove_document(doc)?;
        if self.path.is_some() {
            self.save()?;
        }
        Ok(())
    }

    /// Rebuilds collection and index without tombstoned documents. This
    /// *replaces* the snapshot rather than mutating it, so it works with
    /// live sessions — they simply keep serving the pre-vacuum state.
    pub fn vacuum(&mut self) -> Result<(), FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        let (coll, index) = idx.vacuum(&self.coll);
        self.coll = Arc::new(coll);
        self.index = Some(Arc::new(index));
        self.attach_index_events();
        // Vacuum renumbers documents, so WAL records (which name ids)
        // cannot extend the new state.
        self.invalidate_wal_base();
        // Unlike a rebuild — which leaves logical content untouched —
        // vacuum changes *visible* state (ids, document count). On a
        // path-bound database that change must not evaporate in a
        // crash, so checkpoint it now rather than on the next write.
        if let Some(path) = self.path.clone() {
            self.save_to(&path)?;
        }
        Ok(())
    }

    /// Online repair for quarantined *derived* pages: re-serializes every
    /// document through its primary pages and rebuilds every derived
    /// structure (B-tree, edge dictionary, clustered heap, tier runs)
    /// from scratch — the same rebuild-from-source-of-truth guarantee
    /// salvage gives, but id-preserving and in-process. Like
    /// [`FixDatabase::vacuum`] this *replaces* the snapshot, so live
    /// [`QuerySession`]s keep serving the old one throughout; on a
    /// path-bound database the repaired image is checkpointed so the file
    /// stops carrying the corrupt pages. The fresh snapshot reads through
    /// a fresh pool, so the quarantine set starts empty.
    ///
    /// A *primary* (document) page that cannot be read is data loss that
    /// repair must not paper over: it surfaces as the structured
    /// [`FixError::Corrupt`]/[`FixError::Io`] of the failing read — reach
    /// for `fixdb verify --salvage` then, which recovers everything else
    /// and reports exactly what was dropped.
    pub fn repair(&mut self) -> Result<RepairReport, FixError> {
        self.check_writable()?;
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?.clone();
        let quarantined_before = idx.pool_stats().quarantined as u64;
        let t0 = Instant::now();
        let mut fresh = Collection::new();
        for i in 0..self.coll.len() {
            let d = self.coll.try_doc(DocId(i as u32))?;
            let xml = fix_xml::to_xml_string(d, &self.coll.labels);
            fresh
                .add_xml_limited(&xml, usize::MAX)
                .expect("invariant: a re-serialized parsed document parses");
        }
        let mut rebuilt = FixIndex::build(&mut fresh, idx.options().clone());
        rebuilt.removed = idx.removed.clone();
        let report = RepairReport {
            quarantined_before,
            documents: fresh.len(),
            tombstones: rebuilt.removed.len(),
            entries: rebuilt.btree.len(),
            checkpointed: self.path.is_some(),
            wall: t0.elapsed(),
        };
        self.coll = Arc::new(fresh);
        self.index = Some(Arc::new(rebuilt));
        self.attach_index_events();
        // Un-logged structural change: WAL records name the old image.
        // The checkpoint below (or the next write, when unbound) rebases.
        self.invalidate_wal_base();
        if let Some(path) = self.path.clone() {
            self.save_to(&path)?;
        }
        if self.events.enabled() {
            self.events.record_span(
                Category::Recovery,
                Severity::Warn,
                "repair",
                u64::try_from(report.wall.as_nanos()).unwrap_or(u64::MAX),
                vec![
                    ("quarantined", FieldValue::U64(report.quarantined_before)),
                    ("documents", FieldValue::U64(report.documents as u64)),
                    ("entries", FieldValue::U64(report.entries)),
                ],
            );
        }
        self.report_metrics();
        Ok(report)
    }

    /// Pages the index's buffer pool has quarantined (a CRC or I/O
    /// failure on their read; see [`FixDatabase::repair`]). Empty when
    /// healthy or when no index exists.
    pub fn quarantined_pages(&self) -> Vec<fix_storage::PageId> {
        self.index
            .as_deref()
            .map(|i| i.pool.quarantined())
            .unwrap_or_default()
    }

    /// Saves to the bound path (set by [`FixDatabase::open`] or a prior
    /// [`FixDatabase::save_as`]). The index must exist — the file format
    /// stores collection and index together.
    pub fn save(&self) -> Result<(), FixError> {
        let path = self.path.clone().ok_or(FixError::NoPath)?;
        self.save_to(&path)
    }

    /// Saves to `path` and binds the database to it. The WAL (if any)
    /// stays with the *old* path — it extends the old image there, which
    /// remains consistent; the new binding starts with a clean slate.
    pub fn save_as(&mut self, path: impl AsRef<Path>) -> Result<(), FixError> {
        self.save_to(path.as_ref())?;
        self.path = Some(path.as_ref().to_path_buf());
        self.wal = None;
        // The image just written at the new path is exactly the current
        // state, so the (empty, not-yet-engaged) log extends it.
        self.wal_extends_image.store(true, Ordering::Release);
        Ok(())
    }

    /// Writes the full image at `path`. When `path` is the bound path
    /// this doubles as the WAL checkpoint: the engaged log is rebased
    /// (emptied and re-pinned to the fresh image) and logged writes may
    /// resume extending it. Saving elsewhere instead discards any stale
    /// log lying beside the target, so a later `open` of that copy
    /// cannot replay records that are already inside it.
    fn save_to(&self, path: &Path) -> Result<(), FixError> {
        self.check_writable()?;
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        let start = Instant::now();
        if let Err(e) = crate::persist::save_impl(path, &self.coll, idx) {
            return Err(self.note_write_failure("save", e));
        }
        self.metrics
            .histogram(names::PERSIST_SAVE_NS)
            .record_duration(start.elapsed());
        let mut saved_bytes = 0u64;
        if let Ok(m) = std::fs::metadata(path) {
            saved_bytes = m.len();
            self.metrics
                .counter(names::PERSIST_BYTES_WRITTEN)
                .add(m.len());
        }
        if self.events.enabled() {
            self.events.record_span(
                Category::Persist,
                Severity::Info,
                "save",
                u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
                vec![("bytes", FieldValue::U64(saved_bytes))],
            );
        }
        let bound_here = self.path.as_deref() == Some(path);
        match self.wal.as_ref() {
            Some(wal) if bound_here => {
                let token = fix_storage::db_token(path)?.expect("save_impl just wrote the file");
                wal.rebase(token)?;
            }
            _ => {
                let stale = wal_dir(path);
                if stale.is_dir() {
                    std::fs::remove_dir_all(&stale)?;
                }
            }
        }
        if bound_here {
            self.wal_extends_image.store(true, Ordering::Release);
        }
        Ok(())
    }

    /// Integrity-checks the bound database file without loading it: walks
    /// every frame, validates every checksum and length, and returns the
    /// per-section report (the engine behind `fixdb verify`). Corruption
    /// is *data* here, not an error — inspect
    /// [`VerifyReport::is_ok`]; `Err` means the file could not be read at
    /// all (or the database has no bound path).
    pub fn verify(&self) -> Result<VerifyReport, FixError> {
        let path = self.path.as_deref().ok_or(FixError::NoPath)?;
        let start = Instant::now();
        let report = crate::persist::verify_file(path)?;
        self.metrics
            .histogram(names::PERSIST_VERIFY_NS)
            .record_duration(start.elapsed());
        self.metrics
            .counter(names::PERSIST_BYTES_READ)
            .add(report.file_len);
        self.metrics
            .counter(names::PERSIST_CORRUPTION_DETECTED)
            .add(report.corrupt_count() as u64);
        Ok(report)
    }

    /// The database's metrics registry. Sessions opened via
    /// [`FixDatabase::session`] record their per-query stage timings and
    /// work counters here; [`FixDatabase::report_metrics`] refreshes the
    /// level-style gauges (index shape, build stats, scan totals).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The flight-recorder window: every event still in the ring, merged
    /// with the retained `Warn`+ list, in sequence order (see
    /// [`EventRecorder::events`]). The engine lifecycle — commits, WAL
    /// seals, tier freezes and merges, compactions, saves, recovery
    /// replays, pool evictions — narrates itself here.
    pub fn events(&self) -> Vec<Event> {
        self.events.events()
    }

    /// The slow-op log: recorded spans whose duration met
    /// [`FixOptions::slow_op_ns`], oldest first, payloads intact.
    pub fn slow_ops(&self) -> Vec<Event> {
        self.events.slow_ops()
    }

    /// The shared flight recorder itself (threshold control and live
    /// follow-by-sequence for tooling).
    pub fn event_recorder(&self) -> &Arc<EventRecorder> {
        &self.events
    }

    /// Refreshes every level-style gauge in the registry from current
    /// state and materializes the standard per-query instruments (so an
    /// exposition shows them at zero before any query has run). Call
    /// before [`MetricsRegistry::render_prometheus`] /
    /// [`MetricsRegistry::render_json`].
    pub fn report_metrics(&self) {
        let reg = &*self.metrics;
        reg.counter("fix_queries_total");
        reg.histogram("fix_query_wall_ns");
        for s in Stage::ALL {
            reg.histogram(s.metric_name());
        }
        reg.counter("fix_refine_candidates_total");
        reg.counter("fix_refine_producing_total");
        for h in [
            names::PERSIST_SAVE_NS,
            names::PERSIST_LOAD_NS,
            names::PERSIST_VERIFY_NS,
            names::WAL_APPEND_NS,
            names::WAL_FSYNC_NS,
        ] {
            reg.histogram(h);
        }
        for c in [
            names::PERSIST_BYTES_WRITTEN,
            names::PERSIST_BYTES_READ,
            names::PERSIST_CORRUPTION_DETECTED,
            names::DELTA_SCANS,
            names::DELTA_SCAN_ENTRIES,
            names::DELTA_SCAN_NS,
            names::DELTA_CANDIDATES_TOTAL,
            names::DELTA_COMPACTIONS,
            names::WAL_APPENDS,
            names::WAL_APPENDED_BYTES,
            names::WAL_FSYNCS,
            names::WAL_SEALS,
            names::WAL_REPLAYED,
            names::WAL_GROUP_COMMITS,
            names::LEVEL_SEALS,
            names::LEVEL_MERGES,
            names::QUERY_TIMEOUTS,
        ] {
            reg.counter(c);
        }
        reg.gauge(names::POOL_QUARANTINED);
        for g in [
            names::WAL_SEGMENTS,
            names::WAL_TAIL_RECORDS,
            names::WAL_TAIL_BYTES,
            names::WAL_GROUP_QUEUE_DEPTH,
            names::LEVEL_RUNS,
            names::LEVEL_DEPTH,
            names::LEVEL_ENTRIES,
            names::LEVEL_BYTES,
        ] {
            reg.gauge(g);
        }
        reg.histogram(names::DELTA_COMPACT_NS);
        for g in [
            "fix_plan_cache_hits",
            "fix_plan_cache_misses",
            "fix_plan_cache_evictions",
            "fix_plan_cache_entries",
            "fix_plan_cache_capacity",
        ] {
            reg.gauge(g);
        }
        if let Some(idx) = self.index.as_deref() {
            idx.stats().report(reg);
            idx.btree_stats().report(reg);
            idx.scan_stats().report(reg);
            idx.pool_stats().report(reg);
            reg.gauge("fix_index_entries").set(idx.entry_count() as i64);
            let d = idx.delta_stats();
            reg.gauge(names::DELTA_ENTRIES).set(d.entries as i64);
            reg.gauge(names::DELTA_BYTES).set(d.bytes as i64);
            // Scan totals are cumulative on the index (compaction carries
            // them forward), so bump the counters up to the level rather
            // than adding — re-reporting stays idempotent.
            for (name, target) in [
                (names::DELTA_SCANS, d.scans),
                (names::DELTA_SCAN_ENTRIES, d.scanned_entries),
                (names::DELTA_SCAN_NS, d.scan_ns),
            ] {
                let c = reg.counter(name);
                c.add(target.saturating_sub(c.value()));
            }
        } else {
            reg.gauge(names::DELTA_ENTRIES);
            reg.gauge(names::DELTA_BYTES);
        }
        self.report_wal_metrics();
    }

    /// Refreshes the WAL counters/gauges and the delta tier gauges. WAL
    /// counters are cumulative on the log, so they are bumped up to the
    /// level rather than added — re-reporting stays idempotent.
    fn report_wal_metrics(&self) {
        let reg = &*self.metrics;
        if let Some(wal) = self.wal.as_ref() {
            let s = wal.stats();
            for (name, target) in [
                (names::WAL_APPENDS, s.appends),
                (names::WAL_APPENDED_BYTES, s.appended_bytes),
                (names::WAL_FSYNCS, s.fsyncs),
                (names::WAL_SEALS, s.seals),
            ] {
                let c = reg.counter(name);
                c.add(target.saturating_sub(c.value()));
            }
            reg.gauge(names::WAL_SEGMENTS).set(s.segments as i64);
            reg.gauge(names::WAL_TAIL_RECORDS)
                .set(s.tail_records as i64);
            reg.gauge(names::WAL_TAIL_BYTES).set(s.tail_bytes as i64);
        }
        if let Some(idx) = self.index.as_deref() {
            let d = idx.delta_stats();
            let levels = idx.delta_level_stats();
            reg.gauge(names::LEVEL_RUNS)
                .set(levels.iter().map(|l| l.runs).sum::<usize>() as i64);
            reg.gauge(names::LEVEL_DEPTH).set(levels.len() as i64);
            reg.gauge(names::LEVEL_ENTRIES)
                .set(levels.iter().map(|l| l.entries).sum::<u64>() as i64);
            reg.gauge(names::LEVEL_BYTES)
                .set(levels.iter().map(|l| l.bytes).sum::<u64>() as i64);
            for (name, target) in [
                (names::LEVEL_SEALS, d.seals),
                (names::LEVEL_MERGES, d.run_merges),
            ] {
                let c = reg.counter(name);
                c.add(target.saturating_sub(c.value()));
            }
        }
    }

    /// The document collection.
    pub fn collection(&self) -> &Collection {
        &self.coll
    }

    /// The index, if one has been built or loaded.
    pub fn index(&self) -> Option<&FixIndex> {
        self.index.as_deref()
    }

    /// Construction statistics, if an index exists.
    pub fn stats(&self) -> Option<&BuildStats> {
        self.index.as_deref().map(FixIndex::stats)
    }

    /// Buffer-pool statistics of the index's page storage (resident and
    /// pinned frames, hit/miss/eviction/flush counters, CRC failures).
    /// For a paged database this is the live view of the shared pool; for
    /// an in-memory one it reflects the in-memory page space.
    pub fn pool_stats(&self) -> Option<fix_storage::PoolStats> {
        self.index.as_deref().map(FixIndex::pool_stats)
    }

    /// The bound file path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The durability policy applied to WAL commits.
    pub fn durability(&self) -> Durability {
        self.durability
    }

    /// Changes the durability policy for subsequent writes (takes effect
    /// immediately on an engaged log — e.g. switching `Async` → `Sync`
    /// makes the next commit flush everything outstanding).
    pub fn set_durability(&mut self, durability: Durability) {
        self.durability = durability;
        if let Some(wal) = self.wal.as_ref() {
            wal.set_durability(durability);
        }
    }

    /// Changes the WAL segment seal threshold for subsequent commits
    /// (takes effect immediately on an engaged log). Seal decisions
    /// already taken are embodied in the on-disk segment boundaries, so
    /// recovery replays them unchanged whatever threshold the replaying
    /// process uses — lowering it here only makes *future* commits seal
    /// (and freeze delta runs) sooner.
    pub fn set_wal_seal_bytes(&mut self, bytes: u64) {
        self.wal_seal_bytes = bytes;
        if let Some(wal) = self.wal.as_ref() {
            wal.set_seal_bytes(bytes);
        }
    }

    /// Live write-ahead-log statistics, once a logged write has engaged
    /// the WAL (or recovery reopened one).
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(Wal::stats)
    }

    /// Per-level statistics of the delta's tiered runs (deepest level
    /// first; empty when no index exists or nothing has been sealed).
    pub fn level_stats(&self) -> Vec<fix_btree::LevelStats> {
        self.index
            .as_deref()
            .map(FixIndex::delta_level_stats)
            .unwrap_or_default()
    }

    /// Test hook: arms a deterministic write fault on the WAL (applied
    /// to the engaged log immediately, or to the next one engaged).
    #[doc(hidden)]
    pub fn set_wal_fault(&mut self, fault: Option<FaultPlan>) {
        match self.wal.as_ref() {
            Some(wal) => wal.set_fault(fault),
            None => self.wal_fault = fault,
        }
    }

    /// Why the database is read-only, or `None` when writes are enabled.
    /// A disk-full failure on a WAL append or a save/checkpoint flips the
    /// database into read-only degradation: queries keep serving, every
    /// mutation fails fast with [`FixError::ReadOnly`] instead of
    /// retrying a write that cannot fit.
    pub fn read_only_cause(&self) -> Option<String> {
        self.read_only.lock().expect("read_only lock").clone()
    }

    /// Fails with [`FixError::ReadOnly`] while the database is degraded.
    fn check_writable(&self) -> Result<(), FixError> {
        match self.read_only_cause() {
            Some(cause) => Err(FixError::ReadOnly { cause }),
            None => Ok(()),
        }
    }

    /// Classifies a write-side failure: disk-full latches the read-only
    /// state (first cause wins) and is reported as
    /// [`FixError::ReadOnly`]; anything else passes through unchanged.
    fn note_write_failure(&self, op: &str, e: std::io::Error) -> FixError {
        if !fix_storage::is_disk_full(&e) {
            return FixError::Io(e);
        }
        let cause = format!("{op} failed: {e}");
        {
            let mut ro = self.read_only.lock().expect("read_only lock");
            if ro.is_none() {
                if self.events.enabled() {
                    self.events.record(
                        Category::Persist,
                        Severity::Error,
                        "db.read_only",
                        vec![("cause", FieldValue::Str(cause.clone()))],
                    );
                }
                *ro = Some(cause.clone());
            }
        }
        FixError::ReadOnly { cause }
    }

    /// Re-probes the write path after a disk-full degradation: writes,
    /// syncs, and removes a small sibling file next to the bound database
    /// file. On success the read-only latch clears and mutations may
    /// proceed (the failure that latched it already marked the log stale,
    /// so the next logged write checkpoints a fresh image first). Returns
    /// `true` when writes are enabled — immediately so if the database
    /// never was read-only — and `false` when the probe still finds no
    /// space.
    pub fn try_resume(&mut self) -> Result<bool, FixError> {
        let Some(cause) = self.read_only_cause() else {
            return Ok(true);
        };
        if let Some(path) = self.path.clone() {
            let probe = path.with_extension("space-probe");
            match probe_space(&probe) {
                Ok(()) => {}
                Err(e) if fix_storage::is_disk_full(&e) => return Ok(false),
                Err(e) => return Err(FixError::Io(e)),
            }
        }
        *self.read_only.lock().expect("read_only lock") = None;
        if self.events.enabled() {
            self.events.record(
                Category::Persist,
                Severity::Info,
                "db.resume",
                vec![("was", FieldValue::Str(cause))],
            );
        }
        Ok(true)
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.coll.len()
    }

    /// True if the collection holds no documents.
    pub fn is_empty(&self) -> bool {
        self.coll.len() == 0
    }
}

/// The [`FixDatabase::try_resume`] space probe: create, fill, sync, and
/// remove a 64 KiB sibling file — enough headroom that a cleared probe
/// means real writes have room too, small enough to be instant.
fn probe_space(probe: &Path) -> std::io::Result<()> {
    let res = (|| {
        use std::io::Write as _;
        let mut f = std::fs::File::create(probe)?;
        f.write_all(&vec![0u8; 64 << 10])?;
        f.sync_all()
    })();
    let _ = std::fs::remove_file(probe);
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fix-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn in_memory_lifecycle() {
        let mut db = FixDatabase::in_memory();
        assert!(db.is_empty());
        assert!(matches!(db.query("//a"), Err(FixError::NoIndex)));
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        db.add_xml("<bib><book><author/></book></bib>").unwrap();
        let stats = db.build(FixOptions::collection()).unwrap();
        assert_eq!(stats.entries, 2);
        assert_eq!(db.query("//article[author]/ee").unwrap().results.len(), 1);
        // Post-build adds go through incremental insertion.
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.query("//article[author]/ee").unwrap().results.len(), 2);
    }

    #[test]
    fn clustered_absorbs_post_build_adds() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(
            FixOptions::builder()
                .clustered(true)
                .compact_ratio(0.0)
                .build(),
        )
        .unwrap();
        db.add_xml("<a><c/></a>").unwrap();
        assert_eq!(db.len(), 2);
        // The new document is served from the delta run (no compaction:
        // ratio 0.0 disables the automatic trigger).
        assert_eq!(db.index().unwrap().delta_len(), 1);
        assert_eq!(db.query("//a/b").unwrap().results.len(), 1);
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
    }

    #[test]
    fn auto_compaction_triggers_on_ratio() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        // Default ratio 0.5 with base=1: the first insert (delta 1 >=
        // 0.5 * 1) folds immediately.
        db.add_xml("<a><c/></a>").unwrap();
        let idx = db.index().unwrap();
        assert_eq!(idx.delta_len(), 0, "delta folded into the base");
        assert_eq!(idx.compaction_stats().0, 1);
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
        let snap = db.metrics().snapshot();
        assert_eq!(snap.counter(names::DELTA_COMPACTIONS), Some(1));
    }

    #[test]
    fn explicit_compact_through_facade() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection().with_compact_ratio(0.0))
            .unwrap();
        assert!(matches!(
            FixDatabase::in_memory().compact(),
            Err(FixError::NoIndex)
        ));
        db.add_xml("<a><c/></a>").unwrap();
        assert_eq!(db.index().unwrap().delta_len(), 1);
        // A live session pins the old snapshot but does not block compact.
        let session = db.session().unwrap();
        db.compact().unwrap();
        assert_eq!(db.index().unwrap().delta_len(), 0);
        assert_eq!(db.index().unwrap().compaction_stats().0, 1);
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
        assert_eq!(session.query("//a/c").unwrap().results.len(), 1);
    }

    #[test]
    fn open_save_round_trip() {
        let path = temp("facade.fixdb");
        std::fs::remove_file(&path).ok();
        {
            let mut db = FixDatabase::open(&path).unwrap();
            assert!(db.is_empty(), "fresh path starts empty");
            db.add_xml("<bib><article><author/><ee/></article></bib>")
                .unwrap();
            db.build(FixOptions::builder().depth_limit(3).build())
                .unwrap();
            db.save().unwrap();
        }
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.path(), Some(path.as_path()));
        assert_eq!(db.query("//article[author]/ee").unwrap().results.len(), 1);
        // Loaded indexes accept adds too (incremental resume, cold memo).
        let mut db = db;
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        assert_eq!(db.query("//article[author]/ee").unwrap().results.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_requires_binding_and_index() {
        let db = FixDatabase::in_memory();
        assert!(matches!(db.save(), Err(FixError::NoPath)));
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a/>").unwrap();
        let path = temp("unbuilt.fixdb");
        assert!(matches!(db.save_as(&path), Err(FixError::NoIndex)));
    }

    #[test]
    fn vacuum_through_facade() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.add_xml("<a><c/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        db.remove_document(DocId(0)).unwrap();
        db.vacuum().unwrap();
        assert_eq!(db.len(), 1);
        assert!(db.query("//a/b").unwrap().results.is_empty());
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
    }

    #[test]
    fn build_on_disk_through_facade() {
        let pages = temp("facade.pages");
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b><c/></b></a>").unwrap();
        db.build_on_disk(FixOptions::builder().depth_limit(3).build(), &pages)
            .unwrap();
        assert!(pages.exists());
        assert_eq!(db.query("//b/c").unwrap().results.len(), 1);
        std::fs::remove_file(&pages).ok();
    }

    #[test]
    fn query_iter_streams_lazily() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        db.build(FixOptions::collection()).unwrap();
        let eager = db.query("//article[author]/ee").unwrap();
        let mut it = db.query_iter("//article[author]/ee").unwrap();
        let first = it.next().unwrap();
        assert_eq!(first, eager.results[0]);
        // Only the first document group has been refined so far.
        assert_eq!(it.metrics().producing, 1);
        let rest: Vec<_> = it.collect();
        assert_eq!(rest, eager.results[1..]);
        assert!(matches!(
            db.query_iter("not a path"),
            Err(FixError::BadQuery(_))
        ));
    }

    #[test]
    fn mutations_fail_while_a_session_is_live() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        let session = db.session().unwrap();
        assert!(matches!(
            db.add_xml("<a><c/></a>"),
            Err(FixError::SnapshotInUse)
        ));
        assert!(matches!(
            db.remove_document(DocId(0)),
            Err(FixError::SnapshotInUse)
        ));
        // Reads are unaffected.
        assert_eq!(db.query("//a/b").unwrap().results.len(), 1);
        assert_eq!(session.query("//a/b").unwrap().results.len(), 1);
        drop(session);
        db.add_xml("<a><c/></a>").unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn vacuum_leaves_live_sessions_on_the_old_snapshot() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.add_xml("<a><c/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        db.remove_document(DocId(0)).unwrap();
        let session = db.session().unwrap();
        db.vacuum().unwrap();
        assert_eq!(db.len(), 1);
        // The session still serves the pre-vacuum snapshot (with the
        // tombstone applied, as at session creation).
        assert!(session.query("//a/b").unwrap().results.is_empty());
        assert_eq!(session.query("//a/c").unwrap().results.len(), 1);
    }

    #[test]
    fn verify_reports_health_and_records_metrics() {
        let path = temp("verify-facade.fixdb");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            FixDatabase::in_memory().verify(),
            Err(FixError::NoPath)
        ));
        let mut db = FixDatabase::open(&path).unwrap();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        db.save().unwrap();
        let report = db.verify().unwrap();
        assert!(report.is_ok(), "{report}");
        let snap = db.metrics().snapshot();
        assert_eq!(
            snap.counter("fix_persist_corruption_detected_total"),
            Some(0)
        );
        assert!(snap.counter("fix_persist_bytes_written_total").unwrap() > 0);
        assert_eq!(snap.histogram("fix_persist_save_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("fix_persist_verify_ns").unwrap().count, 1);

        // Flip a byte mid-file: verify flags it and counts the detection.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let report = db.verify().unwrap();
        assert!(!report.is_ok());
        let snap = db.metrics().snapshot();
        assert!(
            snap.counter("fix_persist_corruption_detected_total")
                .unwrap()
                > 0
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_metrics_recorded_on_open() {
        let path = temp("load-metrics.fixdb");
        std::fs::remove_file(&path).ok();
        {
            let mut db = FixDatabase::open(&path).unwrap();
            db.add_xml("<a><b/></a>").unwrap();
            db.build(FixOptions::collection()).unwrap();
            db.save().unwrap();
        }
        let db = FixDatabase::open(&path).unwrap();
        let snap = db.metrics().snapshot();
        assert_eq!(snap.histogram("fix_persist_load_ns").unwrap().count, 1);
        assert!(snap.counter("fix_persist_bytes_read_total").unwrap() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_depth_limit_governs_adds() {
        let deep = |n: usize| "<a>".repeat(n) + &"</a>".repeat(n);
        // Pre-build adds enforce the default limit.
        let mut db = FixDatabase::in_memory();
        db.add_xml(&deep(40)).unwrap();
        assert!(matches!(db.add_xml(&deep(2000)), Err(FixError::Parse(_))));
        // Post-build, the built options govern (via incremental insert).
        db.build(FixOptions::collection().with_max_parse_depth(8))
            .unwrap();
        assert!(matches!(db.add_xml(&deep(40)), Err(FixError::Parse(_))));
    }

    #[test]
    fn logged_writes_survive_reopen_without_save() {
        let path = temp("wal-reopen.fixdb");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        {
            let mut db = FixDatabase::open(&path).unwrap();
            db.add_xml("<a><b/></a>").unwrap();
            db.build(FixOptions::collection().with_compact_ratio(0.0))
                .unwrap();
            db.save().unwrap();
            // Post-save mutations go through the WAL, not the image.
            let before = std::fs::metadata(&path).unwrap().len();
            db.add_xml("<a><c/></a>").unwrap();
            db.remove_document(DocId(0)).unwrap();
            assert_eq!(std::fs::metadata(&path).unwrap().len(), before);
            let ws = db.wal_stats().expect("log engaged by the first write");
            assert_eq!(ws.appends, 2);
            // Dropped here without save(): the image is stale, the log is not.
        }
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.len(), 2);
        assert!(db.query("//a/b").unwrap().results.is_empty(), "tombstone");
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
        let snap = db.metrics().snapshot();
        assert_eq!(snap.counter(names::WAL_REPLAYED), Some(2));
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_checkpoints_and_truncates_the_log() {
        let path = temp("wal-checkpoint.fixdb");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        let mut db = FixDatabase::open(&path).unwrap();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection().with_compact_ratio(0.0))
            .unwrap();
        db.save().unwrap();
        db.add_xml("<a><c/></a>").unwrap();
        assert_eq!(db.wal_stats().unwrap().records, 1);
        db.save().unwrap();
        let ws = db.wal_stats().unwrap();
        assert_eq!((ws.records, ws.tail_records), (0, 0), "rebased");
        // Reopen sees the checkpointed image with nothing to replay.
        drop(db);
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(
            db.metrics().snapshot().counter(names::WAL_REPLAYED),
            Some(0)
        );
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn batches_are_validated_whole_before_anything_applies() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection().with_compact_ratio(0.0))
            .unwrap();
        // Second op names a document that will not exist: whole batch out.
        let mut batch = WriteBatch::new();
        batch.add_xml("<a><c/></a>").remove_document(DocId(9));
        assert!(matches!(
            db.write(batch),
            Err(FixError::NoSuchDocument { doc: 9 })
        ));
        assert_eq!(db.len(), 1, "the valid add was not applied either");
        // A remove may target an add earlier in the same batch.
        let mut batch = WriteBatch::new();
        batch.add_xml("<a><c/></a>").remove_document(DocId(1));
        let ids = db.write(batch).unwrap();
        assert_eq!(ids, vec![DocId(1)]);
        assert!(db.query("//a/c").unwrap().results.is_empty());
        // Unparsable XML rejects the batch up front too.
        let mut batch = WriteBatch::new();
        batch.add_xml("<a><unclosed>");
        assert!(matches!(db.write(batch), Err(FixError::Parse(_))));
        assert!(db.write(WriteBatch::new()).unwrap().is_empty());
    }

    #[test]
    fn unindexed_writes_accept_adds_and_reject_removes() {
        let mut db = FixDatabase::in_memory();
        let mut batch = WriteBatch::new();
        batch.add_xml("<a/>").add_xml("<b/>");
        assert_eq!(db.write(batch).unwrap(), vec![DocId(0), DocId(1)]);
        let mut batch = WriteBatch::new();
        batch.remove_document(DocId(0));
        assert!(matches!(db.write(batch), Err(FixError::NoIndex)));
        assert!(matches!(
            db.remove_document(DocId(9)),
            Err(FixError::NoIndex)
        ));
    }

    #[test]
    fn structural_changes_checkpoint_before_the_next_logged_write() {
        let path = temp("wal-structural.fixdb");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        let mut db = FixDatabase::open(&path).unwrap();
        db.add_xml("<a><b/></a>").unwrap();
        db.add_xml("<a><x/></a>").unwrap();
        db.build(FixOptions::collection().with_compact_ratio(0.0))
            .unwrap();
        db.save().unwrap();
        db.remove_document(DocId(0)).unwrap(); // logged
        db.vacuum().unwrap(); // un-logged: renumbers, checkpoints itself
        db.add_xml("<a><c/></a>").unwrap(); // logs against the fresh image
        drop(db);
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.len(), 2, "vacuumed survivor plus the post-vacuum add");
        assert!(db.query("//a/b").unwrap().results.is_empty());
        assert_eq!(db.query("//a/x").unwrap().results.len(), 1);
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failed_append_leaves_state_consistent() {
        use fix_storage::{FaultKind, FaultPlan};
        let path = temp("wal-fault.fixdb");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        let mut db = FixDatabase::open(&path).unwrap();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection().with_compact_ratio(0.0))
            .unwrap();
        db.save().unwrap();
        db.add_xml("<a><c/></a>").unwrap(); // engages the log
        db.set_wal_fault(Some(FaultPlan::new(0, FaultKind::Torn { keep: 3 })));
        let err = db.add_xml("<a><d/></a>").unwrap_err();
        assert!(matches!(err, FixError::Io(_)), "got {err:?}");
        assert_eq!(db.len(), 2, "failed batch was not applied");
        // The next write checkpoints and starts a fresh log.
        db.add_xml("<a><e/></a>").unwrap();
        drop(db);
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
        assert!(db.query("//a/d").unwrap().results.is_empty());
        assert_eq!(db.query("//a/e").unwrap().results.len(), 1);
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sealed_segments_freeze_delta_runs_on_both_paths() {
        let path = temp("wal-seal.fixdb");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        let mut db = FixDatabase::open(&path).unwrap();
        // A roomy base keeps the default compact_ratio (0.5) quiet while
        // the deltas pile up — and the default policy is exactly what a
        // reopened database replays with (policy knobs are not
        // persisted), so the tier layout must reproduce bit-for-bit.
        for i in 0..12 {
            db.add_xml(&format!("<a><base{i}/></a>")).unwrap();
        }
        db.build(
            FixOptions::builder()
                .wal_seal_bytes(1) // every record seals its segment
                .build(),
        )
        .unwrap();
        db.save().unwrap();
        for i in 0..5 {
            db.add_xml(&format!("<a><c{i}/></a>")).unwrap();
        }
        let live_levels = db.level_stats();
        assert!(
            live_levels.iter().map(|l| l.runs).sum::<usize>() > 0,
            "seals froze runs: {live_levels:?}"
        );
        let live_answers = db.query("//a/c3").unwrap().results;
        drop(db);
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.level_stats(), live_levels, "replay rebuilt the tiers");
        assert_eq!(db.query("//a/c3").unwrap().results, live_answers);
        let snap = db.metrics().snapshot();
        assert!(snap.counter(names::LEVEL_SEALS).unwrap() >= 5);
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disk_full_flips_read_only_and_resume_recovers() {
        use fix_storage::{FaultKind, FaultPlan};
        let path = temp("read-only.fixdb");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        let mut db = FixDatabase::open(&path).unwrap();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection().with_compact_ratio(0.0))
            .unwrap();
        db.save().unwrap();
        db.add_xml("<a><c/></a>").unwrap(); // engages the log
        db.set_wal_fault(Some(FaultPlan::new(0, FaultKind::DiskFull)));
        let err = db.add_xml("<a><d/></a>").unwrap_err();
        assert!(matches!(err, FixError::ReadOnly { .. }), "got {err:?}");
        assert!(db.read_only_cause().unwrap().contains("WAL append"));
        // Writes now fail fast without touching the log; queries serve.
        assert!(matches!(
            db.add_xml("<a><e/></a>"),
            Err(FixError::ReadOnly { .. })
        ));
        assert!(matches!(db.save(), Err(FixError::ReadOnly { .. })));
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
        assert!(db.events().iter().any(|e| e.name == "db.read_only"));
        // Space is actually fine (the failure was injected), so the probe
        // clears the latch and the next write checkpoints past the
        // poisoned log.
        assert!(db.try_resume().unwrap());
        assert!(db.read_only_cause().is_none());
        db.add_xml("<a><f/></a>").unwrap();
        drop(db);
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.query("//a/f").unwrap().results.len(), 1);
        assert!(db.query("//a/d").unwrap().results.is_empty());
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn quarantined_derived_page_repairs_online() {
        use crate::options::StorageMode;
        let path = temp("repair.fixdb");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        {
            let mut db = FixDatabase::open(&path).unwrap();
            for i in 0..8 {
                db.add_xml(&format!("<a><b{i}/></a>")).unwrap();
            }
            let mut opts = FixOptions::collection().with_compact_ratio(0.0);
            opts.storage = StorageMode::Paged;
            db.build(opts).unwrap();
            db.save().unwrap();
        }
        // Corrupt the *last* data page: the paged writer lays out the
        // document heap first and bulk-loads the B-tree last, so the tail
        // page is derived state — exactly what repair re-derives.
        let mut data = std::fs::read(&path).unwrap();
        let meta_off = u64::from_le_bytes(data[20..28].try_into().unwrap()) as usize;
        let page_size = fix_storage::PAGE_SIZE;
        data[meta_off - page_size / 2] ^= 0xFF;
        std::fs::write(&path, &data).unwrap();

        let mut db = FixDatabase::open(&path).unwrap();
        let session = db.session().unwrap();
        let err = db.query("//a/b0").unwrap_err();
        assert!(
            matches!(err, FixError::Corrupt { .. } | FixError::Io(_)),
            "got {err:?}"
        );
        assert!(!db.quarantined_pages().is_empty(), "pool quarantined it");
        let report = db.repair().unwrap();
        assert!(report.quarantined_before >= 1, "{report}");
        assert!(report.checkpointed);
        assert_eq!(report.documents, 8);
        // The repaired snapshot answers; quarantine starts empty.
        assert_eq!(db.query("//a/b0").unwrap().results.len(), 1);
        assert!(db.quarantined_pages().is_empty());
        // The live session was never closed. It still holds the damaged
        // snapshot, so its reads may fail — structurally, not by panic.
        let _ = session.query("//a/b0");
        drop(session);
        // The checkpointed image verifies clean and round-trips.
        assert!(db.verify().unwrap().is_ok());
        assert!(db.events().iter().any(|e| e.name == "repair"));
        drop(db);
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.query("//a/b3").unwrap().results.len(), 1);
        std::fs::remove_dir_all(fix_storage::wal_dir(&path)).ok();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn into_parts_requires_exclusive_ownership() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        let session = db.session().unwrap();
        let db = match db.into_parts() {
            Err(FixError::SnapshotInUse) => {
                // Rebuild the handle; the session still pins the snapshot.
                let mut db = FixDatabase::in_memory();
                db.add_xml("<a><b/></a>").unwrap();
                db.build(FixOptions::collection()).unwrap();
                db
            }
            other => panic!("expected SnapshotInUse, got {:?}", other.map(|_| ())),
        };
        drop(session);
        let (coll, index) = db.into_parts().unwrap();
        assert_eq!(coll.len(), 1);
        assert!(index.is_some());
    }
}
