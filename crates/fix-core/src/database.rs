//! [`FixDatabase`] — the one-stop facade over collection, index, and
//! persistence.
//!
//! The lower-level pieces ([`Collection`], [`FixIndex`], the persist
//! module) stay public for experiments that need to hold them apart, but
//! applications should only ever need this:
//!
//! ```
//! use fix_core::{FixDatabase, FixOptions};
//!
//! let mut db = FixDatabase::in_memory();
//! db.add_xml("<bib><article><author/><ee/></article></bib>")?;
//! db.add_xml("<bib><book><author/></book></bib>")?;
//! db.build(FixOptions::builder().threads(2).build())?;
//! let out = db.query("//article[author]/ee")?;
//! assert_eq!(out.results.len(), 1);
//! # Ok::<(), fix_core::FixError>(())
//! ```

use std::path::{Path, PathBuf};

use crate::builder::{BuildStats, FixIndex};
use crate::collection::{Collection, DocId};
use crate::error::FixError;
use crate::options::FixOptions;
use crate::query::QueryOutcome;

/// A FIX database: a document collection plus (once built or loaded) its
/// index, optionally bound to a file path for persistence.
pub struct FixDatabase {
    path: Option<PathBuf>,
    coll: Collection,
    index: Option<FixIndex>,
}

impl FixDatabase {
    /// Creates an empty, unbound in-memory database.
    pub fn in_memory() -> Self {
        Self {
            path: None,
            coll: Collection::new(),
            index: None,
        }
    }

    /// Opens the database file at `path`, loading it if it exists or
    /// starting empty (bound to that path, so [`FixDatabase::save`] knows
    /// where to write) if it does not.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, FixError> {
        let path = path.as_ref();
        let (coll, index) = if path.exists() {
            let (c, i) = crate::persist::load_impl(path)?;
            (c, Some(i))
        } else {
            (Collection::new(), None)
        };
        Ok(Self {
            path: Some(path.to_path_buf()),
            coll,
            index,
        })
    }

    /// Wraps an already-constructed collection/index pair (escape hatch
    /// for experiment code that built the parts by hand).
    pub fn from_parts(coll: Collection, index: Option<FixIndex>) -> Self {
        Self {
            path: None,
            coll,
            index,
        }
    }

    /// Tears the database back into its parts.
    pub fn into_parts(self) -> (Collection, Option<FixIndex>) {
        (self.coll, self.index)
    }

    /// Adds one XML document. Before [`FixDatabase::build`] this only
    /// grows the collection; afterwards the document is also indexed
    /// incrementally (unclustered in-memory indexes only — clustered or
    /// loaded indexes return [`FixError::ImmutableIndex`]).
    pub fn add_xml(&mut self, xml: &str) -> Result<DocId, FixError> {
        match &mut self.index {
            None => Ok(self.coll.add_xml(xml)?),
            Some(idx) => match idx.insert_xml(&mut self.coll, xml)? {
                Some(id) => Ok(id),
                None => Err(FixError::ImmutableIndex),
            },
        }
    }

    /// Builds (or rebuilds) the index over the current collection with an
    /// in-memory page pool. Returns the construction statistics.
    pub fn build(&mut self, opts: FixOptions) -> Result<&BuildStats, FixError> {
        self.index = Some(FixIndex::build(&mut self.coll, opts));
        Ok(self.stats().expect("index was just built"))
    }

    /// Builds (or rebuilds) the index with its pages in a real file at
    /// `pages` — the configuration for corpora larger than memory.
    pub fn build_on_disk(
        &mut self,
        opts: FixOptions,
        pages: impl AsRef<Path>,
    ) -> Result<&BuildStats, FixError> {
        self.index = Some(crate::builder::build_on_disk_impl(
            &mut self.coll,
            opts,
            pages.as_ref(),
        )?);
        Ok(self.stats().expect("index was just built"))
    }

    /// Runs an XPath query through the index.
    pub fn query(&self, query: &str) -> Result<QueryOutcome, FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        Ok(idx.query(&self.coll, query)?)
    }

    /// Tombstones a document (see [`FixIndex::remove_document`]).
    pub fn remove_document(&mut self, doc: DocId) -> Result<(), FixError> {
        let idx = self.index.as_mut().ok_or(FixError::NoIndex)?;
        idx.remove_document(doc);
        Ok(())
    }

    /// Rebuilds collection and index without tombstoned documents.
    pub fn vacuum(&mut self) -> Result<(), FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        let (coll, index) = idx.vacuum(&self.coll);
        self.coll = coll;
        self.index = Some(index);
        Ok(())
    }

    /// Saves to the bound path (set by [`FixDatabase::open`] or a prior
    /// [`FixDatabase::save_as`]). The index must exist — the file format
    /// stores collection and index together.
    pub fn save(&self) -> Result<(), FixError> {
        let path = self
            .path
            .clone()
            .ok_or_else(|| FixError::Io(std::io::Error::other("database has no bound path")))?;
        self.save_to(&path)
    }

    /// Saves to `path` and binds the database to it.
    pub fn save_as(&mut self, path: impl AsRef<Path>) -> Result<(), FixError> {
        self.save_to(path.as_ref())?;
        self.path = Some(path.as_ref().to_path_buf());
        Ok(())
    }

    fn save_to(&self, path: &Path) -> Result<(), FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        Ok(crate::persist::save_impl(path, &self.coll, idx)?)
    }

    /// The document collection.
    pub fn collection(&self) -> &Collection {
        &self.coll
    }

    /// The index, if one has been built or loaded.
    pub fn index(&self) -> Option<&FixIndex> {
        self.index.as_ref()
    }

    /// Construction statistics, if an index exists.
    pub fn stats(&self) -> Option<&BuildStats> {
        self.index.as_ref().map(FixIndex::stats)
    }

    /// The bound file path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.coll.len()
    }

    /// True if the collection holds no documents.
    pub fn is_empty(&self) -> bool {
        self.coll.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fix-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn in_memory_lifecycle() {
        let mut db = FixDatabase::in_memory();
        assert!(db.is_empty());
        assert!(matches!(db.query("//a"), Err(FixError::NoIndex)));
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        db.add_xml("<bib><book><author/></book></bib>").unwrap();
        let stats = db.build(FixOptions::collection()).unwrap();
        assert_eq!(stats.entries, 2);
        assert_eq!(db.query("//article[author]/ee").unwrap().results.len(), 1);
        // Post-build adds go through incremental insertion.
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.query("//article[author]/ee").unwrap().results.len(), 2);
    }

    #[test]
    fn clustered_refuses_post_build_adds() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::builder().clustered(true).build())
            .unwrap();
        assert!(matches!(
            db.add_xml("<a><c/></a>"),
            Err(FixError::ImmutableIndex)
        ));
        assert_eq!(db.len(), 1, "collection untouched on refusal");
    }

    #[test]
    fn open_save_round_trip() {
        let path = temp("facade.fixdb");
        std::fs::remove_file(&path).ok();
        {
            let mut db = FixDatabase::open(&path).unwrap();
            assert!(db.is_empty(), "fresh path starts empty");
            db.add_xml("<bib><article><author/><ee/></article></bib>")
                .unwrap();
            db.build(FixOptions::builder().depth_limit(3).build())
                .unwrap();
            db.save().unwrap();
        }
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.path(), Some(path.as_path()));
        assert_eq!(db.query("//article[author]/ee").unwrap().results.len(), 1);
        // Loaded indexes are immutable; adds surface the typed error.
        let mut db = db;
        assert!(matches!(db.add_xml("<x/>"), Err(FixError::ImmutableIndex)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_requires_binding_and_index() {
        let db = FixDatabase::in_memory();
        assert!(matches!(db.save(), Err(FixError::Io(_))));
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a/>").unwrap();
        let path = temp("unbuilt.fixdb");
        assert!(matches!(db.save_as(&path), Err(FixError::NoIndex)));
    }

    #[test]
    fn vacuum_through_facade() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.add_xml("<a><c/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        db.remove_document(DocId(0)).unwrap();
        db.vacuum().unwrap();
        assert_eq!(db.len(), 1);
        assert!(db.query("//a/b").unwrap().results.is_empty());
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
    }

    #[test]
    fn build_on_disk_through_facade() {
        let pages = temp("facade.pages");
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b><c/></b></a>").unwrap();
        db.build_on_disk(FixOptions::builder().depth_limit(3).build(), &pages)
            .unwrap();
        assert!(pages.exists());
        assert_eq!(db.query("//b/c").unwrap().results.len(), 1);
        std::fs::remove_file(&pages).ok();
    }
}
