//! [`FixDatabase`] — the one-stop facade over collection, index, and
//! persistence.
//!
//! The lower-level pieces ([`Collection`], [`FixIndex`], the persist
//! module) stay public for experiments that need to hold them apart, but
//! applications should only ever need this:
//!
//! ```
//! use fix_core::{FixDatabase, FixOptions};
//!
//! let mut db = FixDatabase::in_memory();
//! db.add_xml("<bib><article><author/><ee/></article></bib>")?;
//! db.add_xml("<bib><book><author/></book></bib>")?;
//! db.build(FixOptions::builder().threads(2).build())?;
//! let out = db.query("//article[author]/ee")?;
//! assert_eq!(out.results.len(), 1);
//! # Ok::<(), fix_core::FixError>(())
//! ```
//!
//! # Snapshots and concurrency
//!
//! Collection and index live behind [`Arc`], so
//! [`FixDatabase::session`] can hand out [`QuerySession`] snapshots that
//! serve queries from any number of threads while the database itself
//! stays usable for read-side admin work (more queries, [`save`], stats).
//! Mutations (`add_xml`, `remove_document`) need exclusive ownership and
//! return [`FixError::SnapshotInUse`] while sessions are alive;
//! [`vacuum`] instead swaps in a *new* snapshot pair, leaving live
//! sessions on the old (still consistent) one.
//!
//! [`save`]: FixDatabase::save
//! [`vacuum`]: FixDatabase::vacuum

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use fix_obs::{names, MetricsRegistry, Reportable, Stage};

use crate::builder::{BuildStats, FixIndex};
use crate::collection::{Collection, DocId};
use crate::error::FixError;
use crate::options::FixOptions;
use crate::persist::VerifyReport;
use crate::query::{QueryHits, QueryOutcome};
use crate::session::QuerySession;

/// A FIX database: a document collection plus (once built or loaded) its
/// index, optionally bound to a file path for persistence.
pub struct FixDatabase {
    path: Option<PathBuf>,
    coll: Arc<Collection>,
    index: Option<Arc<FixIndex>>,
    /// The database's metrics registry; sessions created via
    /// [`FixDatabase::session`] record into it.
    metrics: Arc<MetricsRegistry>,
    /// Max element nesting accepted by [`FixDatabase::add_xml`] before an
    /// index exists (afterwards the index options govern). Set from
    /// [`FixOptions::max_parse_depth`] on build/open.
    parse_depth: usize,
}

impl FixDatabase {
    /// Creates an empty, unbound in-memory database.
    pub fn in_memory() -> Self {
        Self {
            path: None,
            coll: Arc::new(Collection::new()),
            index: None,
            metrics: Arc::new(MetricsRegistry::new()),
            parse_depth: fix_xml::DEFAULT_MAX_DEPTH,
        }
    }

    /// Opens the database file at `path`, loading it if it exists or
    /// starting empty (bound to that path, so [`FixDatabase::save`] knows
    /// where to write) if it does not.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, FixError> {
        Self::open_inner(path.as_ref(), None)
    }

    /// [`FixDatabase::open`] attaching a paged file's pages to an existing
    /// shared [`BufferPool`](fix_storage::BufferPool) — several open
    /// databases then compete for the
    /// same bounded frame budget instead of each holding its own. Opening
    /// an in-memory-format (v3/v2) file this way simply ignores the pool.
    pub fn open_shared(
        path: impl AsRef<Path>,
        pool: &Arc<fix_storage::BufferPool>,
    ) -> Result<Self, FixError> {
        Self::open_inner(path.as_ref(), Some(pool))
    }

    fn open_inner(
        path: &Path,
        pool: Option<&Arc<fix_storage::BufferPool>>,
    ) -> Result<Self, FixError> {
        let metrics = Arc::new(MetricsRegistry::new());
        let (coll, index) = if path.exists() {
            let start = Instant::now();
            // `bytes` is what open physically read: the whole file for
            // v3/v2, just the superblock + metadata tail for paged (v4)
            // files — the counter shows paged cold-start cost directly.
            let (c, i, bytes) = crate::persist::load_any(path, pool)?;
            metrics
                .histogram(names::PERSIST_LOAD_NS)
                .record_duration(start.elapsed());
            metrics.counter(names::PERSIST_BYTES_READ).add(bytes);
            (c, Some(Arc::new(i)))
        } else {
            (Collection::new(), None)
        };
        let parse_depth = index
            .as_deref()
            .map(|i| i.options().max_parse_depth)
            .unwrap_or(fix_xml::DEFAULT_MAX_DEPTH);
        Ok(Self {
            path: Some(path.to_path_buf()),
            coll: Arc::new(coll),
            index,
            metrics,
            parse_depth,
        })
    }

    /// Wraps an already-constructed collection/index pair (escape hatch
    /// for experiment code that built the parts by hand).
    pub fn from_parts(coll: Collection, index: Option<FixIndex>) -> Self {
        let parse_depth = index
            .as_ref()
            .map(|i| i.options().max_parse_depth)
            .unwrap_or(fix_xml::DEFAULT_MAX_DEPTH);
        Self {
            path: None,
            coll: Arc::new(coll),
            index: index.map(Arc::new),
            metrics: Arc::new(MetricsRegistry::new()),
            parse_depth,
        }
    }

    /// Tears the database back into its parts. Fails with
    /// [`FixError::SnapshotInUse`] while [`QuerySession`] snapshots are
    /// alive, because the parts would no longer be exclusively owned.
    pub fn into_parts(self) -> Result<(Collection, Option<FixIndex>), FixError> {
        let coll = Arc::try_unwrap(self.coll).map_err(|_| FixError::SnapshotInUse)?;
        let index = match self.index {
            None => None,
            Some(i) => Some(Arc::try_unwrap(i).map_err(|_| FixError::SnapshotInUse)?),
        };
        Ok((coll, index))
    }

    /// Adds one XML document. Before [`FixDatabase::build`] this only
    /// grows the collection; afterwards the document is feature-extracted
    /// into the index's delta run (every index kind — clustered, loaded,
    /// compacted — accepts inserts), and when the delta has grown past
    /// [`FixOptions::compact_ratio`] × the base tree it is folded into
    /// the base automatically (the explicit trigger is
    /// [`FixDatabase::compact`]).
    pub fn add_xml(&mut self, xml: &str) -> Result<DocId, FixError> {
        match &mut self.index {
            None => {
                let depth = self.parse_depth;
                let coll = Arc::get_mut(&mut self.coll).ok_or(FixError::SnapshotInUse)?;
                Ok(coll.add_xml_limited(xml, depth)?)
            }
            Some(idx) => {
                let idx_mut = Arc::get_mut(idx).ok_or(FixError::SnapshotInUse)?;
                let coll = Arc::get_mut(&mut self.coll).ok_or(FixError::SnapshotInUse)?;
                let id = idx_mut.insert_xml(coll, xml)?;
                let ratio = idx_mut.options().compact_ratio;
                let (base, delta) = (idx_mut.btree_stats().entries, idx_mut.delta_len());
                if ratio > 0.0 && delta > 0 && delta as f64 >= ratio * base as f64 {
                    let start = Instant::now();
                    let compacted = idx_mut.compact();
                    *idx = Arc::new(compacted);
                    self.note_compaction(start.elapsed());
                }
                self.report_delta_gauges();
                Ok(id)
            }
        }
    }

    /// Folds the index's delta run into its base B+-tree. Like
    /// [`FixDatabase::vacuum`], this *replaces* the snapshot rather than
    /// mutating it, so it works with live sessions — they keep serving the
    /// pre-compaction snapshot (which answers identically; compaction
    /// changes layout, not results).
    pub fn compact(&mut self) -> Result<(), FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        let start = Instant::now();
        let compacted = idx.compact();
        self.index = Some(Arc::new(compacted));
        self.note_compaction(start.elapsed());
        self.report_delta_gauges();
        Ok(())
    }

    /// Records one compaction in the registry.
    fn note_compaction(&self, wall: std::time::Duration) {
        self.metrics.counter(names::DELTA_COMPACTIONS).add(1);
        self.metrics
            .histogram(names::DELTA_COMPACT_NS)
            .record_duration(wall);
    }

    /// Refreshes the delta size gauges after a delta transition (insert
    /// or compaction).
    fn report_delta_gauges(&self) {
        if let Some(idx) = self.index.as_deref() {
            let d = idx.delta_stats();
            self.metrics
                .gauge(names::DELTA_ENTRIES)
                .set(d.entries as i64);
            self.metrics.gauge(names::DELTA_BYTES).set(d.bytes as i64);
        }
    }

    /// Builds (or rebuilds) the index over the current collection with an
    /// in-memory page pool. Returns the construction statistics.
    pub fn build(&mut self, opts: FixOptions) -> Result<&BuildStats, FixError> {
        let coll = Arc::get_mut(&mut self.coll).ok_or(FixError::SnapshotInUse)?;
        self.parse_depth = opts.max_parse_depth;
        let idx = FixIndex::build(coll, opts);
        self.index = Some(Arc::new(idx));
        self.report_metrics();
        Ok(self.stats().expect("index was just built"))
    }

    /// Builds (or rebuilds) the index with its pages in a real file at
    /// `pages` — the configuration for corpora larger than memory.
    pub fn build_on_disk(
        &mut self,
        opts: FixOptions,
        pages: impl AsRef<Path>,
    ) -> Result<&BuildStats, FixError> {
        let coll = Arc::get_mut(&mut self.coll).ok_or(FixError::SnapshotInUse)?;
        self.parse_depth = opts.max_parse_depth;
        let idx = crate::builder::build_on_disk_impl(coll, opts, pages.as_ref())?;
        self.index = Some(Arc::new(idx));
        self.report_metrics();
        Ok(self.stats().expect("index was just built"))
    }

    /// Runs an XPath query through the index — a thin collect over
    /// [`FixDatabase::query_iter`].
    pub fn query(&self, query: &str) -> Result<QueryOutcome, FixError> {
        Ok(self.query_iter(query)?.into_outcome())
    }

    /// Parses a query and returns a lazy iterator over its
    /// `(document, node)` matches, in document order. Pruning runs up
    /// front; refinement is paid one candidate document at a time, so
    /// consumers that stop early skip the remaining evaluation work.
    pub fn query_iter(&self, query: &str) -> Result<QueryHits<'_>, FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        Ok(idx.query_iter(&self.coll, query)?)
    }

    /// Opens a concurrent query snapshot: a cheaply cloneable,
    /// `Send + Sync` handle over the current collection and index, with a
    /// shared plan cache and parallel refinement (see [`QuerySession`]).
    /// The session stays on this exact snapshot even if the database is
    /// later vacuumed or rebuilt.
    pub fn session(&self) -> Result<QuerySession, FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        Ok(QuerySession::new(self.coll.clone(), idx.clone()).with_registry(self.metrics.clone()))
    }

    /// Tombstones a document (see [`FixIndex::remove_document`]).
    pub fn remove_document(&mut self, doc: DocId) -> Result<(), FixError> {
        let idx = self.index.as_mut().ok_or(FixError::NoIndex)?;
        let idx = Arc::get_mut(idx).ok_or(FixError::SnapshotInUse)?;
        idx.remove_document(doc);
        Ok(())
    }

    /// Rebuilds collection and index without tombstoned documents. This
    /// *replaces* the snapshot rather than mutating it, so it works with
    /// live sessions — they simply keep serving the pre-vacuum state.
    pub fn vacuum(&mut self) -> Result<(), FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        let (coll, index) = idx.vacuum(&self.coll);
        self.coll = Arc::new(coll);
        self.index = Some(Arc::new(index));
        Ok(())
    }

    /// Saves to the bound path (set by [`FixDatabase::open`] or a prior
    /// [`FixDatabase::save_as`]). The index must exist — the file format
    /// stores collection and index together.
    pub fn save(&self) -> Result<(), FixError> {
        let path = self.path.clone().ok_or(FixError::NoPath)?;
        self.save_to(&path)
    }

    /// Saves to `path` and binds the database to it.
    pub fn save_as(&mut self, path: impl AsRef<Path>) -> Result<(), FixError> {
        self.save_to(path.as_ref())?;
        self.path = Some(path.as_ref().to_path_buf());
        Ok(())
    }

    fn save_to(&self, path: &Path) -> Result<(), FixError> {
        let idx = self.index.as_ref().ok_or(FixError::NoIndex)?;
        let start = Instant::now();
        crate::persist::save_impl(path, &self.coll, idx)?;
        self.metrics
            .histogram(names::PERSIST_SAVE_NS)
            .record_duration(start.elapsed());
        if let Ok(m) = std::fs::metadata(path) {
            self.metrics
                .counter(names::PERSIST_BYTES_WRITTEN)
                .add(m.len());
        }
        Ok(())
    }

    /// Integrity-checks the bound database file without loading it: walks
    /// every frame, validates every checksum and length, and returns the
    /// per-section report (the engine behind `fixdb verify`). Corruption
    /// is *data* here, not an error — inspect
    /// [`VerifyReport::is_ok`]; `Err` means the file could not be read at
    /// all (or the database has no bound path).
    pub fn verify(&self) -> Result<VerifyReport, FixError> {
        let path = self.path.as_deref().ok_or(FixError::NoPath)?;
        let start = Instant::now();
        let report = crate::persist::verify_file(path)?;
        self.metrics
            .histogram(names::PERSIST_VERIFY_NS)
            .record_duration(start.elapsed());
        self.metrics
            .counter(names::PERSIST_BYTES_READ)
            .add(report.file_len);
        self.metrics
            .counter(names::PERSIST_CORRUPTION_DETECTED)
            .add(report.corrupt_count() as u64);
        Ok(report)
    }

    /// The database's metrics registry. Sessions opened via
    /// [`FixDatabase::session`] record their per-query stage timings and
    /// work counters here; [`FixDatabase::report_metrics`] refreshes the
    /// level-style gauges (index shape, build stats, scan totals).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Refreshes every level-style gauge in the registry from current
    /// state and materializes the standard per-query instruments (so an
    /// exposition shows them at zero before any query has run). Call
    /// before [`MetricsRegistry::render_prometheus`] /
    /// [`MetricsRegistry::render_json`].
    pub fn report_metrics(&self) {
        let reg = &*self.metrics;
        reg.counter("fix_queries_total");
        reg.histogram("fix_query_wall_ns");
        for s in Stage::ALL {
            reg.histogram(s.metric_name());
        }
        reg.counter("fix_refine_candidates_total");
        reg.counter("fix_refine_producing_total");
        for h in [
            names::PERSIST_SAVE_NS,
            names::PERSIST_LOAD_NS,
            names::PERSIST_VERIFY_NS,
        ] {
            reg.histogram(h);
        }
        for c in [
            names::PERSIST_BYTES_WRITTEN,
            names::PERSIST_BYTES_READ,
            names::PERSIST_CORRUPTION_DETECTED,
            names::DELTA_SCANS,
            names::DELTA_SCAN_ENTRIES,
            names::DELTA_SCAN_NS,
            names::DELTA_CANDIDATES_TOTAL,
            names::DELTA_COMPACTIONS,
        ] {
            reg.counter(c);
        }
        reg.histogram(names::DELTA_COMPACT_NS);
        for g in [
            "fix_plan_cache_hits",
            "fix_plan_cache_misses",
            "fix_plan_cache_evictions",
            "fix_plan_cache_entries",
            "fix_plan_cache_capacity",
        ] {
            reg.gauge(g);
        }
        if let Some(idx) = self.index.as_deref() {
            idx.stats().report(reg);
            idx.btree_stats().report(reg);
            idx.scan_stats().report(reg);
            idx.pool_stats().report(reg);
            reg.gauge("fix_index_entries").set(idx.entry_count() as i64);
            let d = idx.delta_stats();
            reg.gauge(names::DELTA_ENTRIES).set(d.entries as i64);
            reg.gauge(names::DELTA_BYTES).set(d.bytes as i64);
            // Scan totals are cumulative on the index (compaction carries
            // them forward), so bump the counters up to the level rather
            // than adding — re-reporting stays idempotent.
            for (name, target) in [
                (names::DELTA_SCANS, d.scans),
                (names::DELTA_SCAN_ENTRIES, d.scanned_entries),
                (names::DELTA_SCAN_NS, d.scan_ns),
            ] {
                let c = reg.counter(name);
                c.add(target.saturating_sub(c.value()));
            }
        } else {
            reg.gauge(names::DELTA_ENTRIES);
            reg.gauge(names::DELTA_BYTES);
        }
    }

    /// The document collection.
    pub fn collection(&self) -> &Collection {
        &self.coll
    }

    /// The index, if one has been built or loaded.
    pub fn index(&self) -> Option<&FixIndex> {
        self.index.as_deref()
    }

    /// Construction statistics, if an index exists.
    pub fn stats(&self) -> Option<&BuildStats> {
        self.index.as_deref().map(FixIndex::stats)
    }

    /// Buffer-pool statistics of the index's page storage (resident and
    /// pinned frames, hit/miss/eviction/flush counters, CRC failures).
    /// For a paged database this is the live view of the shared pool; for
    /// an in-memory one it reflects the in-memory page space.
    pub fn pool_stats(&self) -> Option<fix_storage::PoolStats> {
        self.index.as_deref().map(FixIndex::pool_stats)
    }

    /// The bound file path, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.coll.len()
    }

    /// True if the collection holds no documents.
    pub fn is_empty(&self) -> bool {
        self.coll.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fix-db-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn in_memory_lifecycle() {
        let mut db = FixDatabase::in_memory();
        assert!(db.is_empty());
        assert!(matches!(db.query("//a"), Err(FixError::NoIndex)));
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        db.add_xml("<bib><book><author/></book></bib>").unwrap();
        let stats = db.build(FixOptions::collection()).unwrap();
        assert_eq!(stats.entries, 2);
        assert_eq!(db.query("//article[author]/ee").unwrap().results.len(), 1);
        // Post-build adds go through incremental insertion.
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        assert_eq!(db.len(), 3);
        assert_eq!(db.query("//article[author]/ee").unwrap().results.len(), 2);
    }

    #[test]
    fn clustered_absorbs_post_build_adds() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(
            FixOptions::builder()
                .clustered(true)
                .compact_ratio(0.0)
                .build(),
        )
        .unwrap();
        db.add_xml("<a><c/></a>").unwrap();
        assert_eq!(db.len(), 2);
        // The new document is served from the delta run (no compaction:
        // ratio 0.0 disables the automatic trigger).
        assert_eq!(db.index().unwrap().delta_len(), 1);
        assert_eq!(db.query("//a/b").unwrap().results.len(), 1);
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
    }

    #[test]
    fn auto_compaction_triggers_on_ratio() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        // Default ratio 0.5 with base=1: the first insert (delta 1 >=
        // 0.5 * 1) folds immediately.
        db.add_xml("<a><c/></a>").unwrap();
        let idx = db.index().unwrap();
        assert_eq!(idx.delta_len(), 0, "delta folded into the base");
        assert_eq!(idx.compaction_stats().0, 1);
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
        let snap = db.metrics().snapshot();
        assert_eq!(snap.counter(names::DELTA_COMPACTIONS), Some(1));
    }

    #[test]
    fn explicit_compact_through_facade() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection().with_compact_ratio(0.0))
            .unwrap();
        assert!(matches!(
            FixDatabase::in_memory().compact(),
            Err(FixError::NoIndex)
        ));
        db.add_xml("<a><c/></a>").unwrap();
        assert_eq!(db.index().unwrap().delta_len(), 1);
        // A live session pins the old snapshot but does not block compact.
        let session = db.session().unwrap();
        db.compact().unwrap();
        assert_eq!(db.index().unwrap().delta_len(), 0);
        assert_eq!(db.index().unwrap().compaction_stats().0, 1);
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
        assert_eq!(session.query("//a/c").unwrap().results.len(), 1);
    }

    #[test]
    fn open_save_round_trip() {
        let path = temp("facade.fixdb");
        std::fs::remove_file(&path).ok();
        {
            let mut db = FixDatabase::open(&path).unwrap();
            assert!(db.is_empty(), "fresh path starts empty");
            db.add_xml("<bib><article><author/><ee/></article></bib>")
                .unwrap();
            db.build(FixOptions::builder().depth_limit(3).build())
                .unwrap();
            db.save().unwrap();
        }
        let db = FixDatabase::open(&path).unwrap();
        assert_eq!(db.len(), 1);
        assert_eq!(db.path(), Some(path.as_path()));
        assert_eq!(db.query("//article[author]/ee").unwrap().results.len(), 1);
        // Loaded indexes accept adds too (incremental resume, cold memo).
        let mut db = db;
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        assert_eq!(db.query("//article[author]/ee").unwrap().results.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_requires_binding_and_index() {
        let db = FixDatabase::in_memory();
        assert!(matches!(db.save(), Err(FixError::NoPath)));
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a/>").unwrap();
        let path = temp("unbuilt.fixdb");
        assert!(matches!(db.save_as(&path), Err(FixError::NoIndex)));
    }

    #[test]
    fn vacuum_through_facade() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.add_xml("<a><c/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        db.remove_document(DocId(0)).unwrap();
        db.vacuum().unwrap();
        assert_eq!(db.len(), 1);
        assert!(db.query("//a/b").unwrap().results.is_empty());
        assert_eq!(db.query("//a/c").unwrap().results.len(), 1);
    }

    #[test]
    fn build_on_disk_through_facade() {
        let pages = temp("facade.pages");
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b><c/></b></a>").unwrap();
        db.build_on_disk(FixOptions::builder().depth_limit(3).build(), &pages)
            .unwrap();
        assert!(pages.exists());
        assert_eq!(db.query("//b/c").unwrap().results.len(), 1);
        std::fs::remove_file(&pages).ok();
    }

    #[test]
    fn query_iter_streams_lazily() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        db.add_xml("<bib><article><author/><ee/></article></bib>")
            .unwrap();
        db.build(FixOptions::collection()).unwrap();
        let eager = db.query("//article[author]/ee").unwrap();
        let mut it = db.query_iter("//article[author]/ee").unwrap();
        let first = it.next().unwrap();
        assert_eq!(first, eager.results[0]);
        // Only the first document group has been refined so far.
        assert_eq!(it.metrics().producing, 1);
        let rest: Vec<_> = it.collect();
        assert_eq!(rest, eager.results[1..]);
        assert!(matches!(
            db.query_iter("not a path"),
            Err(FixError::BadQuery(_))
        ));
    }

    #[test]
    fn mutations_fail_while_a_session_is_live() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        let session = db.session().unwrap();
        assert!(matches!(
            db.add_xml("<a><c/></a>"),
            Err(FixError::SnapshotInUse)
        ));
        assert!(matches!(
            db.remove_document(DocId(0)),
            Err(FixError::SnapshotInUse)
        ));
        // Reads are unaffected.
        assert_eq!(db.query("//a/b").unwrap().results.len(), 1);
        assert_eq!(session.query("//a/b").unwrap().results.len(), 1);
        drop(session);
        db.add_xml("<a><c/></a>").unwrap();
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn vacuum_leaves_live_sessions_on_the_old_snapshot() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.add_xml("<a><c/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        db.remove_document(DocId(0)).unwrap();
        let session = db.session().unwrap();
        db.vacuum().unwrap();
        assert_eq!(db.len(), 1);
        // The session still serves the pre-vacuum snapshot (with the
        // tombstone applied, as at session creation).
        assert!(session.query("//a/b").unwrap().results.is_empty());
        assert_eq!(session.query("//a/c").unwrap().results.len(), 1);
    }

    #[test]
    fn verify_reports_health_and_records_metrics() {
        let path = temp("verify-facade.fixdb");
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            FixDatabase::in_memory().verify(),
            Err(FixError::NoPath)
        ));
        let mut db = FixDatabase::open(&path).unwrap();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        db.save().unwrap();
        let report = db.verify().unwrap();
        assert!(report.is_ok(), "{report}");
        let snap = db.metrics().snapshot();
        assert_eq!(
            snap.counter("fix_persist_corruption_detected_total"),
            Some(0)
        );
        assert!(snap.counter("fix_persist_bytes_written_total").unwrap() > 0);
        assert_eq!(snap.histogram("fix_persist_save_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("fix_persist_verify_ns").unwrap().count, 1);

        // Flip a byte mid-file: verify flags it and counts the detection.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let report = db.verify().unwrap();
        assert!(!report.is_ok());
        let snap = db.metrics().snapshot();
        assert!(
            snap.counter("fix_persist_corruption_detected_total")
                .unwrap()
                > 0
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_metrics_recorded_on_open() {
        let path = temp("load-metrics.fixdb");
        std::fs::remove_file(&path).ok();
        {
            let mut db = FixDatabase::open(&path).unwrap();
            db.add_xml("<a><b/></a>").unwrap();
            db.build(FixOptions::collection()).unwrap();
            db.save().unwrap();
        }
        let db = FixDatabase::open(&path).unwrap();
        let snap = db.metrics().snapshot();
        assert_eq!(snap.histogram("fix_persist_load_ns").unwrap().count, 1);
        assert!(snap.counter("fix_persist_bytes_read_total").unwrap() > 0);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_depth_limit_governs_adds() {
        let deep = |n: usize| "<a>".repeat(n) + &"</a>".repeat(n);
        // Pre-build adds enforce the default limit.
        let mut db = FixDatabase::in_memory();
        db.add_xml(&deep(40)).unwrap();
        assert!(matches!(db.add_xml(&deep(2000)), Err(FixError::Parse(_))));
        // Post-build, the built options govern (via incremental insert).
        db.build(FixOptions::collection().with_max_parse_depth(8))
            .unwrap();
        assert!(matches!(db.add_xml(&deep(40)), Err(FixError::Parse(_))));
    }

    #[test]
    fn into_parts_requires_exclusive_ownership() {
        let mut db = FixDatabase::in_memory();
        db.add_xml("<a><b/></a>").unwrap();
        db.build(FixOptions::collection()).unwrap();
        let session = db.session().unwrap();
        let db = match db.into_parts() {
            Err(FixError::SnapshotInUse) => {
                // Rebuild the handle; the session still pins the snapshot.
                let mut db = FixDatabase::in_memory();
                db.add_xml("<a><b/></a>").unwrap();
                db.build(FixOptions::collection()).unwrap();
                db
            }
            other => panic!("expected SnapshotInUse, got {:?}", other.map(|_| ())),
        };
        drop(session);
        let (coll, index) = db.into_parts().unwrap();
        assert_eq!(coll.len(), 1);
        assert!(index.is_some());
    }
}
