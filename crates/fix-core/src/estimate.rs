//! Cardinality estimation and plan selection (Section 5: "a good practice
//! is to build a histogram on the primary sorting key (e.g., λ_max) in the
//! B-tree" — the missing piece of the index cost model is the number of
//! candidate results).
//!
//! [`LambdaHistogram`] keeps, per root-label partition, an equi-width
//! histogram over the stored λ_max values. A containment probe scans the
//! partition suffix `λ_max ≥ q.λ_max`, so the candidate estimate is the
//! suffix count with linear interpolation inside the boundary bucket.
//! [`FixIndex::plan`] turns the estimate into an index-vs-scan decision.

use std::collections::HashMap;

use fix_xml::LabelId;

use crate::builder::FixIndex;
use crate::collection::Collection;
use crate::key::IndexKey;
use crate::query::QueryError;
use fix_xpath::PathExpr;

/// Number of buckets per partition.
const BUCKETS: usize = 32;

/// Per-partition equi-width histogram over λ_max.
#[derive(Debug, Clone)]
struct Partition {
    lo: f64,
    hi: f64,
    counts: [u64; BUCKETS],
    total: u64,
    /// Entries with the `[0, ∞]` fallback range (always candidates).
    unbounded: u64,
}

impl Partition {
    /// Entries with `λ_max ≥ q` (suffix estimate).
    fn suffix(&self, q: f64) -> f64 {
        if q <= self.lo {
            return (self.total + self.unbounded) as f64;
        }
        if q > self.hi {
            return self.unbounded as f64;
        }
        let width = ((self.hi - self.lo) / BUCKETS as f64).max(f64::MIN_POSITIVE);
        let bucket = (((q - self.lo) / width) as usize).min(BUCKETS - 1);
        // Count the boundary bucket in full: probes are containment tests,
        // so entries *at* q are candidates, and a conservative
        // over-estimate is the safe direction for the planner.
        let est: u64 = self.counts[bucket..].iter().sum();
        est as f64 + self.unbounded as f64
    }
}

/// The histogram over all partitions of one index.
#[derive(Debug, Clone, Default)]
pub struct LambdaHistogram {
    partitions: HashMap<LabelId, Partition>,
    total: u64,
}

impl LambdaHistogram {
    /// Builds the histogram with one full index scan (done once, after
    /// construction — the statistics step of a DBMS).
    pub fn build(idx: &FixIndex) -> Self {
        // First pass: per-partition min/max.
        let mut ranges: HashMap<LabelId, (f64, f64, u64)> = HashMap::new();
        let mut unbounded: HashMap<LabelId, u64> = HashMap::new();
        let mut total = 0u64;
        for (k, _) in idx.btree.iter() {
            let key = IndexKey::decode(&k);
            total += 1;
            if key.lmax.is_infinite() {
                *unbounded.entry(key.root).or_insert(0) += 1;
                continue;
            }
            let e = ranges.entry(key.root).or_insert((f64::MAX, f64::MIN, 0));
            e.0 = e.0.min(key.lmax);
            e.1 = e.1.max(key.lmax);
            e.2 += 1;
        }
        let mut partitions: HashMap<LabelId, Partition> = ranges
            .into_iter()
            .map(|(root, (lo, hi, n))| {
                (
                    root,
                    Partition {
                        lo,
                        hi: if hi > lo { hi } else { lo + 1.0 },
                        counts: [0; BUCKETS],
                        total: n,
                        unbounded: unbounded.get(&root).copied().unwrap_or(0),
                    },
                )
            })
            .collect();
        // Partitions that only have unbounded entries.
        for (root, n) in unbounded {
            partitions.entry(root).or_insert(Partition {
                lo: 0.0,
                hi: 1.0,
                counts: [0; BUCKETS],
                total: 0,
                unbounded: n,
            });
        }
        // Second pass: fill buckets.
        for (k, _) in idx.btree.iter() {
            let key = IndexKey::decode(&k);
            if key.lmax.is_infinite() {
                continue;
            }
            let p = partitions.get_mut(&key.root).expect("partition exists");
            let width = ((p.hi - p.lo) / BUCKETS as f64).max(f64::MIN_POSITIVE);
            let b = (((key.lmax - p.lo) / width) as usize).min(BUCKETS - 1);
            p.counts[b] += 1;
        }
        Self { partitions, total }
    }

    /// Estimated number of candidates for a probe `(root, λ_max ≥ q)`.
    pub fn estimate(&self, root: LabelId, q_lmax: f64) -> f64 {
        self.partitions
            .get(&root)
            .map(|p| p.suffix(q_lmax))
            .unwrap_or(0.0)
    }

    /// Total indexed entries.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// The plan chosen for a query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Plan {
    /// Probe the index, refine the estimated candidates.
    UseIndex {
        /// Estimated candidate count.
        estimated_candidates: f64,
    },
    /// Navigate the whole collection (query not covered, or the estimate
    /// says pruning will not pay for itself).
    FullScan,
}

impl FixIndex {
    /// Chooses index-vs-scan for a query using the histogram: the index
    /// pays off when the estimated candidate fraction (each candidate
    /// costs a random fetch plus a local evaluation) is below the
    /// break-even fraction of a sequential full scan. `scan_ratio` is that
    /// break-even point (a sensible default is 0.05–0.2 depending on the
    /// random/sequential cost ratio of the storage).
    pub fn plan(
        &self,
        coll: &Collection,
        hist: &LambdaHistogram,
        path: &PathExpr,
        scan_ratio: f64,
    ) -> Plan {
        let blocks = fix_xpath::decompose(path);
        let feat = match self.candidates_features(coll, &blocks[0]) {
            Ok(Some(f)) => f,
            Ok(None) => {
                return Plan::UseIndex {
                    estimated_candidates: 0.0,
                }
            }
            Err(QueryError::NotCovered { .. }) => return Plan::FullScan,
            Err(_) => return Plan::FullScan,
        };
        let est = hist.estimate(feat.root, feat.lmax);
        if est <= scan_ratio * hist.total().max(1) as f64 {
            Plan::UseIndex {
                estimated_candidates: est,
            }
        } else {
            Plan::FullScan
        }
    }

    /// Runs a query with automatic plan selection, falling back to the
    /// NoK-style full scan when the index does not cover the query or the
    /// optimizer prefers the scan.
    pub fn query_auto(
        &self,
        coll: &Collection,
        hist: &LambdaHistogram,
        path: &PathExpr,
        scan_ratio: f64,
    ) -> (Plan, Vec<(crate::collection::DocId, fix_xml::NodeId)>) {
        let plan = self.plan(coll, hist, path, scan_ratio);
        match plan {
            Plan::UseIndex { .. } => {
                let out = self.query_path(coll, path).expect("plan checked coverage");
                (plan, out.results)
            }
            Plan::FullScan => {
                let mut results = Vec::new();
                for (id, d) in coll.iter() {
                    for n in fix_exec::eval_path(d, &coll.labels, path) {
                        results.push((id, n));
                    }
                }
                results.sort_unstable();
                (plan, results)
            }
        }
    }

    /// Internal: top-block features for planning (public query path goes
    /// through `candidates`).
    fn candidates_features(
        &self,
        coll: &Collection,
        block: &PathExpr,
    ) -> Result<Option<fix_spectral::Features>, QueryError> {
        self.block_features(coll, block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::FixOptions;
    use fix_xpath::parse_path;

    fn setup() -> (Collection, FixIndex, LambdaHistogram) {
        let mut coll = Collection::new();
        for i in 0..40 {
            // Mixed structures so λ_max spreads out.
            let doc = match i % 4 {
                0 => "<a><b/><c/></a>".to_string(),
                1 => "<a><b><c/><d/></b></a>".to_string(),
                2 => "<a><b/><b/><c><d/></c><e/></a>".to_string(),
                _ => "<a><e/></a>".to_string(),
            };
            coll.add_xml(&doc).unwrap();
        }
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(3));
        let hist = LambdaHistogram::build(&idx);
        (coll, idx, hist)
    }

    #[test]
    fn estimates_bracket_reality() {
        let (coll, idx, hist) = setup();
        for q in ["//a/b/c", "//c/d", "//a/e", "//b"] {
            let path = parse_path(q).unwrap();
            let actual = idx.candidates(&coll, &path).unwrap().len() as f64;
            let blocks = fix_xpath::decompose(&path);
            let feat = idx
                .candidates_features(&coll, &blocks[0])
                .unwrap()
                .expect("labels exist");
            let est = hist.estimate(feat.root, feat.lmax);
            // Equi-width histograms are approximate; require the estimate
            // within a factor-of-3 + small absolute slack.
            assert!(
                est <= 3.0 * actual + 8.0 && 3.0 * est + 8.0 >= actual,
                "query {q}: est {est} vs actual {actual}"
            );
        }
    }

    #[test]
    fn planner_prefers_index_for_selective_queries() {
        let (coll, idx, hist) = setup();
        let selective = parse_path("//c/d").unwrap();
        assert!(matches!(
            idx.plan(&coll, &hist, &selective, 0.5),
            Plan::UseIndex { .. }
        ));
        // A very low break-even ratio forces the scan plan.
        let unselective = parse_path("//a").unwrap();
        assert_eq!(idx.plan(&coll, &hist, &unselective, 0.001), Plan::FullScan);
    }

    #[test]
    fn query_auto_is_plan_independent() {
        let (coll, idx, hist) = setup();
        for q in ["//a/b/c", "//a/e", "//b[c][d]"] {
            let path = parse_path(q).unwrap();
            let (_, via_index) = idx.query_auto(&coll, &hist, &path, 1.0);
            let (_, via_scan) = idx.query_auto(&coll, &hist, &path, 0.0);
            assert_eq!(via_index, via_scan, "plans disagree on {q}");
        }
    }

    #[test]
    fn uncovered_queries_fall_back_to_scan() {
        let (coll, idx, hist) = setup();
        // Depth 4 > limit 3.
        let deep = parse_path("//a/b/c/d").unwrap();
        assert_eq!(idx.plan(&coll, &hist, &deep, 0.5), Plan::FullScan);
        let (plan, results) = idx.query_auto(&coll, &hist, &deep, 0.5);
        assert_eq!(plan, Plan::FullScan);
        // Same answer as direct evaluation.
        let mut want = Vec::new();
        for (id, d) in coll.iter() {
            for n in fix_exec::eval_path(d, &coll.labels, &deep) {
                want.push((id, n));
            }
        }
        want.sort_unstable();
        assert_eq!(results, want);
    }
}
