//! FIX — the feature-based XML index (the paper's primary contribution).
//!
//! Construction (Section 4, Algorithm 1): every indexable unit — a whole
//! small document, or the depth-`k` subpattern rooted at each element of a
//! large document — is reduced to its bisimulation graph, translated to an
//! anti-symmetric matrix, and keyed by `(root label, λ_max, λ_min)` in a
//! B-tree. Query processing (Section 5, Algorithm 2): the twig query's own
//! features are computed and a *range containment* scan returns candidate
//! pointers, which a refinement operator (the NoK-style navigator from
//! `fix-exec`) validates against primary storage. The index never produces
//! false negatives (Theorems 3 & 5); false positives are what the
//! refinement phase and the Section 6.2 metrics are about.
//!
//! ```
//! use fix_core::{Collection, FixIndex, FixOptions};
//!
//! let mut coll = Collection::new();
//! coll.add_xml("<bib><article><author/><ee/></article></bib>").unwrap();
//! coll.add_xml("<bib><book><author/></book></bib>").unwrap();
//! let index = FixIndex::build(&mut coll, FixOptions::collection());
//! let out = index.query(&coll, "//article[author]/ee").unwrap();
//! assert_eq!(out.results.len(), 1);
//! assert!(out.metrics.candidates <= 2);
//! ```

pub mod batch;
pub mod builder;
pub mod collection;
pub mod database;
pub mod delta;
pub mod error;
pub mod estimate;
pub mod explain;
pub mod key;
pub mod metrics;
pub mod options;
pub mod persist;
pub mod plan_cache;
pub mod query;
pub mod session;
pub mod spatial;
pub mod values;

pub use batch::{WriteBatch, WriteOp};
pub use builder::{BuildStats, FixIndex};
pub use collection::{Collection, DocId};
pub use database::{FixDatabase, RepairReport};
pub use delta::DeltaStats;
pub use error::FixError;
pub use estimate::{LambdaHistogram, Plan};
pub use explain::{BlockExplain, Explain, ExplainAnalyze};
pub use fix_btree::LevelStats;
pub use fix_obs::{
    Category, Event, EventRecorder, FieldValue, MetricsRegistry, MetricsSnapshot, QueryTrace,
    Reportable, Severity, SnapshotDelta, Stage, StageRecord,
};
pub use fix_storage::{BufferPool, Durability, PageId, PoolStats, WalStats};
pub use key::{EntryPtr, IndexKey};
pub use metrics::{ground_truth, CacheStats, Metrics};
pub use options::{FixOptions, FixOptionsBuilder, RefineOp, StorageMode};
pub use persist::{
    salvage_file, save_with_faults, verify_bytes, verify_file, SalvageSummary, SectionReport,
    SectionStatus, VerifyReport,
};
pub use plan_cache::{PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};
pub use query::{Candidate, QueryError, QueryHits, QueryOutcome, QueryPlan};
pub use session::QuerySession;
pub use spatial::SpatialIndex;
pub use values::ValueHasher;
