//! The R-tree probe path (the paper's future-work direction): feature
//! keys as 2-D points `(λ_max, −σ₂)` in one R-tree per root-label
//! partition, probed with the quadrant query
//! `λ_max ≥ q.λ_max ∧ σ₂ ≥ q.σ₂` (the second dimension participates only
//! under `extended_features`; without it the probe degenerates to the
//! 1-D λ_max test, where the B-tree is already optimal — an honest
//! finding about the paper's R-tree suggestion: it pays off only once the
//! key has a second *independent* dimension, and `λ_min = −λ_max` is not
//! one).
//!
//! Candidate sets are identical to the B-tree probe (tested); what differs
//! is the *visited* volume — the B-tree scans the whole λ_max suffix and
//! post-filters, the R-tree prunes on both dimensions. The `ablation`
//! bench reports both counters.

use std::collections::HashMap;

use fix_btree::{Point, RTree, RTreeProbeStats};
use fix_xml::LabelId;
use fix_xpath::{decompose, Axis, PathExpr};

use crate::builder::FixIndex;
use crate::collection::Collection;
use crate::key::IndexKey;
use crate::query::QueryError;

/// R-trees over the index's feature points, one per root-label partition.
pub struct SpatialIndex {
    trees: HashMap<LabelId, RTree>,
    /// Full keys in insertion order; R-tree payloads are indices into this
    /// (the 2-D probe needs the σ₂/bloom components for the optional
    /// extended filters).
    keys: Vec<(IndexKey, u64)>,
}

impl SpatialIndex {
    /// Builds the spatial probe from an existing index (one full scan).
    pub fn build(idx: &FixIndex, fanout: usize) -> Self {
        let mut keys = Vec::new();
        let mut by_label: HashMap<LabelId, Vec<Point>> = HashMap::new();
        for (k, v) in idx.btree.iter() {
            let key = IndexKey::decode(&k);
            let i = keys.len() as u64;
            keys.push((key, v));
            by_label.entry(key.root).or_default().push(Point {
                x: key.lmax,
                y: -key.sigma2,
                value: i,
            });
        }
        let trees = by_label
            .into_iter()
            .map(|(l, pts)| (l, RTree::bulk_load(pts, fanout)))
            .collect();
        Self { trees, keys }
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if the index was empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }
}

impl FixIndex {
    /// The pruning phase through the R-tree probe. Returns the same
    /// candidate set as [`FixIndex::candidates`] (in key-index order) plus
    /// the R-tree visit statistics. Only anchored probes are supported
    /// (large-document mode, or rooted collection queries) — the quadrant
    /// structure is per-partition.
    pub fn candidates_spatial(
        &self,
        coll: &Collection,
        spatial: &SpatialIndex,
        path: &PathExpr,
    ) -> Result<(Vec<(IndexKey, u64)>, RTreeProbeStats), QueryError> {
        let blocks = decompose(path);
        let top = &blocks[0];
        let anchored = self.options().depth_limit > 0 || top.steps[0].axis == Axis::Child;
        assert!(
            anchored,
            "the spatial probe requires an anchored query (use the B-tree path)"
        );
        let feat = match self.block_features(coll, top)? {
            Some(f) => f,
            None => return Ok((Vec::new(), RTreeProbeStats::default())),
        };
        let Some(tree) = spatial.trees.get(&feat.root) else {
            return Ok((Vec::new(), RTreeProbeStats::default()));
        };
        let eps = 1e-9 * (1.0 + feat.lmax.abs());
        // Second dimension only under extended features; otherwise accept
        // any σ₂ (y ≤ +∞).
        let qy = if self.options().extended_features {
            -feat.sigma2 + 1e-9 * (1.0 + feat.sigma2.abs())
        } else {
            f64::INFINITY
        };
        let (hits, stats) = tree.query_quadrant(feat.lmax - eps, qy);
        let mut out: Vec<(IndexKey, u64)> = hits
            .iter()
            .map(|p| spatial.keys[p.value as usize])
            .filter(|(k, _)| self.entry_admits(k, &feat))
            .collect();
        out.sort_unstable_by_key(|(k, _)| k.seq);
        Ok((out, stats))
    }

    /// The residual filters (λ_min, edge bloom) applied on top of the
    /// quadrant result — mirrors the tail of the B-tree probe's
    /// containment check. (The quadrant already enforced λ_max and, under
    /// extended features, σ₂.)
    fn entry_admits(&self, entry: &IndexKey, query: &fix_spectral::Features) -> bool {
        let eps = 1e-9 * (1.0 + entry.lmin.abs());
        if query.lmin < entry.lmin - eps {
            return false;
        }
        if self.options().edge_bloom && query.bloom & !entry.bloom != 0 {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::FixOptions;
    use fix_datagen::GenConfig;
    use fix_xpath::parse_path;

    #[test]
    fn spatial_candidates_equal_btree_candidates() {
        let mut coll = Collection::new();
        coll.add_xml(&fix_datagen::xmark(GenConfig::scaled(0.05)))
            .unwrap();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(6));
        let spatial = SpatialIndex::build(&idx, 16);
        assert_eq!(spatial.len() as u64, idx.entry_count());
        for q in [
            "//item/mailbox/mail/text",
            "//category/description",
            "//open_auction[seller]/annotation",
            "//nonexistent_label",
        ] {
            let path = parse_path(q).unwrap();
            let a = idx.candidates(&coll, &path).unwrap();
            let (b, _) = idx.candidates_spatial(&coll, &spatial, &path).unwrap();
            let mut a_seq: Vec<u32> = a.iter().map(|c| c.key.seq).collect();
            let mut b_seq: Vec<u32> = b.iter().map(|(k, _)| k.seq).collect();
            a_seq.sort_unstable();
            b_seq.sort_unstable();
            assert_eq!(a_seq, b_seq, "candidate sets differ on {q}");
        }
    }

    #[test]
    fn spatial_probe_visits_less_than_full_partition() {
        let mut coll = Collection::new();
        coll.add_xml(&fix_datagen::treebank(GenConfig::scaled(0.1)))
            .unwrap();
        let idx = FixIndex::build(&mut coll, FixOptions::large_document(6));
        let spatial = SpatialIndex::build(&idx, 16);
        let path = parse_path("//NP/PP/NP/NN").unwrap();
        let (cands, stats) = idx.candidates_spatial(&coll, &spatial, &path).unwrap();
        assert!(!cands.is_empty());
        assert!(
            (stats.points_tested as u64) < idx.entry_count(),
            "quadrant probe should not test every entry"
        );
    }
}
